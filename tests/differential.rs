//! Differential testing of the whole compiler.
//!
//! Random (but well-formed, terminating, initialized) Warp functions
//! are compiled through the full pipeline — lowering, optimization,
//! register allocation, list scheduling, software pipelining, linking —
//! and executed on the strict machine interpreter (which faults on any
//! latency or resource hazard in the generated schedule). The same
//! source is executed by the AST reference interpreter. Results must be
//! **bit-identical**: both sides use `f32`/wrapping-`i32` arithmetic
//! and the optimizer performs no reassociation.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use warp_lang::interp::{AstInterp, RtValue};
use warp_lang::phase1;
use warp_parallel_compilation::parcc::{compile_module_source, CompileOptions};
use warp_target::interp::{Cell, Value};
use warp_target::isa::Reg;
use warp_target::CellConfig;

/// Generates a random function body that is type-correct, initialized
/// before use, in-bounds, and terminating.
fn random_program(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut body = String::new();
    // Initialization prologue: every scalar and both arrays.
    body.push_str(
        "t0 := x; t1 := x * 0.5 + 1.0; t2 := 2.0; t3 := 0.25; k := n;\n\
         for i := 0 to 23 do a[i] := float(i) * 0.5 + x; b[i] := float(i) - 3.0; end;\n",
    );
    let n_stmts = rng.gen_range(3..14);
    for _ in 0..n_stmts {
        gen_stmt(&mut rng, &mut body, 0);
    }
    body.push_str("return t0 + t1 + t2 + t3 + a[5] + b[17];\n");

    format!(
        "module d;\nsection s on cells 0..0;\n\
         function g(y: float, m: int): float\n\
         var u: float; j: int;\n\
         begin\n  u := y;\n  for j := 1 to m do u := u + y * 0.125; end;\n  return u;\nend;\n\
         function f(x: float, n: int): float\n\
         var t0: float; t1: float; t2: float; t3: float;\n\
             a: float[24]; b: float[24]; i: int; j: int; k: int;\n\
         begin\n{body}end;\nend;\n"
    )
}

fn tvar(rng: &mut SmallRng) -> String {
    format!("t{}", rng.gen_range(0..4))
}

fn fconst(rng: &mut SmallRng) -> String {
    format!("{:.3}", rng.gen_range(0.125..3.0))
}

/// A float expression over initialized names; `idx` is an in-scope,
/// in-bounds index expression or a constant.
fn fexpr(rng: &mut SmallRng, depth: usize) -> String {
    let idx = if depth > 0 {
        "i".to_string() // loop var `i` is in scope inside loops
    } else {
        format!("{}", rng.gen_range(0..24))
    };
    let base = match rng.gen_range(0..8) {
        0 => tvar(rng),
        1 => format!("a[{idx}]"),
        2 => format!("b[{idx}]"),
        3 => "x".to_string(),
        4 => "float(k) * 0.001".to_string(),
        5 => format!("sqrt(abs({}) + 0.5)", tvar(rng)),
        6 => format!("min({}, {})", tvar(rng), fconst(rng)),
        _ => fconst(rng),
    };
    if rng.gen_bool(0.5) {
        let op = ["+", "-", "*"][rng.gen_range(0..3usize)];
        format!("{base} {op} {}", tvar(rng))
    } else {
        base
    }
}

fn gen_stmt(rng: &mut SmallRng, out: &mut String, depth: usize) {
    let choice = rng.gen_range(0..10);
    match choice {
        0 | 1 => {
            // Scalar assignment.
            let _ = std::fmt::Write::write_fmt(
                out,
                format_args!("{} := {};\n", tvar(rng), fexpr(rng, depth)),
            );
        }
        2 => {
            // Integer update.
            out.push_str("k := (k * 25173 + 13849) mod 8192;\n");
        }
        3 | 4 if depth == 0 => {
            // A counted loop over an array.
            let lo = rng.gen_range(0..8);
            let hi = rng.gen_range(12..24);
            let arr = if rng.gen_bool(0.5) { "a" } else { "b" };
            let _ =
                std::fmt::Write::write_fmt(out, format_args!("for i := {lo} to {} do\n", hi - 1));
            let inner = rng.gen_range(1..4);
            for _ in 0..inner {
                match rng.gen_range(0..4) {
                    0 => {
                        let _ = std::fmt::Write::write_fmt(
                            out,
                            format_args!("{arr}[i] := {};\n", fexpr(rng, 1)),
                        );
                    }
                    1 => {
                        let _ = std::fmt::Write::write_fmt(
                            out,
                            format_args!("{} := {} + {arr}[i];\n", tvar(rng), tvar(rng)),
                        );
                    }
                    2 => {
                        let _ = std::fmt::Write::write_fmt(
                            out,
                            format_args!("{} := {};\n", tvar(rng), fexpr(rng, 1)),
                        );
                    }
                    _ => {
                        // An if inside the loop: baseline compiles it as
                        // a multi-block loop; if-conversion turns it
                        // into selects and re-enables pipelining.
                        let _ = std::fmt::Write::write_fmt(
                            out,
                            format_args!(
                                "if {} > {} then {} := {} * 0.5; else {} := {} + 0.25; end;\n",
                                tvar(rng),
                                fconst(rng),
                                tvar(rng),
                                tvar(rng),
                                tvar(rng),
                                tvar(rng)
                            ),
                        );
                    }
                }
            }
            out.push_str("end;\n");
        }
        5 => {
            // if/else.
            let _ = std::fmt::Write::write_fmt(
                out,
                format_args!(
                    "if {} > {} then {} := {} * 0.5; else {} := {} + 0.25; end;\n",
                    tvar(rng),
                    fconst(rng),
                    tvar(rng),
                    tvar(rng),
                    tvar(rng),
                    tvar(rng)
                ),
            );
        }
        6 => {
            // Call the helper.
            let m = rng.gen_range(1..6);
            let _ = std::fmt::Write::write_fmt(
                out,
                format_args!("{} := g({}, {m});\n", tvar(rng), tvar(rng)),
            );
        }
        9 if depth == 0 => {
            // A bounded while loop (counts down on an int).
            let n = rng.gen_range(2..9);
            let _ = std::fmt::Write::write_fmt(
                out,
                format_args!(
                    "j := {n};\nwhile j > 0 do {} := {} * 0.75 + 0.125; j := j - 1; end;\n",
                    tvar(rng),
                    tvar(rng)
                ),
            );
        }
        7 if depth == 0 => {
            // Send a value to a neighbor.
            let dir = if rng.gen_bool(0.5) { "left" } else { "right" };
            let _ =
                std::fmt::Write::write_fmt(out, format_args!("send({dir}, {});\n", fexpr(rng, 0)));
        }
        _ => {
            // downto loop accumulating.
            if depth == 0 {
                let _ = std::fmt::Write::write_fmt(
                    out,
                    format_args!(
                        "for j := 15 downto 1 do {} := {} + a[j] * 0.125; end;\n",
                        tvar(rng),
                        tvar(rng)
                    ),
                );
            } else {
                let _ = std::fmt::Write::write_fmt(
                    out,
                    format_args!("{} := {};\n", tvar(rng), fexpr(rng, depth)),
                );
            }
        }
    }
}

fn machine_run_named(
    src: &str,
    fname: &str,
    x: f32,
    n: i32,
    opts: &CompileOptions,
) -> (f32, Vec<f32>, Vec<f32>) {
    let result =
        compile_module_source(src, opts).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let image = result
        .module_image
        .section_images
        .into_iter()
        .next()
        .expect("section");
    let mut cell = Cell::new(opts.cell, image).expect("cell");
    cell.set_strict(true);
    cell.prepare_call(fname, &[Value::F(x), Value::I(n)])
        .expect("prepare");
    cell.run(4_000_000_000).unwrap_or_else(|e| {
        let (fi, pc, word) = cell.debug_position();
        panic!("machine error at fn{fi} pc{pc} ({word}): {e}\n{src}")
    });
    let ret = match cell.reg(Reg::RET).expect("r0") {
        Value::F(v) => v,
        Value::I(v) => panic!("int return {v}"),
    };
    let fl = |v: &Value| match v {
        Value::F(f) => *f,
        Value::I(i) => *i as f32,
    };
    let left: Vec<f32> = cell.out_left.iter().map(fl).collect();
    let right: Vec<f32> = cell.out_right.iter().map(fl).collect();
    (ret, left, right)
}

fn machine_run_with(src: &str, x: f32, n: i32, opts: &CompileOptions) -> (f32, Vec<f32>, Vec<f32>) {
    machine_run_named(src, "f", x, n, opts)
}

fn reference_run_named(src: &str, fname: &str, x: f32, n: i32) -> (f32, Vec<f32>, Vec<f32>) {
    let checked = phase1(src).expect("phase1");
    let mut it = AstInterp::new(&checked, 0, 1_000_000_000);
    let got = it
        .call(fname, &[RtValue::F(x), RtValue::I(n)])
        .unwrap_or_else(|e| panic!("reference error: {e}\n{src}"))
        .expect("return value");
    let ret = match got {
        RtValue::F(v) => v,
        RtValue::I(v) => panic!("int return {v}"),
    };
    let fl = |v: &RtValue| match v {
        RtValue::F(f) => *f,
        RtValue::I(i) => *i as f32,
    };
    let left: Vec<f32> = it.queues.out_left.iter().map(fl).collect();
    let right: Vec<f32> = it.queues.out_right.iter().map(fl).collect();
    (ret, left, right)
}

fn reference_run(src: &str, x: f32, n: i32) -> (f32, Vec<f32>, Vec<f32>) {
    reference_run_named(src, "f", x, n)
}

fn check_one_with(seed: u64, x: f32, n: i32, opts: &CompileOptions, label: &str) {
    let src = random_program(seed);
    let (m_ret, m_l, m_r) = machine_run_with(&src, x, n, opts);
    let (r_ret, r_l, r_r) = reference_run(&src, x, n);
    assert_eq!(
        m_ret.to_bits(),
        r_ret.to_bits(),
        "seed {seed} [{label}]: machine {m_ret} vs reference {r_ret}\n{src}"
    );
    let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&m_l),
        bits(&r_l),
        "seed {seed} [{label}]: left queue\n{src}"
    );
    assert_eq!(
        bits(&m_r),
        bits(&r_r),
        "seed {seed} [{label}]: right queue\n{src}"
    );
}

fn check_one(seed: u64, x: f32, n: i32) {
    check_one_with(seed, x, n, &CompileOptions::default(), "baseline");
}

/// All optimization-option sets the differential suite exercises.
fn option_matrix() -> Vec<(CompileOptions, &'static str)> {
    let inlined = CompileOptions {
        inline: Some(warp_ir::InlinePolicy::default()),
        ..CompileOptions::default()
    };
    let unrolled = CompileOptions {
        unroll: Some(warp_ir::UnrollPolicy::default()),
        ..CompileOptions::default()
    };
    let ifconv = CompileOptions {
        if_convert: Some(warp_ir::IfConvPolicy::default()),
        ..CompileOptions::default()
    };
    let all = CompileOptions {
        inline: Some(warp_ir::InlinePolicy::default()),
        unroll: Some(warp_ir::UnrollPolicy::default()),
        if_convert: Some(warp_ir::IfConvPolicy::default()),
        ..CompileOptions::default()
    };
    // A starved register file: 20 registers leave only 8 allocatable,
    // forcing heavy spilling (including the SelT read-modify-write
    // spill path) through the whole pipeline.
    let tight = CompileOptions {
        cell: CellConfig {
            num_regs: 20,
            ..CellConfig::default()
        },
        if_convert: Some(warp_ir::IfConvPolicy::default()),
        ..CompileOptions::default()
    };
    // Abstract interpretation with fact-driven rewrites: pruned
    // branches and elided trap checks must still match the reference
    // bit for bit, alone and stacked on the full optimizer.
    let absint = CompileOptions {
        absint: true,
        ..CompileOptions::default()
    };
    let absint_all = CompileOptions {
        inline: Some(warp_ir::InlinePolicy::default()),
        unroll: Some(warp_ir::UnrollPolicy::default()),
        if_convert: Some(warp_ir::IfConvPolicy::default()),
        absint: true,
        ..CompileOptions::default()
    };
    vec![
        (CompileOptions::default(), "baseline"),
        (inlined, "inline"),
        (unrolled, "unroll"),
        (ifconv, "ifconv"),
        (all, "inline+unroll+ifconv"),
        (tight, "tight-regs+ifconv"),
        (absint, "absint"),
        (absint_all, "absint+inline+unroll+ifconv"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn compiled_code_matches_reference(seed in any::<u64>(), xi in -100i32..100, n in 0i32..20) {
        // Derive x from an integer so inputs are well-behaved floats.
        let x = xi as f32 * 0.25;
        check_one(seed, x, n);
    }
}

#[test]
fn fixed_seeds_regression() {
    // A deterministic sample so failures reproduce without proptest.
    for seed in [0u64, 1, 2, 3, 42, 1989, 0xDEAD_BEEF, u64::MAX] {
        check_one(seed, 1.5, 7);
        check_one(seed, -2.25, 0);
    }
}

#[test]
fn optimizations_preserve_semantics() {
    // Inlining and unrolling must not change results on any program.
    for seed in [0u64, 7, 11, 42, 1989, 31337] {
        for (opts, label) in option_matrix() {
            check_one_with(seed, 1.25, 9, &opts, label);
            check_one_with(seed, -0.75, 3, &opts, label);
        }
    }
}

/// Differential check of the workload functions of one size: full
/// pipeline + strict machine interpreter vs. the AST reference
/// interpreter, bit-identical.
fn check_workload(
    size: warp_workload::FunctionSize,
    n_functions: usize,
    opts: &CompileOptions,
    label: &str,
) {
    let src = warp_workload::synthetic_program(size, n_functions);
    for k in 1..=n_functions {
        let fname = format!("{}_{k}", size.paper_name());
        let (x, n) = (1.375f32, 6i32);
        let (m_ret, m_l, m_r) = machine_run_named(&src, &fname, x, n, opts);
        let (r_ret, r_l, r_r) = reference_run_named(&src, &fname, x, n);
        assert_eq!(
            m_ret.to_bits(),
            r_ret.to_bits(),
            "{fname} [{label}]: machine {m_ret} vs reference {r_ret}"
        );
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&m_l), bits(&r_l), "{fname} [{label}]: left queue");
        assert_eq!(bits(&m_r), bits(&r_r), "{fname} [{label}]: right queue");
    }
}

#[test]
fn workload_f_tiny_matches_reference() {
    // The paper's benchmark functions execute end-to-end on the strict
    // interpreter (which verifies the generated schedules) and must
    // match the reference interpreter bit-for-bit. The smallest size
    // also runs the full optimization matrix.
    for (opts, label) in option_matrix() {
        check_workload(warp_workload::FunctionSize::Tiny, 2, &opts, label);
    }
}

#[test]
fn workload_f_small_matches_reference() {
    check_workload(
        warp_workload::FunctionSize::Small,
        2,
        &CompileOptions::default(),
        "baseline",
    );
}

#[test]
fn workload_f_medium_matches_reference() {
    check_workload(
        warp_workload::FunctionSize::Medium,
        2,
        &CompileOptions::default(),
        "baseline",
    );
}

#[test]
fn workload_f_large_matches_reference() {
    // The two largest sizes run billions of machine cycles; one
    // function each keeps the suite's runtime in check.
    check_workload(
        warp_workload::FunctionSize::Large,
        1,
        &CompileOptions::default(),
        "baseline",
    );
}

#[test]
fn workload_f_huge_matches_reference() {
    // The biggest function gets the whole optimizer: inlining,
    // unrolling, if-conversion — which also shortens its schedules.
    let all = CompileOptions {
        inline: Some(warp_ir::InlinePolicy::default()),
        unroll: Some(warp_ir::UnrollPolicy::default()),
        if_convert: Some(warp_ir::IfConvPolicy::default()),
        ..CompileOptions::default()
    };
    check_workload(
        warp_workload::FunctionSize::Huge,
        1,
        &all,
        "inline+unroll+ifconv",
    );
}
