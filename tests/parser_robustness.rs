//! The front end must never panic, whatever bytes arrive: lexer and
//! parser report diagnostics and recover instead.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn lexer_never_panics(input in ".*") {
        let out = warp_lang::lexer::lex(&input);
        // The stream always ends with EOF and spans stay in bounds.
        let last = out.tokens.last().expect("eof token");
        prop_assert_eq!(last.span.start as usize, input.len());
        for t in &out.tokens {
            prop_assert!(t.span.end as usize <= input.len());
            prop_assert!(t.span.start <= t.span.end);
        }
    }

    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = warp_lang::parser::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_token_soup(words in prop::collection::vec(
        prop::sample::select(vec![
            "module", "section", "function", "begin", "end", "if", "then",
            "else", "while", "for", "do", "return", "var", ";", ":", ":=",
            "(", ")", "[", "]", "..", "+", "-", "*", "/", "x", "42", "3.5",
            "float", "int", "send", "receive", "on", "cells", "to",
        ]),
        0..64,
    )) {
        let input = words.join(" ");
        let out = warp_lang::parser::parse(&input);
        // Either it parsed or it produced diagnostics; never silence on
        // garbage that is not a valid module.
        if !input.starts_with("module") {
            prop_assert!(out.diagnostics.has_errors());
        }
    }

    #[test]
    fn phase1_never_panics(input in ".*") {
        let _ = warp_lang::phase1(&input);
    }
}
