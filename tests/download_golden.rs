//! Golden-file test pinning the phase-4 download format.
//!
//! The encoded bytes of a fixed fixture module are compared against
//! `tests/golden/download_fixture.bin`. Any change to the binary
//! format — field order, widths, tags, checksum — shows up as a diff
//! here and must be deliberate. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test download_golden
//! ```

use warp_target::download;
use warp_target::fu::FuKind;
use warp_target::isa::{BranchOp, CmpKind, Op, Opcode, Operand, Reg};
use warp_target::program::{CallReloc, FunctionImage, ModuleImage, SectionImage};
use warp_target::word::InstructionWord;

const GOLDEN: &str = "tests/golden/download_fixture.bin";

/// A small module exercising every encoded construct: all operand
/// kinds, every branch kind, multiple functions, relocations, and
/// per-function data.
fn fixture() -> ModuleImage {
    let mut kernel_word = InstructionWord::new();
    kernel_word
        .place(
            FuKind::FAdd,
            Op::new2(
                Opcode::FAdd,
                Reg(13),
                Operand::Reg(Reg(13)),
                Operand::ImmF(1.5),
            ),
        )
        .unwrap();
    kernel_word
        .place(
            FuKind::Alu,
            Op::new2(
                Opcode::ISub,
                Reg(12),
                Operand::Reg(Reg(12)),
                Operand::ImmI(1),
            ),
        )
        .unwrap();
    kernel_word
        .place(
            FuKind::Mem,
            Op::new1(Opcode::Load, Reg(14), Operand::Addr(2)),
        )
        .unwrap();

    let mut cmp_word = InstructionWord::new();
    cmp_word
        .place(
            FuKind::Agu,
            Op::new2(
                Opcode::ICmp(CmpKind::Ge),
                Reg(15),
                Operand::Reg(Reg(12)),
                Operand::ImmI(0),
            ),
        )
        .unwrap();
    cmp_word.branch = Some(BranchOp::BrTrue(Reg(15), 0));

    let main = FunctionImage {
        name: "main".into(),
        code: vec![
            kernel_word,
            cmp_word,
            InstructionWord::branch_only(BranchOp::Call(1)),
            InstructionWord::branch_only(BranchOp::Jump(1)),
            InstructionWord::branch_only(BranchOp::Ret),
        ],
        data_words: 4,
        param_count: 2,
        returns_value: true,
        call_relocs: vec![CallReloc {
            word: 2,
            callee: "helper".into(),
        }],
    };
    let helper = FunctionImage {
        name: "helper".into(),
        code: vec![InstructionWord::branch_only(BranchOp::Ret)],
        data_words: 0,
        param_count: 0,
        returns_value: false,
        call_relocs: vec![],
    };
    ModuleImage {
        name: "fixture".into(),
        section_images: vec![SectionImage {
            name: "s0".into(),
            first_cell: 0,
            last_cell: 9,
            functions: vec![main, helper],
            data_bases: vec![0, 4],
            data_words: 4,
            entry: 0,
        }],
        io_driver: "generated host loop".into(),
    }
}

#[test]
fn download_encoding_matches_golden_file() {
    let module = fixture();
    let bytes = download::encode(&module).expect("encode");
    assert_eq!(
        &bytes[..8],
        download::MAGIC,
        "image must open with the magic"
    );
    assert_eq!(download::decode(&bytes).expect("decode"), module);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &bytes).expect("write golden");
        return;
    }
    let golden =
        std::fs::read(GOLDEN).expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        bytes,
        golden,
        "download encoding changed ({} vs {} bytes); if intentional, \
         regenerate with UPDATE_GOLDEN=1",
        bytes.len(),
        golden.len()
    );
}
