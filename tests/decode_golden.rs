//! Golden-file test pinning the shared decoded instruction form.
//!
//! Both execution engines — the strict [`warp_target::interp::Cell`]
//! and the batched [`warp_target::batch::BatchInterp`] — consume the
//! same [`warp_target::decode::DecodedImage`], produced once per
//! program by [`warp_target::decode::decode_image`]. This test
//! compiles a fixed W2 program and pins the decoded listing of every
//! instruction word against `tests/golden/decode_listing.txt`: any
//! change to decoding (slot order, latencies, operand forms, branch
//! lowering) or to the scheduler's output for this program shows up as
//! a diff here and must be deliberate. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test decode_golden
//! ```

use parcc::{compile_module_source, CompileOptions};
use warp_target::decode::decode_image;

const GOLDEN: &str = "tests/golden/decode_listing.txt";

const SOURCE: &str = "module decode_fixture;
section main on cells 0..9;
  function kernel(x: float, n: int): float
  var
    acc: float; t: float; v: float[16]; i: int;
  begin
    t := x * 0.5 + 1.25;
    for i := 0 to 7 do
      v[i] := t * float(i);
      acc := acc + v[i] * 0.25;
    end;
    if acc > 2.0 then
      acc := acc / (1.0 + abs(x));
    else
      acc := acc + t;
    end;
    return acc;
  end;
end;
";

fn decoded_listing() -> String {
    let result =
        compile_module_source(SOURCE, &CompileOptions::default()).expect("fixture compiles");
    let sec = &result.module_image.section_images[0];
    let decoded = decode_image(sec);
    let mut out = String::new();
    for (f, func) in decoded.functions.iter().enumerate() {
        let name = &sec.functions[f].name;
        out.push_str(&format!("function {name}:\n"));
        for (i, word) in func.words.iter().enumerate() {
            out.push_str(&format!("{i:4}: {}\n", word.listing()));
        }
    }
    out
}

#[test]
fn decoded_form_matches_the_golden_listing() {
    let listing = decoded_listing();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &listing).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        listing, golden,
        "decoded instruction form changed; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn decoding_is_deterministic() {
    // The engines rely on decode being a pure function of the image:
    // the strict interpreter and the batch interpreter each decode the
    // same section and must see the very same words.
    assert_eq!(decoded_listing(), decoded_listing());
}
