//! Cross-crate integration: source → compiled module → execution on
//! the simulated Warp array, plus parallel/sequential equivalence.

use warp_parallel_compilation::parcc::{
    compile_module_source, threads::compile_parallel, CompileOptions,
};
use warp_target::interp::{ArrayMachine, Cell, Value};
use warp_target::isa::Reg;
use warp_target::CellConfig;

/// A two-section systolic program: the first cell squares its inputs
/// and pushes them right; the second accumulates them.
const PIPELINE: &str = "module pipe;\n\
section producer on cells 0..0;\n\
  function main()\n\
  var i: int; v: float;\n\
  begin\n\
    for i := 1 to 8 do\n\
      v := float(i);\n\
      send(right, v * v);\n\
    end;\n\
    return;\n\
  end;\n\
end;\n\
section consumer on cells 1..1;\n\
  function main()\n\
  var i: int; acc: float; v: float;\n\
  begin\n\
    acc := 0.0;\n\
    for i := 1 to 8 do\n\
      receive(left, v);\n\
      acc := acc + v;\n\
    end;\n\
    send(right, acc);\n\
    return;\n\
  end;\n\
end;\n";

#[test]
fn compiled_sections_run_as_systolic_pipeline() {
    let result = compile_module_source(PIPELINE, &CompileOptions::default()).expect("compile");
    assert_eq!(result.module_image.section_images.len(), 2);
    let mut array = ArrayMachine::new(CellConfig::default(), &result.module_image.section_images)
        .expect("array");
    assert_eq!(array.cell_count(), 2);
    let stats = array.run(1_000_000).expect("run");
    assert!(stats.cycles > 0);
    // Sum of squares 1..8 = 204.
    let out = array.cell_mut(1).out_right.pop_front().expect("result");
    assert_eq!(out, Value::F(204.0));
}

#[test]
fn io_driver_documents_the_module() {
    let result = compile_module_source(PIPELINE, &CompileOptions::default()).unwrap();
    let drv = &result.module_image.io_driver;
    assert!(drv.contains("download_producer"), "{drv}");
    assert!(drv.contains("invoke_consumer_main"), "{drv}");
    assert!(result.module_image.download_words() > 0);
}

#[test]
fn parallel_threads_produce_identical_module_image() {
    let src = warp_workload::user_program();
    let opts = CompileOptions::default();
    let seq = compile_module_source(&src, &opts).expect("sequential");
    for workers in [2usize, 4, 8] {
        let (par, report) = compile_parallel(&src, &opts, workers).expect("parallel");
        assert_eq!(seq.module_image, par.module_image, "workers={workers}");
        assert_eq!(report.workers, workers);
    }
}

#[test]
fn multi_section_functions_execute_individually() {
    // Compile the user program and execute one of its small functions
    // on a cell under strict schedule checking.
    let src = "module m;\n\
        section s1 on cells 0..4;\n\
        function poly(x: float): float\n\
        var acc: float; i: int;\n\
        begin\n\
          acc := 0.0;\n\
          for i := 0 to 9 do acc := acc * x + 1.0; end;\n\
          return acc;\n\
        end;\n\
        end;\n\
        section s2 on cells 5..9;\n\
        function double(x: float): float begin return x + x; end;\n\
        end;";
    let result = compile_module_source(src, &CompileOptions::default()).expect("compile");
    let img = result.module_image.section_images[0].clone();
    let mut cell = Cell::new(CellConfig::default(), img).unwrap();
    cell.set_strict(true);
    cell.prepare_call("poly", &[Value::F(0.5)]).unwrap();
    cell.run(1_000_000).unwrap();
    // Horner with all-ones coefficients at x = 0.5: acc = sum 0.5^k, k=0..9.
    let expect: f32 = (0..10).map(|k| 0.5f32.powi(k)).sum();
    match cell.reg(Reg::RET).unwrap() {
        Value::F(v) => assert!((v - expect).abs() < 1e-5, "{v} vs {expect}"),
        other => panic!("{other:?}"),
    }

    let img2 = result.module_image.section_images[1].clone();
    let mut cell2 = Cell::new(CellConfig::default(), img2).unwrap();
    cell2.set_strict(true);
    cell2.prepare_call("double", &[Value::F(21.0)]).unwrap();
    cell2.run(10_000).unwrap();
    assert_eq!(cell2.reg(Reg::RET).unwrap(), Value::F(42.0));
}

#[test]
fn compilation_is_deterministic() {
    let src = warp_workload::synthetic_program(warp_workload::FunctionSize::Small, 3);
    let a = compile_module_source(&src, &CompileOptions::default()).unwrap();
    let b = compile_module_source(&src, &CompileOptions::default()).unwrap();
    assert_eq!(a.module_image, b.module_image);
    assert_eq!(a.records, b.records);
    assert_eq!(a.total_units(), b.total_units());
}

#[test]
fn download_format_round_trips_real_modules() {
    use warp_target::download::{decode, encode};
    for src in [
        PIPELINE.to_string(),
        warp_workload::synthetic_program(warp_workload::FunctionSize::Medium, 2),
        warp_workload::user_program(),
    ] {
        let result = compile_module_source(&src, &CompileOptions::default()).expect("compile");
        let bytes = encode(&result.module_image).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert_eq!(result.module_image, back);
    }
}

#[test]
fn downloaded_module_still_executes() {
    use warp_target::download::{decode, encode};
    let result = compile_module_source(PIPELINE, &CompileOptions::default()).unwrap();
    let bytes = encode(&result.module_image).unwrap();
    let back = decode(&bytes).unwrap();
    let mut array = ArrayMachine::new(CellConfig::default(), &back.section_images).unwrap();
    array.run(1_000_000).unwrap();
    assert_eq!(
        array.cell_mut(1).out_right.pop_front(),
        Some(Value::F(204.0))
    );
}
