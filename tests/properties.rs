//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use warp_netsim::{simulate, HostConfig, ProcKind, ProcessSpec};
use warp_workload::function_source_with;

// ---------------------------------------------------------------------
// Pretty-printer round trip over generated functions
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn pretty_print_round_trips(tag in 0u32..10_000, lines in 4usize..120, depth in 1usize..5) {
        let f = function_source_with(&format!("fn{tag}"), lines, depth);
        let src = format!("module m;\nsection s on cells 0..9;\n{f}\nend;");
        let first = warp_lang::parser::parse(&src);
        prop_assert!(!first.diagnostics.has_errors(), "{:?}", first.diagnostics);
        let printed = warp_lang::pretty::module_to_source(&first.module);
        let second = warp_lang::parser::parse(&printed);
        prop_assert!(!second.diagnostics.has_errors(), "reparse failed:\n{printed}");
        // Printing is the normal form: printing again must be stable.
        prop_assert_eq!(printed, warp_lang::pretty::module_to_source(&second.module));
    }

    #[test]
    fn generated_functions_always_check(tag in 0u32..10_000, lines in 4usize..200, depth in 1usize..5) {
        let f = function_source_with(&format!("g{tag}"), lines, depth);
        let src = format!("module m;\nsection s on cells 0..9;\n{f}\nend;");
        prop_assert!(warp_lang::phase1(&src).is_ok());
    }
}

// ---------------------------------------------------------------------
// Host-simulator invariants over random process trees
// ---------------------------------------------------------------------

fn leaf_strategy(ws_max: usize) -> impl Strategy<Value = ProcessSpec> {
    (
        0..ws_max,
        prop::bool::ANY,
        0u64..50_000,
        0u64..2_000_000,
        0u64..100_000,
    )
        .prop_map(|(ws, lisp, cpu, heap, bytes)| {
            let kind = if lisp { ProcKind::Lisp } else { ProcKind::C };
            ProcessSpec::new(format!("leaf-{ws}-{cpu}"), ws, kind)
                .heap(heap)
                .cpu(cpu)
                .disk(bytes)
        })
}

fn tree_strategy(ws_max: usize) -> impl Strategy<Value = ProcessSpec> {
    let leaf = leaf_strategy(ws_max);
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (prop::collection::vec(inner, 1..4), 0..ws_max, 0u64..10_000).prop_map(
            |(children, ws, cpu)| {
                ProcessSpec::new(format!("node-{ws}"), ws, ProcKind::C)
                    .cpu(cpu)
                    .fork(children)
                    .join()
            },
        )
    })
}

fn small_host() -> HostConfig {
    HostConfig {
        workstations: 4,
        cpu_units_per_sec: 10_000.0,
        mem_words: 1_000_000,
        ethernet_bytes_per_sec: 500_000.0,
        net_latency_s: 0.001,
        disk_bytes_per_sec: 400_000.0,
        disk_latency_s: 0.002,
        lisp_image_bytes: 100_000,
        lisp_init_units: 1_000,
        c_startup_units: 100,
        gc_coeff: 0.2,
        gc_scale: 500_000.0,
        gc_power: 1.5,
        page_coeff: 1.0,
        page_power: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn simulation_invariants(root in tree_strategy(4)) {
        let report = simulate(small_host(), root.clone());
        // Every process finished within the simulation.
        for p in &report.processes {
            prop_assert!(p.end_s >= p.start_s, "{p:?}");
            prop_assert!(p.end_s <= report.elapsed_s + 1e-9, "{p:?}");
            prop_assert!(p.cpu_s >= 0.0 && p.overhead_s <= p.cpu_s + 1e-9);
        }
        // Per-workstation busy time cannot exceed elapsed.
        for &busy in &report.cpu_busy_s {
            prop_assert!(busy <= report.elapsed_s + 1e-6, "{busy} > {}", report.elapsed_s);
        }
        // Resources cannot be busy longer than the run.
        prop_assert!(report.ethernet_busy_s <= report.elapsed_s + 1e-6);
        prop_assert!(report.disk_busy_s <= report.elapsed_s + 1e-6);
        // Determinism: the same tree simulates identically.
        let again = simulate(small_host(), root);
        prop_assert_eq!(format!("{report:?}"), format!("{again:?}"));
    }

    #[test]
    fn more_cpu_work_never_finishes_earlier(cpu in 1_000u64..200_000, extra in 1_000u64..200_000) {
        let mk = |units: u64| {
            ProcessSpec::new("p", 0, ProcKind::C).cpu(units)
        };
        let base = simulate(small_host(), mk(cpu)).elapsed_s;
        let more = simulate(small_host(), mk(cpu + extra)).elapsed_s;
        prop_assert!(more > base, "{more} !> {base}");
    }
}

// ---------------------------------------------------------------------
// Scheduler invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fcfs_assignment_is_valid(n in 1usize..40, avail in 1usize..16) {
        let a = warp_parallel_compilation::parcc::fcfs(n, avail);
        prop_assert_eq!(a.workstation.len(), n);
        prop_assert!(a.workstation.iter().all(|&w| (1..=avail).contains(&w)));
        prop_assert_eq!(a.processors, n.min(avail));
        // FCFS spreads maximally before wrapping.
        let used: std::collections::HashSet<usize> = a.workstation.iter().copied().collect();
        prop_assert_eq!(used.len(), n.min(avail));
    }
}
