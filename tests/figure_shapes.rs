//! Shape assertions for the paper's headline results (DESIGN.md §4).
//!
//! These run a reduced set of the figure-harness measurements (the full
//! sweep lives in `parcc-bench`) and pin the qualitative claims:
//! parallel compilation loses on tiny functions, wins 3–6× on medium
//! and larger ones, system overhead can be negative, and the user
//! program behaves as §4.3 reports.

use warp_parallel_compilation::parcc::Experiment;
use warp_workload::FunctionSize;

#[test]
fn tiny_functions_never_profit() {
    // Paper Fig. 3/6: "for small functions, parallel compilation is of
    // no use" — speedup below 1 everywhere, worsening with n.
    let e = Experiment::default();
    let s1 = e.synthetic(FunctionSize::Tiny, 1).unwrap().speedup;
    let s8 = e.synthetic(FunctionSize::Tiny, 8).unwrap().speedup;
    assert!(s1 < 1.0, "{s1}");
    assert!(s8 < s1, "tiny speedup should fall with n: {s8} vs {s1}");
}

#[test]
fn speedup_grows_with_function_count() {
    // Paper Fig. 6: speedup > 1 and increasing with n for everything
    // beyond f_tiny.
    let e = Experiment::default();
    for size in [
        FunctionSize::Small,
        FunctionSize::Medium,
        FunctionSize::Large,
    ] {
        let s2 = e.synthetic(size, 2).unwrap().speedup;
        let s8 = e.synthetic(size, 8).unwrap().speedup;
        assert!(s2 > 1.0, "{size} n=2: {s2}");
        assert!(s8 > s2, "{size}: speedup must grow with n ({s2} → {s8})");
    }
}

#[test]
fn speedup_peaks_before_the_largest_size() {
    // Paper Fig. 7: performance "decreases again for f_huge" — the
    // largest function pays its own paging and is beaten by f_large.
    let e = Experiment::default();
    let large = e.synthetic(FunctionSize::Large, 8).unwrap().speedup;
    let huge = e.synthetic(FunctionSize::Huge, 8).unwrap().speedup;
    assert!(
        huge < large,
        "f_huge {huge} must trail f_large {large} at n=8"
    );
}

#[test]
fn size_barely_matters_at_one_function() {
    // Paper Fig. 7: "If the number of functions is small, the size of
    // the function does not influence speedup" (≈1 at n=1).
    let e = Experiment::default();
    for size in [
        FunctionSize::Medium,
        FunctionSize::Large,
        FunctionSize::Huge,
    ] {
        let s = e.synthetic(size, 1).unwrap().speedup;
        assert!((0.8..1.35).contains(&s), "{size} n=1 speedup {s} not ≈ 1");
    }
}

#[test]
fn medium_system_overhead_is_negative_at_small_n() {
    // Paper Fig. 9: the sequential compiler's swapping exceeds the
    // parallel compiler's startup for f_medium at 1–2 functions.
    let e = Experiment::default();
    for n in [1usize, 2] {
        let c = e.synthetic(FunctionSize::Medium, n).unwrap();
        assert!(
            c.overheads.system_s < 0.0,
            "medium n={n}: system overhead {:.1}s should be negative",
            c.overheads.system_s
        );
    }
}

#[test]
fn relative_overhead_increases_with_function_count() {
    // Paper §4.2.3: "in all tests the relative overhead increases with
    // the number of functions, regardless of their size."
    let e = Experiment::default();
    for size in [
        FunctionSize::Small,
        FunctionSize::Medium,
        FunctionSize::Large,
    ] {
        let o2 = e.synthetic(size, 2).unwrap().overheads.total_frac;
        let o8 = e.synthetic(size, 8).unwrap().overheads.total_frac;
        assert!(
            o8 > o2,
            "{size}: overhead fraction must grow with n ({o2} → {o8})"
        );
    }
}

#[test]
fn tiny_overhead_dominates_elapsed_time() {
    // Paper Fig. 8: for f_tiny the overhead reaches ~70%+ of elapsed.
    let e = Experiment::default();
    let c = e.synthetic(FunctionSize::Tiny, 8).unwrap();
    assert!(
        c.overheads.total_frac > 0.6,
        "tiny n=8 overhead fraction {:.2}",
        c.overheads.total_frac
    );
}

#[test]
fn user_program_matches_section_4_3() {
    let e = Experiment::default();
    let c2 = e.user_program(2).unwrap();
    let c5 = e.user_program(5).unwrap();
    let c9 = e.user_program(9).unwrap();
    // Super-ideal at 2 processors (sequential swapping).
    assert!(c2.speedup > 2.0, "user @2: {}", c2.speedup);
    // Headline range with ≤ 9 processors.
    assert!(
        c9.speedup > 3.0 && c9.speedup < 6.0,
        "user @9: {}",
        c9.speedup
    );
    // "the speedup for 5 processors is almost as good as … 9 processors".
    assert!(
        (c9.speedup - c5.speedup).abs() / c9.speedup < 0.1,
        "@5 {} vs @9 {}",
        c5.speedup,
        c9.speedup
    );
    // Monotone in processors.
    assert!(c2.speedup < c5.speedup);
}

#[test]
fn headline_speedups_in_paper_range() {
    // Abstract: "a speedup ranging from 3 to 6 using not more than 9
    // processors" for typical programs (medium-to-large functions).
    let e = Experiment::default();
    let medium = e.synthetic(FunctionSize::Medium, 4).unwrap().speedup;
    let large = e.synthetic(FunctionSize::Large, 4).unwrap().speedup;
    assert!((2.5..7.0).contains(&medium), "medium n=4: {medium}");
    assert!((3.0..7.0).contains(&large), "large n=4: {large}");
}
