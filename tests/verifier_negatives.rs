//! Golden tests: known-bad images are rejected with stable messages.
//!
//! Each case constructs (or corrupts) an image with a specific defect
//! — a structurally hazardous word, a modulo schedule with an illegal
//! initiation interval, a dangling branch target — and checks both
//! that the static verifiers reject it and that the rendered error
//! text matches the checked-in golden file exactly. The goldens pin
//! the diagnostic wording: error messages are part of the tool's
//! interface, and drive-by rewording should show up in review.
//!
//! Regenerate with `BLESS=1 cargo test --test verifier_negatives`.

use warp_analyze::{verify_function_image, verify_pipelined_loop};
use warp_codegen::phase3;
use warp_target::isa::{BranchOp, Op, Opcode, Operand, Reg};
use warp_target::program::FunctionImage;
use warp_target::word::InstructionWord;
use warp_target::CellConfig;

fn assert_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with BLESS=1)"));
    assert_eq!(
        actual, expected,
        "rendered errors diverge from golden {name}; run with BLESS=1 to regenerate"
    );
}

fn render<E: std::fmt::Display>(errs: &[E]) -> String {
    let mut out = String::new();
    for e in errs {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Two divides one word apart on the floating multiplier: the second
/// issue arrives while the unit is still reserved for eleven more
/// cycles.
#[test]
fn hazardous_word_is_rejected() {
    let div = Op::new2(
        Opcode::FDiv,
        Reg::RET,
        Operand::Reg(Reg::arg(0)),
        Operand::Reg(Reg::arg(0)),
    );
    let mut w0 = InstructionWord::new();
    w0.place(warp_target::fu::FuKind::FMul, div).unwrap();
    let mut w1 = InstructionWord::new();
    w1.place(warp_target::fu::FuKind::FMul, div).unwrap();
    w1.branch = Some(BranchOp::Ret);
    let img = FunctionImage {
        name: "hazard".to_string(),
        code: vec![w0, w1],
        data_words: 0,
        param_count: 1,
        returns_value: true,
        call_relocs: Vec::new(),
    };
    let errs = verify_function_image(&img, &CellConfig::default(), Some(1));
    assert!(!errs.is_empty(), "hazardous image must be rejected");
    assert_golden("hazard_word.txt", &render(&errs));
}

/// A compiled software-pipelined loop whose recorded plan claims an
/// initiation interval below the resource minimum: the schedule
/// checker must reject the plan and the image that no longer matches
/// it.
#[test]
fn bad_initiation_interval_is_rejected() {
    let src = "module m; section a on cells 0..0; function f(x: float, n: int): float \
               var t: float; v: float[32]; i: int; begin \
               t := 0.0; for i := 0 to 31 do t := t + v[i] * x; end; return t; \
               end; end;";
    let checked = warp_lang::phase1(src).expect("phase1");
    let f = &checked.module.sections[0].functions[0];
    let p2 = warp_ir::phase2::phase2(
        f,
        &checked.sections[0].symbol_tables[0],
        &checked.sections[0].signatures,
    )
    .expect("phase2");
    let p3 = phase3(&p2, &CellConfig::default(), warp_codegen::DEFAULT_MAX_II).expect("phase3");
    assert!(!p3.pipelined.is_empty(), "loop should software-pipeline");

    let mut info = p3.pipelined[0].clone();
    assert!(
        verify_pipelined_loop(&info, &p3.image).is_empty(),
        "valid plan verifies clean"
    );
    info.plan.ii = 1; // below the resource minimum for this loop body
    let errs = verify_pipelined_loop(&info, &p3.image);
    assert!(
        !errs.is_empty(),
        "shrunk initiation interval must be rejected"
    );
    assert_golden("bad_ii.txt", &render(&errs));
}

/// A branch to a word the function does not have — the machine-level
/// shape of a dangling basic block reference.
#[test]
fn dangling_branch_target_is_rejected() {
    let add = Op::new2(
        Opcode::IAdd,
        Reg::RET,
        Operand::Reg(Reg::arg(0)),
        Operand::ImmI(1),
    );
    let mut w0 = InstructionWord::new();
    w0.place(warp_target::fu::FuKind::Alu, add).unwrap();
    w0.branch = Some(BranchOp::Jump(7));
    let mut w1 = InstructionWord::new();
    w1.branch = Some(BranchOp::Ret);
    let img = FunctionImage {
        name: "dangling".to_string(),
        code: vec![w0, w1],
        data_words: 0,
        param_count: 1,
        returns_value: true,
        call_relocs: Vec::new(),
    };
    let errs = verify_function_image(&img, &CellConfig::default(), Some(1));
    assert!(!errs.is_empty(), "dangling branch target must be rejected");
    assert_golden("dangling_block.txt", &render(&errs));
}
