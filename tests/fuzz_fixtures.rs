//! Regression-fixture runner: replays every corpus file under
//! `tests/fixtures/fuzz/` through the three-way differential check.
//!
//! Fixtures are shrunk reproducers of past (or representative)
//! disagreements between the strict interpreter, the batched
//! interpreter and the static verifier. A committed fixture means the
//! bug is fixed, so replay asserts *agreement* — this is how shrunk
//! reproducers stay green forever. Dropping a new `.w2` file into the
//! directory is all it takes to add one; the runner discovers files
//! itself.

use parcc::fuzz::replay_fixture;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fuzz")
}

#[test]
fn every_committed_fixture_replays_clean() {
    let dir = fixture_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|e| e == "w2")).then_some(path)
        })
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "no fixtures found in {} — the seed corpus should be committed",
        dir.display()
    );
    let mut failures = Vec::new();
    for path in &paths {
        if let Err(e) = replay_fixture(path) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} fixtures failed:\n{}",
        failures.len(),
        paths.len(),
        failures.join("\n")
    );
}
