//! Property tests: every lane of the batched interpreter is
//! bit-identical to a solo strict-interpreter run.
//!
//! The comparison inside [`parcc::fuzz::check_source`] is total: it
//! matches halt/trap status (including the exact fault and the cycle
//! it latched on), the full register file down to bit patterns, the
//! poison (definedness) bits of every register, and the output
//! queues. The properties here drive that check across randomly
//! seeded corpora and harness shapes; the final test is the
//! acceptance-criterion bulk run — over a thousand generated programs
//! with zero disagreements.

use parcc::fuzz::{check_source, generate_source, run, CheckOutcome, FuzzConfig};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn assert_agrees(seed: u64, cfg: &FuzzConfig) -> Result<(), TestCaseError> {
    let src = generate_source(seed, cfg);
    match check_source(&src, cfg) {
        CheckOutcome::Agree { lanes, .. } => {
            prop_assert_eq!(lanes, cfg.lanes);
            Ok(())
        }
        CheckOutcome::CompileError(e) => Err(TestCaseError::fail(format!(
            "seed {seed}: generator bug: {e}\n{src}"
        ))),
        CheckOutcome::Disagree(d) => Err(TestCaseError::fail(format!(
            "seed {seed}: engines disagree: {d}\n{src}"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Batch lanes equal solo strict runs — registers, poison bits and
    /// trap cycles included — across random seeds at the default shape.
    #[test]
    fn batch_lane_equals_solo_strict_run(seed in any::<u64>()) {
        assert_agrees(seed, &FuzzConfig::default())?;
    }

    /// The same property when the harness shape itself varies: lane
    /// counts from 1 to 24, shallow to deep nests, small to fat bodies.
    #[test]
    fn agreement_is_shape_independent(
        seed in any::<u64>(),
        lanes in 1usize..24,
        max_depth in 1usize..4,
        max_stmts in 8usize..40,
    ) {
        let cfg = FuzzConfig { lanes, max_depth, max_stmts, ..FuzzConfig::default() };
        assert_agrees(seed, &cfg)?;
    }

    /// Tight cycle budgets make `CycleLimit` traps common; both
    /// engines must latch them at the same cycle with the same error.
    #[test]
    fn trap_cycles_match_under_tight_budgets(
        seed in any::<u64>(),
        max_cycles in 8u64..600,
    ) {
        let cfg = FuzzConfig { max_cycles, ..FuzzConfig::default() };
        assert_agrees(seed, &cfg)?;
    }
}

/// Acceptance criterion: the batch interpreter is bit-identical to the
/// strict interpreter on more than a thousand generated programs
/// (every lane compared register-for-register, poison bits and all).
#[test]
fn a_thousand_generated_programs_with_zero_disagreements() {
    let cfg = FuzzConfig {
        programs: 1000,
        seed: 0xBA7C4,
        ..FuzzConfig::default()
    };
    let report = run(&cfg);
    assert_eq!(report.programs, 1000);
    assert_eq!(report.lanes, 1000 * cfg.lanes);
    assert!(
        report.disagreements.is_empty(),
        "disagreements: {:#?}",
        report
            .disagreements
            .iter()
            .map(|d| (&d.detail, &d.source))
            .collect::<Vec<_>>()
    );
    // The corpus genuinely exercises the trap paths.
    assert!(report.trapped_lanes > 0, "corpus never trapped: too tame");
}
