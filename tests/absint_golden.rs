//! Golden fact reports for the checked-in example programs.
//!
//! Every `examples/*.w2` is compiled with the abstract interpreter on
//! and its [`parcc::facts_report`] — the exact text `warpcc --absint
//! --emit facts` prints — is compared verbatim against
//! `tests/golden/absint/<example>.facts`. Any analysis change that
//! strengthens, weakens or reorders the proven facts shows up as a
//! reviewable diff. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test absint_golden
//! ```

use parcc::{compile_module_source, facts_report, CompileOptions};
use std::path::Path;

#[test]
fn example_fact_reports_match_golden() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    std::fs::create_dir_all(root.join("tests/golden/absint")).expect("golden dir");
    let opts = CompileOptions {
        absint: true,
        ..CompileOptions::default()
    };

    let mut examples: Vec<String> = std::fs::read_dir(root.join("examples"))
        .expect("examples dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "w2").then(|| p.file_stem().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    examples.sort();
    assert!(!examples.is_empty(), "no .w2 examples found");

    for name in &examples {
        let src = std::fs::read_to_string(root.join(format!("examples/{name}.w2")))
            .expect("read example");
        let r = compile_module_source(&src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = facts_report(&r.records);
        let golden_path = root.join(format!("tests/golden/absint/{name}.facts"));
        if update {
            std::fs::write(&golden_path, &report).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!("{name}: golden file missing — run with UPDATE_GOLDEN=1 to create it")
        });
        assert_eq!(
            report, golden,
            "{name}: fact report drifted from tests/golden/absint/{name}.facts — \
             rerun with UPDATE_GOLDEN=1 and review the diff"
        );
    }
}
