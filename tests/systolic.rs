//! Multi-cell systolic executions of compiled modules.

use warp_parallel_compilation::parcc::threads::compile_parallel;
use warp_parallel_compilation::parcc::{compile_module_source, CompileOptions};
use warp_target::interp::{ArrayMachine, Value};
use warp_target::CellConfig;

fn horner_module(coeffs: &[f32], points: usize) -> String {
    let mut s = String::from("module horner;\n");
    for (k, c) in coeffs.iter().enumerate() {
        s.push_str(&format!(
            "section stage{k} on cells {k}..{k};\n\
             function main()\n\
             var x: float; acc: float; i: int;\n\
             begin\n\
               for i := 1 to {points} do\n\
                 receive(left, x); receive(left, acc);\n\
                 acc := acc * x + {c:?};\n\
                 send(right, x); send(right, acc);\n\
               end;\n\
               return;\n\
             end;\nend;\n"
        ));
    }
    s
}

#[test]
fn four_cell_horner_matches_host() {
    let coeffs = [2.0f32, -1.0, 0.5, 3.0];
    let points = [0.0f32, 1.0, -2.0, 0.25];
    let src = horner_module(&coeffs, points.len());
    let result = compile_module_source(&src, &CompileOptions::default()).expect("compile");
    assert_eq!(result.module_image.section_images.len(), 4);

    let mut array =
        ArrayMachine::new(CellConfig::default(), &result.module_image.section_images).unwrap();
    for &x in &points {
        array.cell_mut(0).in_left.push_back(Value::F(x));
        array.cell_mut(0).in_left.push_back(Value::F(0.0));
    }
    array.run(1_000_000).expect("run");
    let last = array.cell_count() - 1;
    for &x in &points {
        let _ = array.cell_mut(last).out_right.pop_front().expect("x echo");
        let got = array.cell_mut(last).out_right.pop_front().expect("p(x)");
        let want = coeffs.iter().fold(0.0f32, |acc, c| acc * x + c);
        assert_eq!(got, Value::F(want), "x={x}");
    }
}

#[test]
fn ten_cell_pipeline_compiles_in_parallel_and_runs() {
    let coeffs: Vec<f32> = (0..10).map(|k| (k as f32) * 0.25 - 1.0).collect();
    let src = horner_module(&coeffs, 3);
    let seq = compile_module_source(&src, &CompileOptions::default()).unwrap();
    let (par, _) = compile_parallel(&src, &CompileOptions::default(), 8).unwrap();
    assert_eq!(seq.module_image, par.module_image);

    let mut array =
        ArrayMachine::new(CellConfig::default(), &par.module_image.section_images).unwrap();
    assert_eq!(array.cell_count(), 10);
    for &x in &[0.5f32, -0.5, 2.0] {
        array.cell_mut(0).in_left.push_back(Value::F(x));
        array.cell_mut(0).in_left.push_back(Value::F(0.0));
    }
    let stats = array.run(10_000_000).unwrap();
    assert!(stats.cycles > 0);
    // Three (x, p(x)) pairs emerge.
    assert_eq!(array.cell_mut(9).out_right.len(), 6);
}

#[test]
fn queue_backpressure_stalls_but_completes() {
    // A fast producer against a slow consumer: the producer must stall
    // when the consumer's input queue fills, and everything still
    // completes with all data intact.
    let src = "module bp;\n\
        section fast on cells 0..0;\n\
        function main()\n\
        var i: int;\n\
        begin\n\
          for i := 1 to 600 do send(right, float(i)); end;\n\
          return;\n\
        end;\nend;\n\
        section slow on cells 1..1;\n\
        function main()\n\
        var i: int; j: int; v: float; acc: float; t: float;\n\
        begin\n\
          acc := 0.0;\n\
          for i := 1 to 600 do\n\
            receive(left, v);\n\
            t := 0.0;\n\
            for j := 1 to 3 do t := t + v; end;\n\
            acc := acc + t;\n\
          end;\n\
          send(right, acc);\n\
          return;\n\
        end;\nend;\n";
    let result = compile_module_source(src, &CompileOptions::default()).unwrap();
    let mut array =
        ArrayMachine::new(CellConfig::default(), &result.module_image.section_images).unwrap();
    let stats = array.run(50_000_000).unwrap();
    assert!(stats.stall_cycles > 0, "producer should hit backpressure");
    // acc = 3 * sum(1..=600) = 3 * 180300
    assert_eq!(
        array.cell_mut(1).out_right.pop_front(),
        Some(Value::F(3.0 * 180_300.0))
    );
}
