//! Property tests for the machine model.
//!
//! Three contracts of `warp-target` that the schedulers and the phase-4
//! downloader rely on:
//!
//! * an [`InstructionWord`] can never hold two operations on the same
//!   functional-unit slot;
//! * the strict interpreter's structural-hazard detection agrees
//!   exactly with the reservation-table model (`Opcode::timing`) for
//!   random operation sequences;
//! * the download format round-trips bit-exactly and its checksum
//!   rejects any single-bit corruption.

use proptest::prelude::*;
use warp_target::download;
use warp_target::fu::FuKind;
use warp_target::interp::{Cell, FaultKind, InterpError};
use warp_target::isa::{BranchOp, CmpKind, Op, Opcode, Operand, Reg};
use warp_target::program::{CallReloc, FunctionImage, ModuleImage, SectionImage};
use warp_target::word::InstructionWord;
use warp_target::CellConfig;

/// Pool of side-effect-free computational opcodes (constant divisors
/// keep the iterative ops fault-free).
const OPCODES: [Opcode; 14] = [
    Opcode::IAdd,
    Opcode::ISub,
    Opcode::IMul,
    Opcode::IDiv,
    Opcode::IMod,
    Opcode::IMin,
    Opcode::ICmp(CmpKind::Lt),
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::FSqrt,
    Opcode::FExp,
    Opcode::FMax,
];

/// A closed operation: immediates only, so it cannot fault on operand
/// definedness, memory, or queues.
fn closed_op(opcode: Opcode, dst: u16) -> Op {
    let int = |v: i32| Operand::ImmI(v);
    let flt = |v: f32| Operand::ImmF(v);
    match opcode {
        Opcode::IAdd | Opcode::ISub | Opcode::IMul | Opcode::IMin | Opcode::ICmp(_) => {
            Op::new2(opcode, Reg(dst), int(21), int(4))
        }
        Opcode::IDiv | Opcode::IMod => Op::new2(opcode, Reg(dst), int(21), int(4)),
        Opcode::FSqrt | Opcode::FExp => Op::new1(opcode, Reg(dst), flt(1.75)),
        _ => Op::new2(opcode, Reg(dst), flt(1.75), flt(0.5)),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..OPCODES.len(), 12u16..28).prop_map(|(i, dst)| closed_op(OPCODES[i], dst))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Placing operations into a word succeeds exactly when the unit's
    /// slot is still free, and never displaces an earlier occupant.
    #[test]
    fn instruction_words_never_double_book_a_slot(
        placements in proptest::collection::vec((0usize..7, op_strategy()), 1..20)
    ) {
        let mut word = InstructionWord::new();
        let mut occupant: [Option<Op>; 7] = [None; 7];
        for (slot, op) in placements {
            let fu = FuKind::ALL[slot];
            let res = word.place(fu, op);
            prop_assert_eq!(res.is_ok(), occupant[slot].is_none());
            if occupant[slot].is_none() {
                occupant[slot] = Some(op);
            }
        }
        let expected = occupant.iter().flatten().count();
        prop_assert_eq!(word.ops().count(), expected);
        for fu in FuKind::ALL {
            prop_assert_eq!(word.slot(fu).copied(), occupant[fu.slot_index()]);
        }
    }

    /// The strict interpreter's hazard detection agrees with the
    /// reservation-table model: a schedule padded per
    /// `initiation_interval` always runs; the same ops packed
    /// back-to-back fault if and only if the model says a unit is
    /// still reserved.
    #[test]
    fn reservation_tables_and_strict_interpreter_agree(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        // Legal schedule: pad every op to its unit's next free cycle.
        let mut code = Vec::new();
        let mut free = [0u64; 7];
        for op in &ops {
            let fu = op.opcode.fu_candidates()[0];
            while (code.len() as u64) < free[fu.slot_index()] {
                code.push(InstructionWord::new());
            }
            let mut w = InstructionWord::new();
            w.place(fu, *op).unwrap();
            free[fu.slot_index()] =
                code.len() as u64 + u64::from(op.opcode.timing().initiation_interval);
            code.push(w);
        }
        code.push(InstructionWord::branch_only(BranchOp::Ret));
        run_strict(code).unwrap();

        // Dense schedule: one op per consecutive word, no padding.
        let mut code = Vec::new();
        let mut free = [0u64; 7];
        let mut violates = false;
        for op in &ops {
            let fu = op.opcode.fu_candidates()[0];
            let cycle = code.len() as u64;
            violates |= cycle < free[fu.slot_index()];
            free[fu.slot_index()] = cycle + u64::from(op.opcode.timing().initiation_interval);
            let mut w = InstructionWord::new();
            w.place(fu, *op).unwrap();
            code.push(w);
        }
        code.push(InstructionWord::branch_only(BranchOp::Ret));
        match run_strict(code) {
            Ok(()) => prop_assert!(!violates, "model predicted a hazard, none faulted"),
            Err(InterpError::Fault { kind: FaultKind::StructuralHazard(_), .. }) => {
                prop_assert!(violates, "faulted on a schedule the model calls legal")
            }
            Err(e) => prop_assert!(false, "unexpected error: {}", e),
        }
    }

    /// `download::encode` → `decode` is the identity, and flipping any
    /// single bit of the image makes `decode` reject it.
    #[test]
    fn download_round_trips_and_checksum_rejects_corruption(
        module in module_strategy(),
        flip in any::<u32>(),
    ) {
        let bytes = download::encode(&module).expect("encode");
        let decoded = download::decode(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &module);

        let mut corrupt = bytes.clone();
        let pos = flip as usize % corrupt.len();
        let bit = 1u8 << (flip % 8);
        corrupt[pos] ^= bit;
        prop_assert!(
            download::decode(&corrupt).is_err(),
            "decode accepted an image with bit {} of byte {} flipped",
            flip % 8,
            pos
        );
    }
}

fn run_strict(code: Vec<InstructionWord>) -> Result<(), InterpError> {
    let image = SectionImage {
        name: "s".into(),
        first_cell: 0,
        last_cell: 0,
        functions: vec![FunctionImage {
            name: "f".into(),
            code,
            data_words: 0,
            param_count: 0,
            returns_value: false,
            call_relocs: vec![],
        }],
        data_bases: vec![0],
        data_words: 0,
        entry: 0,
    };
    let mut cell = Cell::new(CellConfig::default(), image).expect("cell");
    cell.set_strict(true);
    cell.prepare_call("f", &[]).expect("prepare");
    cell.run(10_000).map(|_| ())
}

fn word_strategy() -> impl Strategy<Value = InstructionWord> {
    (
        proptest::collection::vec((0usize..6, op_strategy()), 0..4),
        0u32..3,
    )
        .prop_map(|(placements, br)| {
            let mut w = InstructionWord::new();
            for (slot, op) in placements {
                // Duplicate slots lose the race; that is fine here.
                let _ = w.place(FuKind::ALL[slot], op);
            }
            w.branch = match br {
                0 => None,
                1 => Some(BranchOp::Jump(3)),
                _ => Some(BranchOp::Ret),
            };
            w
        })
}

fn function_strategy() -> impl Strategy<Value = FunctionImage> {
    (
        proptest::sample::select(vec!["f", "g", "kernel", "main"]),
        proptest::collection::vec(word_strategy(), 1..12),
        0u32..64,
        0u16..4,
        proptest::bool::ANY,
    )
        .prop_map(
            |(name, code, data_words, param_count, returns_value)| FunctionImage {
                name: name.to_string(),
                code,
                data_words,
                param_count,
                returns_value,
                call_relocs: vec![CallReloc {
                    word: 0,
                    callee: "g".into(),
                }],
            },
        )
}

fn module_strategy() -> impl Strategy<Value = ModuleImage> {
    proptest::collection::vec(function_strategy(), 1..4).prop_map(|functions| {
        let data_bases = functions.iter().map(|f| f.data_words).collect();
        let data_words = functions.iter().map(|f| f.data_words).sum();
        ModuleImage {
            name: "m".into(),
            section_images: vec![SectionImage {
                name: "s".into(),
                first_cell: 0,
                last_cell: 9,
                functions,
                data_bases,
                data_words,
                entry: 0,
            }],
            io_driver: "host loop".into(),
        }
    })
}
