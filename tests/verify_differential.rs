//! Differential soundness test for the static machine-code verifier.
//!
//! The static verifier in `warp-analyze` claims to reject (at least)
//! every image the strict cycle-accurate interpreter rejects with a
//! *statically decidable* fault: uninitialized reads, structural
//! hazards, bad branch/call targets, missing operands, and bad
//! register numbers. This test checks the claim empirically: it
//! compiles a small corpus of call-free W2 functions, applies hundreds
//! of seeded single-point corruptions to the linked images, runs each
//! corrupted image on the strict interpreter, and asserts that
//! whenever the interpreter faults with a statically decidable kind,
//! the static verifier also flags the image.
//!
//! Data-dependent faults (`DivisionByZero`, `MemOutOfBounds`) and
//! non-fault outcomes (`CycleLimit`, successful halts) carry no
//! obligation: the verifier is allowed to accept such images. The
//! reverse direction is deliberately not asserted — the verifier is
//! conservative and may reject images whose corrupt paths the chosen
//! arguments never execute.

use parcc::{compile_module_source, CompileOptions};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use warp_analyze::verify_section_image;
use warp_target::batch::{BatchInterp, LaneInput, LaneStatus};
use warp_target::fu::FuKind;
use warp_target::interp::{Cell, FaultKind, InterpError, Value};
use warp_target::isa::{BranchOp, Op, Operand, Reg};
use warp_target::program::SectionImage;
use warp_target::word::InstructionWord;
use warp_target::CellConfig;

/// Call-free single-function bodies exercising the code shapes the
/// compiler produces: straight-line float math, branches, software
/// pipelined loops, stores, iterative units (div/sqrt), and integer
/// loops.
const BODIES: &[&str] = &[
    // Software-pipelined reduction loop.
    "t := 0.0;\n     for i := 0 to 31 do t := t + v[i] * x; end;\n     return t;",
    // Branchy straight-line code.
    "t := x;\n     if n > 3 then t := t * 2.0; else t := t + 1.0; end;\n     if n > 8 then t := t - x; end;\n     return t;",
    // Store loop followed by a load loop.
    "t := 0.0;\n     for i := 0 to 15 do v[i] := x * 3.0 + x; end;\n     for i := 0 to 15 do t := t + v[i]; end;\n     return t;",
    // Iterative units: divide and square root occupy their FUs for
    // several cycles, so hazard corruption has something to hit.
    "t := x;\n     for i := 0 to 7 do t := t + sqrt(t * t) / 2.0; end;\n     return t;",
    // Integer while-loop with iterative integer ops.
    "m := n * n + 40;\n     k := 0;\n     while m > 0 do m := m div 2; k := k + 1; end;\n     t := x;\n     for i := 0 to k do t := t * 1.5; end;\n     return t;",
];

fn wrap(body: &str) -> String {
    format!(
        "module m; section s on cells 0..0; function f(x: float, n: int): float \
         var t: float; v: float[32]; i: int; m: int; k: int; begin {body} end; end;"
    )
}

fn compile_corpus() -> Vec<SectionImage> {
    let opts = CompileOptions::default();
    BODIES
        .iter()
        .map(|body| {
            let result = compile_module_source(&wrap(body), &opts).expect("corpus compiles");
            assert_eq!(result.module_image.section_images.len(), 1);
            result.module_image.section_images[0].clone()
        })
        .collect()
}

/// The mutant cycle budget, shared by both engines.
const MUTANT_CYCLES: u64 = 500_000;

/// The arguments every mutant is called with.
const MUTANT_ARGS: [Value; 2] = [Value::F(1.5), Value::I(7)];

/// Keeps only statically decidable fault kinds.
fn classify(kind: FaultKind) -> Option<FaultKind> {
    match kind {
        FaultKind::UninitializedRead(_)
        | FaultKind::StructuralHazard(_)
        | FaultKind::PcOutOfBounds
        | FaultKind::BadCallTarget(_)
        | FaultKind::MissingOperand
        | FaultKind::BadRegister(_) => Some(kind),
        // Data-dependent: the verifier only catches constant cases.
        FaultKind::MemOutOfBounds(_) | FaultKind::DivisionByZero => None,
    }
}

/// Runs the strict interpreter over `sec` and classifies the outcome.
/// Returns `Some(kind)` when it rejects with a statically decidable
/// fault, `None` otherwise.
fn strict_run(sec: &SectionImage, config: &CellConfig) -> Option<FaultKind> {
    let Ok(mut cell) = Cell::new(*config, sec.clone()) else {
        // Size violations are checked statically too, but our
        // mutations never change the image size.
        return None;
    };
    cell.set_strict(true);
    if cell.prepare_call("f", &MUTANT_ARGS).is_err() {
        return None;
    }
    let outcome = cell.run(MUTANT_CYCLES);
    let kind = match outcome {
        Err(InterpError::Fault { kind, .. }) => kind,
        // A successful halt must still deliver a defined return value
        // to the host; strict mode faults the host-side read.
        Ok(_) => match cell.reg(Reg::RET) {
            Err(InterpError::Fault { kind, .. }) => kind,
            _ => return None,
        },
        Err(_) => return None,
    };
    classify(kind)
}

/// The batch-engine equivalent of [`strict_run`]'s classification for
/// one finished lane.
fn batch_outcome(batch: &BatchInterp, lane: usize) -> Option<FaultKind> {
    let kind = match batch.status(lane) {
        LaneStatus::Trapped(InterpError::Fault { kind, .. }) => *kind,
        LaneStatus::Halted => match batch.reg(lane, Reg::RET) {
            Err(InterpError::Fault { kind, .. }) => kind,
            _ => return None,
        },
        _ => return None,
    };
    classify(kind)
}

/// All `(word, fu)` pairs holding an op.
fn op_sites(code: &[InstructionWord]) -> Vec<(usize, FuKind)> {
    code.iter()
        .enumerate()
        .flat_map(|(w, word)| word.ops().map(move |(fu, _)| (w, fu)))
        .collect()
}

/// Applies one seeded single-point corruption to the entry function of
/// `sec`. Returns a short label describing the mutation for failure
/// messages.
fn mutate(sec: &mut SectionImage, rng: &mut SmallRng, config: &CellConfig) -> &'static str {
    let img = &mut sec.functions[sec.entry];
    let len = img.code.len();
    let sites = op_sites(&img.code);
    for _ in 0..16 {
        match rng.gen_range(0..7u32) {
            0 if len >= 2 => {
                // Swap two instruction words.
                let i = rng.gen_range(0..len);
                let j = rng.gen_range(0..len);
                if i != j {
                    img.code.swap(i, j);
                    return "word swap";
                }
            }
            1 => {
                // Retarget a branch, half the time out of range.
                let branchy: Vec<usize> = (0..len)
                    .filter(|&w| {
                        matches!(
                            img.code[w].branch,
                            Some(BranchOp::Jump(_)) | Some(BranchOp::BrTrue(_, _))
                        )
                    })
                    .collect();
                if let Some(&w) = pick(&branchy, rng) {
                    let target = if rng.gen_bool(0.5) {
                        len as u32 + rng.gen_range(0..8u32)
                    } else {
                        rng.gen_range(0..len as u32)
                    };
                    img.code[w].branch = match img.code[w].branch {
                        Some(BranchOp::Jump(_)) => Some(BranchOp::Jump(target)),
                        Some(BranchOp::BrTrue(r, _)) => Some(BranchOp::BrTrue(r, target)),
                        other => other,
                    };
                    return "branch retarget";
                }
            }
            2 => {
                // Clobber a register operand with a random (often
                // never-written or out-of-file) register.
                if let Some(&(w, fu)) = pick(&sites, rng) {
                    let mut op = *img.code[w].slot(fu).expect("site");
                    let junk = Reg(rng.gen_range(0..config.num_regs + 8));
                    let slot = rng.gen_range(0..2u32);
                    let target = if slot == 0 { &mut op.a } else { &mut op.b };
                    if matches!(target, Some(Operand::Reg(_))) {
                        *target = Some(Operand::Reg(junk));
                        img.code[w].replace(fu, op);
                        return "operand clobber";
                    }
                }
            }
            3 => {
                // Drop an operand entirely.
                if let Some(&(w, fu)) = pick(&sites, rng) {
                    let mut op = *img.code[w].slot(fu).expect("site");
                    if rng.gen_bool(0.5) && op.a.is_some() {
                        op.a = None;
                    } else if op.b.is_some() {
                        op.b = None;
                    } else {
                        continue;
                    }
                    img.code[w].replace(fu, op);
                    return "operand drop";
                }
            }
            4 if len >= 1 => {
                // Clear a whole word (ops and branch).
                let w = rng.gen_range(0..len);
                if !img.code[w].is_empty() || img.code[w].branch.is_some() {
                    img.code[w] = InstructionWord::new();
                    return "word clear";
                }
            }
            5 => {
                // Duplicate an op into a neighbouring word on the same
                // unit — a structural hazard when the op is iterative.
                let iterative: Vec<(usize, FuKind, Op)> = sites
                    .iter()
                    .filter_map(|&(w, fu)| {
                        let op = *img.code[w].slot(fu)?;
                        (op.opcode.timing().initiation_interval > 1).then_some((w, fu, op))
                    })
                    .collect();
                if let Some(&(w, fu, op)) = pick(&iterative, rng) {
                    let occ = op.opcode.timing().initiation_interval as usize;
                    let dist = rng.gen_range(1..occ.max(2));
                    if w + dist < len {
                        img.code[w + dist].replace(fu, op);
                        return "hazard injection";
                    }
                }
            }
            6 => {
                // Clobber a destination register.
                if let Some(&(w, fu)) = pick(&sites, rng) {
                    let mut op = *img.code[w].slot(fu).expect("site");
                    if op.dst.is_some() {
                        op.dst = Some(Reg(rng.gen_range(0..config.num_regs + 8)));
                        img.code[w].replace(fu, op);
                        return "dst clobber";
                    }
                }
            }
            _ => {}
        }
    }
    "no-op"
}

fn pick<'a, T>(items: &'a [T], rng: &mut SmallRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

/// Every valid compiled image passes the static verifier; the
/// corpus would be useless otherwise.
#[test]
fn corpus_verifies_clean() {
    let config = CellConfig::default();
    for (i, sec) in compile_corpus().iter().enumerate() {
        let errs = verify_section_image(sec, &config);
        assert!(
            errs.is_empty(),
            "corpus program {i} should verify clean, got:\n{}",
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // And the unmutated image runs to completion under strict mode.
        assert!(
            strict_run(sec, &config).is_none(),
            "corpus program {i} should run clean"
        );
    }
}

/// ≥ 2,000 random single-point corruptions (600 seeds × 5 programs):
/// everywhere the interpreter rejects with a statically decidable
/// fault, the static verifier must reject too.
///
/// The batched interpreter is the runtime engine of the sweep — each
/// mutant becomes one lane, run in chunks on a single reused
/// [`BatchInterp`] — which is what makes a 10× larger sweep than the
/// original (60 seeds per program) affordable. Every 10th mutant is
/// also run solo on the strict interpreter and its classification
/// compared, so the sweep doubles as a batch-vs-strict differential on
/// thousands of *corrupted* (not just compiler-produced) images.
#[test]
fn static_verifier_covers_strict_interpreter() {
    let config = CellConfig::default();
    let corpus = compile_corpus();
    let mutations_per_program = 600u64;
    const CHUNK: usize = 64;

    // Generate the whole mutant population first.
    let mut mutants: Vec<(usize, u64, &'static str, SectionImage)> = Vec::new();
    for (pi, sec) in corpus.iter().enumerate() {
        for seed in 0..mutations_per_program {
            let mut rng = SmallRng::seed_from_u64((pi as u64) << 32 | seed);
            let mut mutated = sec.clone();
            let label = mutate(&mut mutated, &mut rng, &config);
            if label == "no-op" {
                continue;
            }
            mutants.push((pi, seed, label, mutated));
        }
    }
    let total = mutants.len();

    let mut interp_rejected = 0usize;
    let mut spot_checked = 0usize;
    let mut batch = BatchInterp::new(config, true);
    for chunk in mutants.chunks(CHUNK) {
        batch.reset();
        // One program and one lane per mutant; mutants whose image the
        // engine rejects at load time mirror `Cell::new` failures and
        // carry no obligation (mutations never change image sizes, so
        // this is not expected to trigger).
        let mut lane_of: Vec<Option<usize>> = Vec::with_capacity(chunk.len());
        for (_, _, _, img) in chunk {
            match batch.add_program(img) {
                Ok(p) => {
                    let input = LaneInput::call(p, "f", MUTANT_ARGS.to_vec());
                    lane_of.push(batch.add_lane(&input).ok());
                }
                Err(_) => lane_of.push(None),
            }
        }
        batch.execute(MUTANT_CYCLES);

        for (i, (pi, seed, label, img)) in chunk.iter().enumerate() {
            let outcome = lane_of[i].and_then(|lane| batch_outcome(&batch, lane));
            // Strict spot-check: the batch classification must equal a
            // solo strict run on a sample of the population.
            if (pi * mutations_per_program as usize + *seed as usize).is_multiple_of(10) {
                spot_checked += 1;
                assert_eq!(
                    outcome,
                    strict_run(img, &config),
                    "program {pi} seed {seed}: batch and strict classify \
                     the `{label}` mutant differently"
                );
            }
            if let Some(kind) = outcome {
                interp_rejected += 1;
                let errs = verify_section_image(img, &config);
                assert!(
                    !errs.is_empty(),
                    "program {pi} seed {seed}: interpreter faulted with {kind:?} after \
                     `{label}` mutation, but the static verifier accepted the image"
                );
            }
        }
    }

    assert!(
        total >= 2000,
        "expected at least 2,000 corruptions, applied {total}"
    );
    assert!(
        interp_rejected >= 300,
        "expected a meaningful number of interpreter rejections, got {interp_rejected}/{total}"
    );
    assert!(
        spot_checked >= 200,
        "spot-check sample too small: {spot_checked}"
    );
}

/// One seeded *source-level* mutation of a corpus body: integer-literal
/// replacement, comparison flip, arithmetic-operator swap, or
/// statement-line swap. Returns `None` when the chosen strategy finds
/// no site (the caller just skips the seed). Mutants that no longer
/// compile are likewise skipped — the interesting population is the
/// semantically *changed but valid* programs.
fn mutate_body(body: &str, rng: &mut SmallRng) -> Option<String> {
    match rng.gen_range(0..4u32) {
        0 => {
            // Replace an integer literal (loop bounds, divisors,
            // thresholds) with one from a pool that includes values
            // driving indices out of bounds and divisors to zero.
            let bytes = body.as_bytes();
            let mut spans: Vec<(usize, usize)> = Vec::new();
            let mut i = 0;
            while i < bytes.len() {
                if bytes[i].is_ascii_digit() {
                    let st = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    // Skip fraction digits of float literals.
                    if st == 0 || bytes[st - 1] != b'.' {
                        spans.push((st, i));
                    }
                } else {
                    i += 1;
                }
            }
            let &(st, en) = pick(&spans, rng)?;
            const POOL: &[&str] = &["0", "1", "2", "3", "7", "15", "31", "40", "100"];
            let repl = POOL[rng.gen_range(0..POOL.len())];
            if &body[st..en] == repl {
                return None;
            }
            Some(format!("{}{}{}", &body[..st], repl, &body[en..]))
        }
        1 => {
            // Flip a comparison operator.
            const CMPS: &[&str] = &[" > ", " < ", " >= ", " <= "];
            let sites: Vec<(usize, usize)> = CMPS
                .iter()
                .enumerate()
                .flat_map(|(ci, pat)| {
                    body.match_indices(pat)
                        .map(move |(at, _)| (at, ci))
                        .collect::<Vec<_>>()
                })
                .collect();
            let &(at, ci) = pick(&sites, rng)?;
            let to = rng.gen_range(0..CMPS.len());
            if to == ci {
                return None;
            }
            Some(format!(
                "{}{}{}",
                &body[..at],
                CMPS[to],
                &body[at + CMPS[ci].len()..]
            ))
        }
        2 => {
            // Swap an arithmetic operator.
            const OPS: &[&str] = &[" + ", " - ", " * "];
            let sites: Vec<(usize, usize)> = OPS
                .iter()
                .enumerate()
                .flat_map(|(oi, pat)| {
                    body.match_indices(pat)
                        .map(move |(at, _)| (at, oi))
                        .collect::<Vec<_>>()
                })
                .collect();
            let &(at, oi) = pick(&sites, rng)?;
            let to = rng.gen_range(0..OPS.len());
            if to == oi {
                return None;
            }
            Some(format!(
                "{}{}{}",
                &body[..at],
                OPS[to],
                &body[at + OPS[oi].len()..]
            ))
        }
        _ => {
            // Swap two whole lines (statement reorder; unbalanced
            // results simply fail to compile and are skipped).
            let lines: Vec<&str> = body.lines().collect();
            if lines.len() < 2 {
                return None;
            }
            let i = rng.gen_range(0..lines.len());
            let j = rng.gen_range(0..lines.len());
            if i == j {
                return None;
            }
            let mut swapped: Vec<&str> = lines.clone();
            swapped.swap(i, j);
            Some(swapped.join("\n"))
        }
    }
}

/// Absint soundness over *source-level* mutants: mutating literals,
/// comparisons, operators and statement order must never make the
/// abstract interpreter claim a false "no-trap" or "dead-branch" fact.
/// Every valid mutant is compiled with `absint` on, its facts are
/// checked on every lane by the strict IR evaluator, and the
/// fact-driven rewrites must leave machine outcomes unchanged
/// ([`parcc::fuzz::check_absint`]).
#[test]
fn absint_facts_stay_sound_on_source_mutants() {
    use parcc::fuzz::{check_absint, FactOracleStats, FuzzConfig};
    let cfg = FuzzConfig::default();
    let mut stats = FactOracleStats::default();
    let mut valid = 0usize;
    for (pi, body) in BODIES.iter().enumerate() {
        for seed in 0..80u64 {
            let mut rng = SmallRng::seed_from_u64(0x4A42_0000_0000_0000 | (pi as u64) << 32 | seed);
            let Some(mutant) = mutate_body(body, &mut rng) else {
                continue;
            };
            let src = wrap(&mutant);
            if compile_module_source(&src, &CompileOptions::default()).is_err() {
                continue;
            }
            valid += 1;
            if let Err(e) = check_absint(&src, &cfg, &mut stats) {
                panic!("program {pi} seed {seed}: mutant gained a false fact: {e}\n{mutant}");
            }
        }
    }
    assert!(
        valid >= 250,
        "expected at least 250 valid mutants, got {valid}"
    );
    assert!(stats.claims > 0, "mutant population proved no facts at all");
    assert!(stats.eval_runs > 0);
}

/// Acceptance check: `verify_each_pass` compiles every workload size
/// cleanly — the verifiers never misfire on valid compiler output.
#[test]
fn verify_each_pass_clean_over_all_workload_sizes() {
    use warp_workload::{synthetic_program, FunctionSize};
    let opts = CompileOptions {
        verify_each_pass: true,
        ..CompileOptions::default()
    };
    for size in FunctionSize::ALL {
        let src = synthetic_program(size, 2);
        compile_module_source(&src, &opts)
            .unwrap_or_else(|e| panic!("{size:?} should verify clean: {e}"));
    }
}
