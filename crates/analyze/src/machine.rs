//! Static verification of machine code images.
//!
//! Re-checks, *without executing*, every structural property the strict
//! interpreter ([`warp_target::interp::Cell`]) enforces at run time:
//!
//! * **word legality** — every op sits on a functional unit that can
//!   execute it, carries the operands its opcode needs, and names only
//!   registers that exist in the configuration;
//! * **control flow** — branch and call targets are in range, calls are
//!   resolved (or covered by a relocation in unlinked images), and no
//!   path can fall off the end of the code;
//! * **structural hazards** — an op on a multi-cycle functional unit
//!   (`initiation_interval > 1`) is never followed, along *any* control
//!   path, by another op on the same unit within the occupancy window.
//!   This is sound because a word issued `d` words later executes at
//!   least `d` cycles later (queue stalls only widen the gap);
//! * **definedness** — a latency-aware forward dataflow over the words
//!   proves that no register is read before a writeback has landed in
//!   it on every path, mirroring the interpreter's strict
//!   `UninitializedRead` faults;
//! * **constant faults** — constant divisors of zero and constant
//!   addresses outside data memory, which the interpreter would fault
//!   on unconditionally.
//!
//! Two documented approximations keep the analysis tractable: data
//! memory is modelled as always-defined (the interpreter initializes it
//! defined; poison can only enter through a store of an undefined
//! value, and that store's *register* read is already flagged), and a
//! call is assumed to land all in-flight writebacks and define the
//! return register while leaving other registers untouched.

use std::collections::BTreeSet;

use warp_target::config::CellConfig;
use warp_target::isa::{BranchOp, Op, Opcode, Operand, Reg};
use warp_target::program::{FunctionImage, ModuleImage, SectionImage};

/// One defect found by the static machine-code verifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MachineError {
    /// Function the defect is in.
    pub function: String,
    /// Word index the defect is anchored to.
    pub word: usize,
    /// What is wrong, in a stable human-readable form.
    pub message: String,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "static check failed for `{}` word {}: {}",
            self.function, self.word, self.message
        )
    }
}

impl std::error::Error for MachineError {}

/// `true` if the opcode reads its `a` operand.
fn reads_a(op: Opcode) -> bool {
    !matches!(op, Opcode::Recv(_))
}

/// `true` if the opcode reads its `b` operand.
fn reads_b(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::IAdd
            | Opcode::ISub
            | Opcode::IMul
            | Opcode::IDiv
            | Opcode::IMod
            | Opcode::IMin
            | Opcode::IMax
            | Opcode::ICmp(_)
            | Opcode::FAdd
            | Opcode::FSub
            | Opcode::FMul
            | Opcode::FDiv
            | Opcode::FMin
            | Opcode::FMax
            | Opcode::FCmp(_)
            | Opcode::BAnd
            | Opcode::BOr
            | Opcode::Store
            | Opcode::SelT
    )
}

/// `true` if the opcode produces a register result (so compiled code
/// must name a destination).
fn needs_dst(op: Opcode) -> bool {
    !matches!(op, Opcode::Store | Opcode::Send(_))
}

/// Per-register dataflow fact: `vis` is "a defined value is visible
/// now"; bit `k` of `pend` is "a writeback lands in `k + 1` cycles on
/// every path here", with the matching bit of `pend_def` recording
/// whether that writeback carries a defined value.
#[derive(Clone, Copy, PartialEq, Eq)]
struct RegFact {
    vis: bool,
    pend: u16,
    pend_def: u16,
}

impl RegFact {
    const UNDEF: RegFact = RegFact {
        vis: false,
        pend: 0,
        pend_def: 0,
    };
    const DEF: RegFact = RegFact {
        vis: true,
        pend: 0,
        pend_def: 0,
    };

    /// Meet of two facts: defined only if defined on both paths, a
    /// pending write survives only if present on both paths at the
    /// same distance with the same definedness.
    fn meet(&mut self, other: &RegFact) -> bool {
        let vis = self.vis && other.vis;
        let pend = self.pend & other.pend;
        let pend_def = self.pend_def & other.pend_def & pend;
        let changed = vis != self.vis || pend != self.pend || pend_def != self.pend_def;
        self.vis = vis;
        self.pend = pend;
        self.pend_def = pend_def;
        changed
    }

    /// Advances one word: the nearest pending writeback (if any) lands.
    fn advance(&mut self) {
        if self.pend & 1 != 0 {
            self.vis = self.pend_def & 1 != 0;
        }
        self.pend >>= 1;
        self.pend_def >>= 1;
    }

    /// Records a writeback issued now with the given latency.
    fn write(&mut self, latency: u32, def: bool) {
        let bit = 1u16 << (latency.clamp(1, 12) - 1);
        self.pend |= bit;
        if def {
            self.pend_def |= bit;
        } else {
            self.pend_def &= !bit;
        }
    }

    /// Lands every pending writeback (call boundary / halt drain).
    fn land_all(&mut self) {
        for k in 0..16 {
            if self.pend & (1 << k) != 0 {
                self.vis = self.pend_def & (1 << k) != 0;
            }
        }
        self.pend = 0;
        self.pend_def = 0;
    }
}

struct Checker<'a> {
    img: &'a FunctionImage,
    config: &'a CellConfig,
    function_count: Option<usize>,
    errors: Vec<MachineError>,
    seen: BTreeSet<(usize, String)>,
}

impl<'a> Checker<'a> {
    fn report(&mut self, word: usize, message: String) {
        if self.seen.insert((word, message.clone())) {
            self.errors.push(MachineError {
                function: self.img.name.clone(),
                word,
                message,
            });
        }
    }

    fn num_regs(&self) -> u16 {
        self.config.num_regs
    }

    fn check_reg(&mut self, word: usize, r: Reg) -> bool {
        if r.0 >= self.num_regs() {
            self.report(word, format!("bad register r{}", r.0));
            return false;
        }
        true
    }

    /// Word-local checks: unit legality, operand arity, register
    /// bounds, constant addresses and divisors, same-word write ports.
    fn check_words(&mut self) {
        for (pc, word) in self.img.code.iter().enumerate() {
            let mut dsts: Vec<Reg> = Vec::new();
            for (fu, op) in word.ops() {
                let op = *op;
                if !op.opcode.fu_candidates().contains(&fu) {
                    self.report(pc, format!("op cannot issue on the {} unit", fu.name()));
                }
                if reads_a(op.opcode) && op.a.is_none() {
                    self.report(pc, "missing operand".to_string());
                }
                if reads_b(op.opcode) && op.b.is_none() {
                    self.report(pc, "missing operand".to_string());
                }
                if needs_dst(op.opcode) {
                    match op.dst {
                        None => self.report(pc, "missing destination".to_string()),
                        Some(d) => {
                            if self.check_reg(pc, d) && dsts.contains(&d) {
                                self.report(pc, format!("write-port conflict on r{}", d.0));
                            }
                            dsts.push(d);
                        }
                    }
                }
                for operand in [op.a, op.b].into_iter().flatten() {
                    if let Operand::Reg(r) = operand {
                        self.check_reg(pc, r);
                    }
                }
                self.check_constants(pc, &op);
            }
            if let Some(BranchOp::BrTrue(r, _)) = word.branch {
                self.check_reg(pc, r);
            }
        }
    }

    /// Constant addresses out of data memory and constant divisors of
    /// zero — faults the interpreter raises regardless of input data.
    fn check_constants(&mut self, pc: usize, op: &Op) {
        match op.opcode {
            Opcode::Load | Opcode::Store => {
                let bound = i64::from(self.config.data_mem_words);
                match op.a {
                    Some(Operand::ImmI(v)) if i64::from(v) < 0 || i64::from(v) >= bound => {
                        self.report(pc, format!("constant address {v} out of bounds"));
                    }
                    Some(Operand::Addr(a))
                        if i64::from(a) >= bound
                            || (!self.img.is_linked() && a >= self.img.data_words) =>
                    {
                        self.report(pc, format!("constant address {a} out of bounds"));
                    }
                    _ => {}
                }
            }
            Opcode::IDiv | Opcode::IMod if op.b == Some(Operand::ImmI(0)) => {
                self.report(pc, "constant zero divisor".to_string());
            }
            _ => {}
        }
    }

    /// Successor word indices of `pc` (targets already range-checked
    /// by [`Checker::check_control`]; out-of-range ones are skipped).
    fn successors(&self, pc: usize) -> Vec<usize> {
        let len = self.img.code.len();
        let word = &self.img.code[pc];
        let mut out = Vec::new();
        match word.branch {
            None => {
                if pc + 1 < len {
                    out.push(pc + 1);
                }
            }
            Some(BranchOp::Jump(t)) => {
                if (t as usize) < len {
                    out.push(t as usize);
                }
            }
            Some(BranchOp::BrTrue(_, t)) => {
                if (t as usize) < len {
                    out.push(t as usize);
                }
                if pc + 1 < len {
                    out.push(pc + 1);
                }
            }
            Some(BranchOp::Call(_)) => {
                if pc + 1 < len {
                    out.push(pc + 1);
                }
            }
            Some(BranchOp::Ret) => {}
        }
        out
    }

    /// Branch/call target ranges, call resolution, and fall-off-the-end.
    fn check_control(&mut self) {
        let len = self.img.code.len();
        if len == 0 {
            self.report(0, "function has no code".to_string());
            return;
        }
        for (pc, word) in self.img.code.iter().enumerate() {
            let falls_through = match word.branch {
                None | Some(BranchOp::BrTrue(..)) | Some(BranchOp::Call(_)) => true,
                Some(BranchOp::Jump(_)) | Some(BranchOp::Ret) => false,
            };
            if falls_through && pc + 1 >= len {
                self.report(pc, "control can fall off the end of the code".to_string());
            }
            match word.branch {
                Some(BranchOp::Jump(t)) | Some(BranchOp::BrTrue(_, t)) if t as usize >= len => {
                    self.report(pc, format!("branch target {t} out of range"));
                }
                Some(BranchOp::Call(t)) => {
                    let has_reloc = self.img.call_relocs.iter().any(|r| r.word as usize == pc);
                    if has_reloc {
                        // The linker will patch this word; nothing to check.
                    } else if t == u32::MAX {
                        self.report(pc, "unresolved call".to_string());
                    } else if let Some(n) = self.function_count {
                        if t as usize >= n {
                            self.report(pc, format!("call target {t} out of range"));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Path-based structural-hazard check. For every op whose unit
    /// stays busy for `occ > 1` cycles, walk all control successors up
    /// to `occ - 1` words ahead: any op on the same unit there would
    /// re-issue while the unit is still occupied. Sound because a word
    /// `d` words downstream executes at least `d` cycles later.
    fn check_hazards(&mut self) {
        for (pc, word) in self.img.code.iter().enumerate() {
            for (fu, op) in word.ops() {
                let occ = op.opcode.timing().initiation_interval;
                if occ <= 1 {
                    continue;
                }
                // BFS over word successors to distance occ - 1.
                let mut frontier = vec![pc];
                let mut visited = BTreeSet::new();
                for dist in 1..occ as usize {
                    let mut next = Vec::new();
                    for &w in &frontier {
                        for s in self.successors(w) {
                            if visited.insert(s) {
                                next.push(s);
                            }
                        }
                    }
                    for &s in &next {
                        if self.img.code[s].slot(fu).is_some() {
                            self.report(
                                s,
                                format!(
                                    "structural hazard on the {} unit: reissue {} words \
                                     after an op that occupies it for {} cycles",
                                    fu.name(),
                                    dist,
                                    occ
                                ),
                            );
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    /// Latency-aware forward definedness analysis over the words.
    fn check_definedness(&mut self) {
        let len = self.img.code.len();
        if len == 0 {
            return;
        }
        let nregs = usize::from(self.num_regs());
        let mut entry: Vec<Option<Vec<RegFact>>> = vec![None; len];
        let mut start = vec![RegFact::UNDEF; nregs];
        for i in 0..self.img.param_count {
            let r = usize::from(Reg::arg(i).0);
            if r < nregs {
                start[r] = RegFact::DEF;
            }
        }
        entry[0] = Some(start);
        let mut worklist = vec![0usize];
        let mut reads: BTreeSet<(usize, u16)> = BTreeSet::new();
        while let Some(pc) = worklist.pop() {
            let Some(state) = entry[pc].clone() else {
                continue;
            };
            let outs = self.flow_word(pc, state, &mut reads);
            for (succ, out) in outs {
                match &mut entry[succ] {
                    slot @ None => {
                        *slot = Some(out);
                        worklist.push(succ);
                    }
                    Some(existing) => {
                        let mut changed = false;
                        for (e, o) in existing.iter_mut().zip(out.iter()) {
                            changed |= e.meet(o);
                        }
                        if changed {
                            worklist.push(succ);
                        }
                    }
                }
            }
        }
        for (pc, r) in reads {
            self.report(pc, format!("register r{r} may be read before definition"));
        }
    }

    /// Transfer function for one word; records maybe-undefined reads
    /// into `reads` and returns the out-state per successor.
    fn flow_word(
        &self,
        pc: usize,
        mut s: Vec<RegFact>,
        reads: &mut BTreeSet<(usize, u16)>,
    ) -> Vec<(usize, Vec<RegFact>)> {
        let word = &self.img.code[pc];
        let nregs = s.len();
        let mut check_read = |s: &[RegFact], operand: Option<Operand>| -> bool {
            match operand {
                Some(Operand::Reg(r)) => {
                    let i = usize::from(r.0);
                    if i >= nregs {
                        return false; // flagged as bad register elsewhere
                    }
                    if !s[i].vis {
                        reads.insert((pc, r.0));
                    }
                    s[i].vis
                }
                None => true, // flagged as missing operand elsewhere
                _ => true,    // immediates are always defined
            }
        };
        for (_, op) in word.ops() {
            let def_a = if reads_a(op.opcode) {
                check_read(&s, op.a)
            } else {
                true
            };
            let def_b = if reads_b(op.opcode) {
                check_read(&s, op.b)
            } else {
                true
            };
            let result_def = match op.opcode {
                // Data memory starts defined in the interpreter; a
                // store of an undefined value is already flagged at the
                // store's value read, so loads are modelled as defined.
                Opcode::Load => true,
                // Queue values were sent defined (or flagged at the
                // sender's read).
                Opcode::Recv(_) => true,
                // Select reads the old destination value when the
                // condition is false.
                Opcode::SelT => {
                    def_a
                        && def_b
                        && op
                            .dst
                            .map(|d| s.get(usize::from(d.0)).map(|f| f.vis).unwrap_or(false))
                            .unwrap_or(false)
                }
                _ => def_a && def_b,
            };
            if let Some(d) = op.dst {
                let i = usize::from(d.0);
                if i < nregs {
                    s[i].write(op.opcode.timing().latency, result_def);
                }
            }
        }
        match word.branch {
            Some(BranchOp::BrTrue(r, _)) => {
                check_read(&s, Some(Operand::Reg(r)));
            }
            Some(BranchOp::Call(_)) => {
                // The callee runs for many cycles: every in-flight
                // writeback lands, and the return value arrives in r0.
                // Other registers are assumed preserved (the register
                // allocator saves live registers across calls).
                for f in s.iter_mut() {
                    f.land_all();
                }
                s[usize::from(Reg::RET.0)] = RegFact::DEF;
            }
            Some(BranchOp::Ret) if self.img.returns_value => {
                let mut r0 = s[usize::from(Reg::RET.0)];
                r0.land_all();
                if !r0.vis {
                    reads.insert((pc, Reg::RET.0));
                }
            }
            _ => {}
        }
        for f in s.iter_mut() {
            f.advance();
        }
        self.successors(pc)
            .into_iter()
            .map(|succ| (succ, s.clone()))
            .collect()
    }

    fn run(mut self) -> Vec<MachineError> {
        if self.img.code.len() as u32 > self.config.inst_mem_words {
            self.report(
                0,
                format!(
                    "code size {} exceeds instruction memory {}",
                    self.img.code.len(),
                    self.config.inst_mem_words
                ),
            );
        }
        if self.img.data_words > self.config.data_mem_words {
            self.report(
                0,
                format!(
                    "data size {} exceeds data memory {}",
                    self.img.data_words, self.config.data_mem_words
                ),
            );
        }
        self.check_control();
        self.check_words();
        self.check_hazards();
        self.check_definedness();
        self.errors.sort();
        self.errors
    }
}

/// Statically verifies one function image against a cell
/// configuration. `function_count` bounds direct call targets when the
/// image lives inside a linked section; pass `None` for a standalone
/// (unlinked) image.
pub fn verify_function_image(
    img: &FunctionImage,
    config: &CellConfig,
    function_count: Option<usize>,
) -> Vec<MachineError> {
    Checker {
        img,
        config,
        function_count,
        errors: Vec::new(),
        seen: BTreeSet::new(),
    }
    .run()
}

/// Statically verifies every function of a linked section image, plus
/// the section-level size budgets.
pub fn verify_section_image(sec: &SectionImage, config: &CellConfig) -> Vec<MachineError> {
    let mut errors = Vec::new();
    if sec.code_words() > config.inst_mem_words {
        errors.push(MachineError {
            function: sec.name.clone(),
            word: 0,
            message: format!(
                "section code size {} exceeds instruction memory {}",
                sec.code_words(),
                config.inst_mem_words
            ),
        });
    }
    if sec.data_words > config.data_mem_words {
        errors.push(MachineError {
            function: sec.name.clone(),
            word: 0,
            message: format!(
                "section data size {} exceeds data memory {}",
                sec.data_words, config.data_mem_words
            ),
        });
    }
    for f in &sec.functions {
        errors.extend(verify_function_image(f, config, Some(sec.functions.len())));
    }
    errors
}

/// Statically verifies every section of a module image.
pub fn verify_module_image(module: &ModuleImage, config: &CellConfig) -> Vec<MachineError> {
    module
        .section_images
        .iter()
        .flat_map(|s| verify_section_image(s, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_target::fu::FuKind;
    use warp_target::isa::{BranchOp, Op, Opcode, Operand, Reg};
    use warp_target::word::InstructionWord;

    fn op(opcode: Opcode, dst: u16, a: Operand, b: Operand) -> Op {
        Op {
            opcode,
            dst: Some(Reg(dst)),
            a: Some(a),
            b: Some(b),
        }
    }

    fn image(words: Vec<InstructionWord>) -> FunctionImage {
        FunctionImage {
            name: "t".into(),
            code: words,
            data_words: 0,
            param_count: 1,
            returns_value: true,
            call_relocs: Vec::new(),
        }
    }

    fn ret_word() -> InstructionWord {
        InstructionWord::branch_only(BranchOp::Ret)
    }

    #[test]
    fn accepts_trivial_function() {
        // r0 := r1 + 1; ret (Move lands 1 cycle later; drain covers it).
        let mut w = InstructionWord::new();
        w.place(
            FuKind::Alu,
            op(Opcode::IAdd, 0, Operand::Reg(Reg(1)), Operand::ImmI(1)),
        )
        .unwrap();
        let img = image(vec![w, ret_word()]);
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_read_before_definition() {
        let mut w = InstructionWord::new();
        // r0 := r5 + 1 where r5 was never written.
        w.place(
            FuKind::Alu,
            op(Opcode::IAdd, 0, Operand::Reg(Reg(5)), Operand::ImmI(1)),
        )
        .unwrap();
        let img = image(vec![w, ret_word()]);
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.message.contains("before definition")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_latency_violation() {
        // FAdd has latency 5: reading the result on the next word is
        // too early.
        let mut w0 = InstructionWord::new();
        w0.place(
            FuKind::FAdd,
            op(Opcode::FAdd, 2, Operand::Reg(Reg(1)), Operand::ImmF(1.0)),
        )
        .unwrap();
        let mut w1 = InstructionWord::new();
        w1.place(
            FuKind::Mem,
            Op {
                opcode: Opcode::Store,
                dst: None,
                a: Some(Operand::ImmI(0)),
                b: Some(Operand::Reg(Reg(2))),
            },
        )
        .unwrap();
        let mut img = image(vec![w0, w1, ret_word()]);
        img.data_words = 1;
        // r0 never defined on this path; silence by not returning.
        img.returns_value = false;
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.word == 1 && e.message.contains("r2")),
            "{errs:?}"
        );
    }

    #[test]
    fn accepts_read_after_latency_elapses() {
        let mut w0 = InstructionWord::new();
        w0.place(
            FuKind::FAdd,
            op(Opcode::FAdd, 2, Operand::Reg(Reg(1)), Operand::ImmF(1.0)),
        )
        .unwrap();
        let mut words = vec![w0];
        for _ in 0..5 {
            words.push(InstructionWord::new());
        }
        let mut w6 = InstructionWord::new();
        w6.place(
            FuKind::Alu,
            op(Opcode::Move, 0, Operand::Reg(Reg(2)), Operand::ImmI(0)),
        )
        .unwrap();
        words.push(w6);
        words.push(ret_word());
        let img = image(words);
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_structural_hazard() {
        // Two FDiv ops (occupancy 12) back to back on the FMul unit.
        let fdiv = op(Opcode::FDiv, 2, Operand::Reg(Reg(1)), Operand::ImmF(2.0));
        let mut w0 = InstructionWord::new();
        w0.place(FuKind::FMul, fdiv).unwrap();
        let mut w1 = InstructionWord::new();
        w1.place(
            FuKind::FMul,
            op(Opcode::FDiv, 3, Operand::Reg(Reg(1)), Operand::ImmF(4.0)),
        )
        .unwrap();
        let mut img = image(vec![w0, w1, ret_word()]);
        img.returns_value = false;
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.message.contains("structural hazard")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_dangling_branch_target() {
        let w = InstructionWord::branch_only(BranchOp::Jump(99));
        let img = image(vec![w]);
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.message.contains("out of range")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_fall_off_end() {
        let mut w = InstructionWord::new();
        w.place(
            FuKind::Alu,
            op(Opcode::IAdd, 0, Operand::Reg(Reg(1)), Operand::ImmI(1)),
        )
        .unwrap();
        let img = image(vec![w]);
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.message.contains("fall off")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_wrong_unit_and_bad_register() {
        let mut w = InstructionWord::new();
        // FAdd op forced onto the Mem unit via replace().
        w.replace(
            FuKind::Mem,
            op(Opcode::FAdd, 900, Operand::Reg(Reg(1)), Operand::ImmF(0.0)),
        );
        let mut img = image(vec![w, ret_word()]);
        img.returns_value = false;
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.message.contains("cannot issue")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.message.contains("bad register")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_constant_zero_divisor() {
        let mut w = InstructionWord::new();
        w.place(
            FuKind::Alu,
            op(Opcode::IDiv, 0, Operand::Reg(Reg(1)), Operand::ImmI(0)),
        )
        .unwrap();
        let img = image(vec![w, ret_word()]);
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.message.contains("zero divisor")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_unresolved_call() {
        let w = InstructionWord::branch_only(BranchOp::Call(u32::MAX));
        let img = image(vec![w, ret_word()]);
        let errs = verify_function_image(&img, &CellConfig::default(), None);
        assert!(
            errs.iter().any(|e| e.message.contains("unresolved call")),
            "{errs:?}"
        );
    }
}
