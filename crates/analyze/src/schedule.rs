//! Static checks on software-pipelined loop schedules.
//!
//! Phase 3 records a [`PipelinedLoopInfo`] for every modulo-scheduled
//! loop it emits. This module re-derives the schedule invariants from
//! first principles and checks them against both the plan and the
//! emitted instruction words:
//!
//! * the initiation interval respects the **resource MII** recomputed
//!   from the loop body's functional-unit pressure;
//! * the **modulo reservation table** holds: no two placements occupy
//!   the same unit in overlapping windows, and no two placements write
//!   the same register in the same kernel slot;
//! * every placement's op actually appears in the emitted kernel at
//!   `kernel_start + time mod II` on its planned unit, and the
//!   prologue/epilogue rows replay the stage-filtered subsets;
//! * the **loop-control protocol** is intact: the kernel's last word
//!   branches back to `kernel_start` on the counter register, the
//!   counter decrement sits where the [`CounterStrategy`] says (and in
//!   an earlier word than the branch for
//!   [`CounterStrategy::EarlierWord`]), and the guard initializes the
//!   counter with the strategy's start value (`trip − (S−1)` vs
//!   `trip − S`).

use warp_codegen::{CounterStrategy, PipelinedLoopInfo};
use warp_target::fu::FuKind;
use warp_target::isa::{BranchOp, Op, Opcode, Operand};
use warp_target::program::FunctionImage;

/// One violated schedule invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Function the pipelined loop belongs to.
    pub function: String,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule check failed for `{}`: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for ScheduleError {}

/// Recomputes the resource-constrained minimum initiation interval
/// from the loop body ops — the same bound the planner uses: integer
/// ops can go to either of two units, every other family is tied to
/// one.
pub fn resource_mii(ops: &[Op]) -> u32 {
    let mut single = [0u32; 7];
    let mut int_load = 0u32;
    for op in ops {
        let cands = op.opcode.fu_candidates();
        let ii = op.opcode.timing().initiation_interval;
        if cands.len() == 1 {
            single[cands[0].slot_index()] += ii;
        } else {
            int_load += ii;
        }
    }
    let alu = single[FuKind::Alu.slot_index()];
    let agu = single[FuKind::Agu.slot_index()];
    let mut mii = 1u32.max((alu + agu + int_load).div_ceil(2));
    for fu in FuKind::ALL {
        if !matches!(fu, FuKind::Alu | FuKind::Agu) {
            mii = mii.max(single[fu.slot_index()]);
        }
    }
    mii
}

struct SchedChecker<'a> {
    info: &'a PipelinedLoopInfo,
    image: &'a FunctionImage,
    errors: Vec<ScheduleError>,
}

impl<'a> SchedChecker<'a> {
    fn report(&mut self, message: String) {
        self.errors.push(ScheduleError {
            function: self.image.name.clone(),
            message,
        });
    }

    /// Plan-internal invariants: II vs MII, stage count, reservation
    /// table, write ports, counter strategy shape.
    fn check_plan(&mut self) {
        let plan = &self.info.plan;
        let ii = plan.ii;
        if ii == 0 {
            self.report("initiation interval is zero".to_string());
            return;
        }
        let mii = resource_mii(&self.info.ops);
        if ii < mii {
            self.report(format!(
                "initiation interval {ii} below resource minimum {mii}"
            ));
        }
        if let Some(max_time) = plan.placements.iter().map(|p| p.time).max() {
            let stages = max_time / ii + 1;
            if plan.stages != stages {
                self.report(format!(
                    "plan claims {} stages but placements span {}",
                    plan.stages, stages
                ));
            }
        }
        for p in &plan.placements {
            if p.op_idx >= self.info.ops.len() {
                self.report(format!(
                    "placement names op {} of {}",
                    p.op_idx,
                    self.info.ops.len()
                ));
            }
        }
        // Modulo reservation table: occupancy windows on one unit must
        // not overlap, and two ops must not write one register in the
        // same kernel slot.
        for (i, a) in plan.placements.iter().enumerate() {
            let Some(op_a) = self.info.ops.get(a.op_idx) else {
                continue;
            };
            let occ_a = op_a.opcode.timing().initiation_interval;
            for b in plan.placements.iter().skip(i + 1) {
                let Some(op_b) = self.info.ops.get(b.op_idx) else {
                    continue;
                };
                if a.fu == b.fu {
                    let occ_b = op_b.opcode.timing().initiation_interval;
                    let sa = a.time % ii;
                    let sb = b.time % ii;
                    let overlap = (0..occ_a).any(|k| (sa + k) % ii == sb)
                        || (0..occ_b).any(|k| (sb + k) % ii == sa);
                    if overlap {
                        self.report(format!(
                            "reservation conflict on the {} unit at kernel slot {}",
                            a.fu.name(),
                            sb % ii
                        ));
                    }
                }
                if let (Some(da), Some(db)) = (op_a.dst, op_b.dst) {
                    if da == db && a.time % ii == b.time % ii {
                        self.report(format!(
                            "write-port conflict on r{} at kernel slot {}",
                            da.0,
                            a.time % ii
                        ));
                    }
                }
            }
        }
        if let CounterStrategy::EarlierWord { slot, .. } = plan.counter {
            if slot + 1 >= ii {
                self.report(format!(
                    "counter decrement at slot {slot} would not land before the \
                     kernel branch at slot {}",
                    ii - 1
                ));
            }
        }
    }

    /// The emitted words must replay the plan: kernel rows, prologue
    /// and epilogue rows, backedge, counter decrement and counter
    /// initialization.
    fn check_image(&mut self) {
        let plan = &self.info.plan;
        let ii = plan.ii;
        if ii == 0 {
            return;
        }
        let s = plan.stages;
        let kernel_start = self.info.kernel_start;
        let kernel_end = kernel_start as u64 + u64::from(ii);
        if kernel_end > self.image.code.len() as u64 {
            self.report(format!(
                "kernel [{kernel_start}, {kernel_end}) exceeds code size {}",
                self.image.code.len()
            ));
            return;
        }
        if u64::from(kernel_start) < u64::from(s - 1) * u64::from(ii) {
            self.report(format!(
                "kernel at word {kernel_start} leaves no room for {} prologue rows",
                s - 1
            ));
            return;
        }
        let prologue_start = kernel_start - (s - 1) * ii;

        // Kernel placements present at their planned word and unit.
        for pl in &plan.placements {
            let Some(op) = self.info.ops.get(pl.op_idx) else {
                continue;
            };
            let word = (kernel_start + pl.time % ii) as usize;
            if self.image.code[word].slot(pl.fu) != Some(op) {
                self.report(format!(
                    "kernel word {word} does not hold the planned op on the {} unit",
                    pl.fu.name()
                ));
            }
        }
        // Prologue rows replay stage-filtered subsets.
        for p in 0..s - 1 {
            let base = prologue_start + p * ii;
            for pl in plan.prologue_row(p) {
                let Some(op) = self.info.ops.get(pl.op_idx) else {
                    continue;
                };
                let word = (base + pl.time % ii) as usize;
                if word >= self.image.code.len() || self.image.code[word].slot(pl.fu) != Some(op) {
                    self.report(format!(
                        "prologue row {p} word {word} does not hold the planned op \
                         on the {} unit",
                        pl.fu.name()
                    ));
                }
            }
        }
        // Epilogue rows follow the kernel.
        for r in 1..s {
            let base = kernel_start + r * ii;
            for pl in plan.epilogue_row(r) {
                let Some(op) = self.info.ops.get(pl.op_idx) else {
                    continue;
                };
                let word = (base + pl.time % ii) as usize;
                if word >= self.image.code.len() || self.image.code[word].slot(pl.fu) != Some(op) {
                    self.report(format!(
                        "epilogue row {r} word {word} does not hold the planned op \
                         on the {} unit",
                        pl.fu.name()
                    ));
                }
            }
        }

        // Backedge: last kernel word branches to kernel_start on the
        // counter register.
        let last = (kernel_start + ii - 1) as usize;
        let counter = match self.image.code[last].branch {
            Some(BranchOp::BrTrue(r, t)) if t == kernel_start => r,
            other => {
                self.report(format!(
                    "kernel word {last} ends in {other:?} instead of a backedge \
                     branch to word {kernel_start}"
                ));
                return;
            }
        };
        // Counter decrement where the strategy says.
        let (dec_word, dec_fu) = match plan.counter {
            CounterStrategy::EarlierWord { slot, fu } => ((kernel_start + slot) as usize, fu),
            CounterStrategy::SameWord { fu } => (last, fu),
        };
        let is_dec = |op: &Op| {
            op.opcode == Opcode::ISub
                && op.dst == Some(counter)
                && op.a == Some(Operand::Reg(counter))
                && op.b == Some(Operand::ImmI(1))
        };
        if dec_word >= self.image.code.len()
            || !self.image.code[dec_word].slot(dec_fu).is_some_and(is_dec)
        {
            self.report(format!(
                "kernel word {dec_word} does not decrement the counter r{} on \
                 the {} unit",
                counter.0,
                dec_fu.name()
            ));
        }
        // Counter initialization in the guard: an ISub into the
        // counter subtracting the strategy's start offset.
        let init_sub = match plan.counter {
            CounterStrategy::EarlierWord { .. } => (s - 1) as i32,
            CounterStrategy::SameWord { .. } => s as i32,
        };
        let init_ok = self.image.code[..prologue_start as usize].iter().any(|w| {
            w.ops().any(|(_, op)| {
                op.opcode == Opcode::ISub
                    && op.dst == Some(counter)
                    && op.b == Some(Operand::ImmI(init_sub))
            })
        });
        if !init_ok {
            self.report(format!(
                "no guard word initializes the counter r{} with start offset {init_sub}",
                counter.0
            ));
        }
    }

    fn run(mut self) -> Vec<ScheduleError> {
        self.check_plan();
        self.check_image();
        self.errors
    }
}

/// Checks one pipelined loop's plan and emitted words.
pub fn verify_pipelined_loop(
    info: &PipelinedLoopInfo,
    image: &FunctionImage,
) -> Vec<ScheduleError> {
    SchedChecker {
        info,
        image,
        errors: Vec::new(),
    }
    .run()
}

/// Checks every pipelined loop phase 3 recorded for a function.
pub fn verify_function_schedule(
    pipelined: &[PipelinedLoopInfo],
    image: &FunctionImage,
) -> Vec<ScheduleError> {
    pipelined
        .iter()
        .flat_map(|info| verify_pipelined_loop(info, image))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_codegen::phase3::{phase3, DEFAULT_MAX_II};
    use warp_ir::phase2::phase2;
    use warp_lang::phase1;

    fn compile(body: &str) -> (Vec<PipelinedLoopInfo>, FunctionImage) {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[32]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        let p2 = phase2(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
        )
        .expect("phase2");
        let p3 = phase3(
            &p2,
            &warp_target::config::CellConfig::default(),
            DEFAULT_MAX_II,
        )
        .expect("phase3");
        (p3.pipelined, p3.image)
    }

    #[test]
    fn accepts_compiled_pipelined_loop() {
        let (plans, image) =
            compile("t := 0.0; for i := 0 to 31 do t := t + v[i] * x; end; return t;");
        assert!(!plans.is_empty(), "loop should pipeline");
        let errs = verify_function_schedule(&plans, &image);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_shrunk_initiation_interval() {
        let (mut plans, image) =
            compile("t := 0.0; for i := 0 to 31 do t := t + v[i] * x; end; return t;");
        assert!(!plans.is_empty());
        plans[0].plan.ii = 1.max(plans[0].plan.ii / 2);
        let errs = verify_function_schedule(&plans, &image);
        assert!(!errs.is_empty(), "shrunk II must be rejected");
    }

    #[test]
    fn rejects_clobbered_kernel_word() {
        let (plans, mut image) =
            compile("t := 0.0; for i := 0 to 31 do t := t + v[i] * x; end; return t;");
        assert!(!plans.is_empty());
        let pl = &plans[0].plan.placements[0];
        let word = (plans[0].kernel_start + pl.time % plans[0].plan.ii) as usize;
        image.code[word] = warp_target::word::InstructionWord::new();
        let errs = verify_function_schedule(&plans, &image);
        assert!(
            errs.iter()
                .any(|e| e.message.contains("does not hold the planned op")
                    || e.message.contains("backedge")
                    || e.message.contains("decrement")),
            "{errs:?}"
        );
    }
}
