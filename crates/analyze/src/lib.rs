//! # warp-analyze
//!
//! Static verification and lint subsystem for the Warp parallel
//! compiler. Three layers, one per compiler representation:
//!
//! * **source** — the W2 lints ([`warp_lang::lint`], re-exported
//!   here): unused variables, dead assignments, unreachable code;
//! * **IR** — the phase-2 verifier ([`warp_ir::verify`], re-exported
//!   here): CFG well-formedness, type consistency, def-before-use. It
//!   runs at every pass boundary when `verify_each_pass` is enabled;
//! * **machine code** — the [`machine`] verifier replays reservation
//!   tables and writeback latencies over emitted
//!   [`warp_target::program::FunctionImage`]s without executing them,
//!   rejecting everything the strict interpreter would fault on
//!   structurally; the [`schedule`] checker re-derives the modulo
//!   schedule invariants (II ≥ resource MII, stage layout, counter
//!   protocol) from phase 3's recorded loop plans.
//!
//! The machine verifier is *sound* with respect to the strict
//! interpreter for structural faults: any `UninitializedRead`,
//! `StructuralHazard`, `PcOutOfBounds`, `BadCallTarget`,
//! `MissingOperand` or `BadRegister` fault the interpreter can raise
//! is flagged statically (data-dependent faults — division by a
//! runtime zero, a computed address out of bounds — are out of scope).
//! The differential property test in the workspace root exercises this
//! claim with hundreds of random single-point image corruptions.

#![warn(missing_docs)]

pub mod machine;
pub mod schedule;

pub use machine::{
    verify_function_image, verify_module_image, verify_section_image, MachineError,
};
pub use schedule::{
    resource_mii, verify_function_schedule, verify_pipelined_loop, ScheduleError,
};

// The source- and IR-level layers live with their representations;
// re-export them so drivers depend on one analysis crate.
pub use warp_ir::verify::{verify_after, verify_func, VerifyError};
pub use warp_lang::lint::{lint_function, lint_module};
