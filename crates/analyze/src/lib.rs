//! # warp-analyze
//!
//! Static verification and lint subsystem for the Warp parallel
//! compiler. Three layers, one per compiler representation:
//!
//! * **source** — the W2 lints ([`warp_lang::lint`], re-exported
//!   here): unused variables, dead assignments, unreachable code;
//! * **IR** — the phase-2 verifier ([`warp_ir::verify`], re-exported
//!   here): CFG well-formedness, type consistency, def-before-use. It
//!   runs at every pass boundary when `verify_each_pass` is enabled.
//!   The [`absint`] abstract interpreter (also re-exported from
//!   `warp_ir`) runs on the same representation and proves per-function
//!   value/poison facts — see `docs/ANALYSIS.md`;
//! * **machine code** — the [`machine`] verifier replays reservation
//!   tables and writeback latencies over emitted
//!   [`warp_target::program::FunctionImage`]s without executing them,
//!   rejecting everything the strict interpreter would fault on
//!   structurally; the [`schedule`] checker re-derives the modulo
//!   schedule invariants (II ≥ resource MII, stage layout, counter
//!   protocol) from phase 3's recorded loop plans.
//!
//! The machine verifier is *sound* with respect to the strict
//! interpreter for structural faults: any `UninitializedRead`,
//! `StructuralHazard`, `PcOutOfBounds`, `BadCallTarget`,
//! `MissingOperand` or `BadRegister` fault the interpreter can raise
//! is flagged statically (data-dependent faults — division by a
//! runtime zero, a computed address out of bounds — are out of scope).
//! The differential property test in the workspace root exercises this
//! claim with hundreds of random single-point image corruptions.

#![warn(missing_docs)]

pub mod machine;
pub mod schedule;

pub use machine::{verify_function_image, verify_module_image, verify_section_image, MachineError};
pub use schedule::{resource_mii, verify_function_schedule, verify_pipelined_loop, ScheduleError};

// The source- and IR-level layers live with their representations;
// re-export them so drivers depend on one analysis crate.
pub use warp_ir::absint;
pub use warp_ir::absint::{analyze, Analysis, FactSet};
pub use warp_ir::verify::{verify_after, verify_func, VerifyError};
pub use warp_lang::lint::{lint_function, lint_module};

use warp_obs::{Trace, TrackId};
use warp_target::config::CellConfig;
use warp_target::program::{FunctionImage, ModuleImage};

/// [`verify_function_image`] with one `"verify"` span
/// (`machine:<function>`) recorded on `track` of `trace`; the span
/// carries the error count as an argument.
pub fn verify_function_image_traced(
    img: &FunctionImage,
    config: &CellConfig,
    function_count: Option<usize>,
    trace: &Trace,
    track: TrackId,
) -> Vec<machine::MachineError> {
    let mut span = trace.span("verify", format!("machine:{}", img.name), track);
    let errs = verify_function_image(img, config, function_count);
    span.arg("errors", errs.len() as f64);
    errs
}

/// [`verify_function_schedule`] with one `"verify"` span
/// (`schedule:<function>`) recorded on `track` of `trace`.
pub fn verify_function_schedule_traced(
    pipelined: &[warp_codegen::emit::PipelinedLoopInfo],
    image: &FunctionImage,
    trace: &Trace,
    track: TrackId,
) -> Vec<schedule::ScheduleError> {
    let mut span = trace.span("verify", format!("schedule:{}", image.name), track);
    let errs = verify_function_schedule(pipelined, image);
    span.arg("errors", errs.len() as f64);
    span.arg("loops", pipelined.len() as f64);
    errs
}

/// [`verify_module_image`] with one `"verify"` span
/// (`module:<name>`) recorded on `track` of `trace`.
pub fn verify_module_image_traced(
    module: &ModuleImage,
    config: &CellConfig,
    trace: &Trace,
    track: TrackId,
) -> Vec<machine::MachineError> {
    let mut span = trace.span("verify", format!("module:{}", module.name), track);
    let errs = verify_module_image(module, config);
    span.arg("errors", errs.len() as f64);
    errs
}
