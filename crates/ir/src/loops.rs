//! Dominator and natural-loop analysis.
//!
//! The software pipeliner in `warp-codegen` targets *innermost
//! single-block loops* (a block that branches to itself) — the shape
//! `for` loops lower to. This module finds loops generally (dominators
//! → back edges → natural loops) so the nesting depth is available to
//! the compile-cost heuristic the paper's load balancer uses (§4.3),
//! and identifies the pipelinable ones.

use crate::ir::{BlockId, FuncIr};
use serde::{Deserialize, Serialize};

/// Dominator tree (immediate dominators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry's
    /// idom is itself.
    pub idom: Vec<BlockId>,
    /// Reverse postorder of reachable blocks.
    pub rpo: Vec<BlockId>,
}

impl Dominators {
    /// `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[cur.index()];
            if next == cur {
                return cur == a;
            }
            cur = next;
        }
    }
}

/// Computes dominators with the Cooper–Harvey–Kennedy iterative
/// algorithm.
pub fn dominators(f: &FuncIr) -> Dominators {
    let n = f.blocks.len();
    // Reverse postorder.
    let mut visited = vec![false; n];
    let mut post: Vec<usize> = Vec::with_capacity(n);
    // Iterative DFS.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.blocks[b].term.successors();
        if *i < succs.len() {
            let s = succs[*i].index();
            *i += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    let rpo: Vec<BlockId> = post.iter().rev().map(|&b| BlockId(b as u32)).collect();
    let mut rpo_index = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.index()] = i;
    }

    let preds = f.predecessors();
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[0] = Some(BlockId(0));
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &rpo_index),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    let idom: Vec<BlockId> = idom
        .into_iter()
        .enumerate()
        .map(|(i, d)| d.unwrap_or(BlockId(i as u32)))
        .collect();
    Dominators { idom, rpo }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed");
        }
    }
    a
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// Blocks belonging to the loop, header included.
    pub blocks: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
}

impl Loop {
    /// `true` if the loop is a single block branching to itself — the
    /// shape the software pipeliner handles.
    pub fn is_single_block(&self) -> bool {
        self.blocks.len() == 1
    }
}

/// The loop forest of a function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// All natural loops, innermost-last order not guaranteed.
    pub loops: Vec<Loop>,
    /// Loop nesting depth of every block (0 = not in any loop).
    pub block_depth: Vec<usize>,
}

impl LoopInfo {
    /// The maximum nesting depth in the function.
    pub fn max_depth(&self) -> usize {
        self.block_depth.iter().copied().max().unwrap_or(0)
    }

    /// Innermost single-block loops (candidates for software
    /// pipelining), identified by their header block.
    pub fn pipelinable_blocks(&self) -> Vec<BlockId> {
        self.loops
            .iter()
            .filter(|l| l.is_single_block())
            .map(|l| l.header)
            .collect()
    }
}

/// Finds natural loops from back edges (`tail → header` where header
/// dominates tail).
pub fn find_loops(f: &FuncIr, dom: &Dominators) -> LoopInfo {
    let n = f.blocks.len();
    let mut loops: Vec<Loop> = Vec::new();
    let preds = f.predecessors();
    for (b, blk) in f.blocks.iter().enumerate() {
        for s in blk.term.successors() {
            if dom.dominates(s, BlockId(b as u32)) {
                // Back edge b → s: collect the natural loop.
                let header = s;
                let mut body = vec![header];
                let mut stack = vec![BlockId(b as u32)];
                while let Some(x) = stack.pop() {
                    if body.contains(&x) {
                        continue;
                    }
                    body.push(x);
                    for &p in &preds[x.index()] {
                        stack.push(p);
                    }
                }
                body.sort_by_key(|b| b.0);
                // Merge with an existing loop that has the same header.
                if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                    for x in body {
                        if !existing.blocks.contains(&x) {
                            existing.blocks.push(x);
                        }
                    }
                    existing.blocks.sort_by_key(|b| b.0);
                } else {
                    loops.push(Loop {
                        header,
                        blocks: body,
                        depth: 0,
                    });
                }
            }
        }
    }
    // Depth: number of loops containing each block.
    let mut block_depth = vec![0usize; n];
    for (i, d) in block_depth.iter_mut().enumerate() {
        *d = loops
            .iter()
            .filter(|l| l.blocks.contains(&BlockId(i as u32)))
            .count();
    }
    for l in &mut loops {
        l.depth = block_depth[l.header.index()];
    }
    LoopInfo { loops, block_depth }
}

/// Convenience: dominators + loops in one call.
pub fn analyze_loops(f: &FuncIr) -> LoopInfo {
    let dom = dominators(f);
    find_loops(f, &dom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use warp_lang::phase1;

    fn lowered(body: &str) -> FuncIr {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[8]; i: int; j: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        lower_module(&checked).expect("lower").remove(0).1
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = lowered("t := x; return t;");
        let li = analyze_loops(&f);
        assert!(li.loops.is_empty());
        assert_eq!(li.max_depth(), 0);
    }

    #[test]
    fn single_for_loop_found() {
        let f = lowered("t := 0.0; for i := 0 to 7 do t := t + v[i]; end; return t;");
        let li = analyze_loops(&f);
        assert_eq!(li.loops.len(), 1);
        assert!(
            li.loops[0].is_single_block(),
            "{:?}\n{}",
            li.loops,
            f.dump()
        );
        assert_eq!(li.max_depth(), 1);
        assert_eq!(li.pipelinable_blocks().len(), 1);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let f = lowered(
            "t := 0.0; for i := 0 to 3 do for j := 0 to 3 do t := t + v[j]; end; end; return t;",
        );
        let li = analyze_loops(&f);
        assert_eq!(li.loops.len(), 2, "{}", f.dump());
        assert_eq!(li.max_depth(), 2);
        // The inner loop is single-block; the outer is not.
        let single: Vec<bool> = li.loops.iter().map(Loop::is_single_block).collect();
        assert!(single.contains(&true));
        assert!(single.contains(&false));
    }

    #[test]
    fn while_loop_is_multi_block() {
        let f = lowered("while t < 10.0 do t := t + 1.0; end; return t;");
        let li = analyze_loops(&f);
        assert_eq!(li.loops.len(), 1);
        // Header + body (while lowering keeps the test in the header).
        assert!(li.loops[0].blocks.len() >= 2, "{}", f.dump());
    }

    #[test]
    fn dominators_of_diamond() {
        let f = lowered("if x > 0.0 then t := 1.0; else t := 2.0; end; return t;");
        let dom = dominators(&f);
        // Entry dominates everything.
        for b in 0..f.blocks.len() {
            assert!(dom.dominates(BlockId(0), BlockId(b as u32)));
        }
        // The two arms do not dominate the join.
        let join = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, crate::ir::Term::Return(_)))
            .unwrap();
        let preds = f.predecessors();
        // Return block's predecessor(s) that are arms should not dominate it if there are 2+.
        if preds[join].len() >= 2 {
            for p in &preds[join] {
                assert!(!dom.dominates(*p, BlockId(join as u32)) || preds[join].len() == 1);
            }
        }
    }

    #[test]
    fn triple_nesting_depth() {
        let f = lowered(
            "for i := 0 to 2 do for j := 0 to 2 do t := t + 1.0; end; \
             for j := 0 to 2 do t := t * 1.5; end; end; return t;",
        );
        let li = analyze_loops(&f);
        assert_eq!(li.loops.len(), 3, "{}", f.dump());
        assert_eq!(li.max_depth(), 2);
    }
}
