//! The IR verifier.
//!
//! Statically checks a [`FuncIr`] for structural well-formedness so a
//! miscompile is caught at the pass boundary that introduced it rather
//! than by whatever test input happens to execute the broken code:
//!
//! * **CFG well-formedness** — every terminator target names an
//!   existing block, the function has an entry block;
//! * **operand sanity** — every register and array reference is in
//!   bounds of the function's declaration tables;
//! * **type consistency** — operand and destination types agree with
//!   each instruction's declared type (conversions excepted per their
//!   semantics);
//! * **def-before-use** — via the forward definitely-defined-registers
//!   dataflow ([`crate::dataflow::defined_regs`]): no path from the
//!   entry can reach a use of an undefined register.
//!
//! The checks are deliberately conservative: they accept exactly the
//! shapes `lower`, `opt`, `ifconv` and `unroll` produce, so any
//! rejection after one of those passes is a bug in that pass.

use crate::dataflow::defined_regs;
use crate::ir::{ArrayId, FuncIr, Inst, IrBinOp, IrType, IrUnOp, Term, Val, VirtReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A verification failure, locating the offending function (and the
/// pass that introduced the breakage, when run at a pass boundary).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyError {
    /// The function that failed verification.
    pub function: String,
    /// The pass after which verification failed, if known.
    pub pass: Option<String>,
    /// What went wrong (includes the block index).
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.pass {
            Some(p) => {
                write!(
                    f,
                    "ir verification failed for `{}` after pass `{p}`: {}",
                    self.function, self.message
                )
            }
            None => write!(
                f,
                "ir verification failed for `{}`: {}",
                self.function, self.message
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(f: &FuncIr, message: String) -> VerifyError {
    VerifyError {
        function: f.name.clone(),
        pass: None,
        message,
    }
}

/// Verifies `f`, returning the first violation found.
///
/// # Errors
///
/// Returns a [`VerifyError`] describing the first structural, type or
/// def-before-use violation.
pub fn verify_func(f: &FuncIr) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(f, "function has no blocks".into()));
    }
    check_bounds(f)?;
    check_cfg(f)?;
    check_types(f)?;
    check_def_before_use(f)?;
    Ok(())
}

/// Like [`verify_func`], tagging any error with the pass name that just
/// ran (for pass-boundary verification).
///
/// # Errors
///
/// Returns a [`VerifyError`] with `pass` set to `pass_name`.
pub fn verify_after(f: &FuncIr, pass_name: &str) -> Result<(), VerifyError> {
    verify_func(f).map_err(|mut e| {
        e.pass = Some(pass_name.to_string());
        e
    })
}

/// Every register / array mentioned anywhere must be in bounds; checked
/// first because the type accessors panic on out-of-range registers.
fn check_bounds(f: &FuncIr) -> Result<(), VerifyError> {
    let nregs = f.vreg_types.len();
    let narr = f.arrays.len();
    let reg_ok = |r: VirtReg| (r.0 as usize) < nregs;
    let val_ok = |v: Val| v.as_reg().is_none_or(reg_ok);
    for (r, _) in &f.params {
        if !reg_ok(*r) {
            return Err(err(
                f,
                format!("parameter register {r} out of range ({nregs} allocated)"),
            ));
        }
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                if !reg_ok(d) {
                    return Err(err(
                        f,
                        format!("b{bi}: destination register {d} out of range ({nregs} allocated)"),
                    ));
                }
            }
            for u in inst.uses() {
                if !val_ok(u) {
                    return Err(err(
                        f,
                        format!("b{bi}: operand register {u} out of range ({nregs} allocated)"),
                    ));
                }
            }
            let arr = match inst {
                Inst::Load { arr, .. } | Inst::Store { arr, .. } => Some(*arr),
                _ => None,
            };
            if let Some(ArrayId(a)) = arr {
                if a as usize >= narr {
                    return Err(err(
                        f,
                        format!("b{bi}: array a{a} out of range ({narr} declared)"),
                    ));
                }
            }
        }
        let term_val = match &block.term {
            Term::Branch { cond, .. } => Some(*cond),
            Term::Return(v) => *v,
            Term::Jump(_) => None,
        };
        if let Some(v) = term_val {
            if !val_ok(v) {
                return Err(err(
                    f,
                    format!("b{bi}: terminator register {v} out of range ({nregs} allocated)"),
                ));
            }
        }
    }
    Ok(())
}

/// Every terminator target must name an existing block.
fn check_cfg(f: &FuncIr) -> Result<(), VerifyError> {
    let n = f.blocks.len();
    for (bi, block) in f.blocks.iter().enumerate() {
        for s in block.term.successors() {
            if s.index() >= n {
                return Err(err(
                    f,
                    format!("b{bi}: terminator targets dangling block {s} ({n} blocks)"),
                ));
            }
        }
    }
    Ok(())
}

/// The expected destination type of an instruction, given its declared
/// operand type.
fn un_result_type(op: IrUnOp, ty: IrType) -> IrType {
    match op {
        IrUnOp::ItoF => IrType::Float,
        IrUnOp::FtoI | IrUnOp::Floor | IrUnOp::Not => IrType::Int,
        _ => ty,
    }
}

fn check_types(f: &FuncIr) -> Result<(), VerifyError> {
    for (bi, block) in f.blocks.iter().enumerate() {
        for inst in &block.insts {
            check_inst_types(f, bi, inst)?;
        }
        match &block.term {
            Term::Branch { cond, .. } if f.val_type(*cond) != IrType::Int => {
                return Err(err(
                    f,
                    format!("b{bi}: branch condition {cond} is not an integer"),
                ));
            }
            Term::Return(Some(v)) => {
                match f.ret {
                    None => {
                        return Err(err(
                            f,
                            format!("b{bi}: returns a value from a function with no return type"),
                        ));
                    }
                    Some(rt) => {
                        if f.val_type(*v) != rt {
                            return Err(err(f, format!("b{bi}: return value {v} has type {} but the function returns {rt}", f.val_type(*v))));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_inst_types(f: &FuncIr, bi: usize, inst: &Inst) -> Result<(), VerifyError> {
    let want = |v: Val, ty: IrType, what: &str| -> Result<(), VerifyError> {
        if f.val_type(v) != ty {
            return Err(err(
                f,
                format!(
                    "b{bi}: {what} {v} has type {} in `{inst}` (expected {ty})",
                    f.val_type(v)
                ),
            ));
        }
        Ok(())
    };
    let want_dst = |d: VirtReg, ty: IrType| -> Result<(), VerifyError> {
        if f.vreg_type(d) != ty {
            return Err(err(
                f,
                format!(
                    "b{bi}: destination {d} has type {} in `{inst}` (expected {ty})",
                    f.vreg_type(d)
                ),
            ));
        }
        Ok(())
    };
    match inst {
        Inst::Bin { op, ty, dst, a, b } => {
            want(*a, *ty, "operand")?;
            want(*b, *ty, "operand")?;
            let res = if *op == IrBinOp::Div {
                IrType::Float
            } else {
                *ty
            };
            want_dst(*dst, res)?;
        }
        Inst::Un { op, ty, dst, a } => {
            want(*a, *ty, "operand")?;
            want_dst(*dst, un_result_type(*op, *ty))?;
        }
        Inst::Cmp { ty, dst, a, b, .. } => {
            want(*a, *ty, "operand")?;
            want(*b, *ty, "operand")?;
            want_dst(*dst, IrType::Int)?;
        }
        Inst::Copy { dst, src } => {
            want(*src, f.vreg_type(*dst), "source")?;
        }
        Inst::Load {
            dst,
            ty,
            arr,
            index,
        } => {
            want(*index, IrType::Int, "index")?;
            want_dst(*dst, *ty)?;
            let at = f.arrays[arr.0 as usize].ty;
            if at != *ty {
                return Err(err(
                    f,
                    format!(
                        "b{bi}: load type {ty} does not match array element type {at} in `{inst}`"
                    ),
                ));
            }
        }
        Inst::Store {
            arr,
            index,
            value,
            ty,
        } => {
            want(*index, IrType::Int, "index")?;
            want(*value, *ty, "stored value")?;
            let at = f.arrays[arr.0 as usize].ty;
            if at != *ty {
                return Err(err(
                    f,
                    format!(
                        "b{bi}: store type {ty} does not match array element type {at} in `{inst}`"
                    ),
                ));
            }
        }
        Inst::Call { .. } | Inst::Send { .. } => {}
        Inst::Recv { dst, ty, .. } => {
            want_dst(*dst, *ty)?;
        }
        Inst::Select {
            dst,
            cond,
            then_v,
            ty,
        } => {
            want(*cond, IrType::Int, "condition")?;
            want(*then_v, *ty, "operand")?;
            want_dst(*dst, *ty)?;
        }
    }
    Ok(())
}

/// No path from the entry may reach a use of a register that is not
/// definitely defined on that path.
fn check_def_before_use(f: &FuncIr) -> Result<(), VerifyError> {
    let dr = defined_regs(f);
    for (bi, block) in f.blocks.iter().enumerate() {
        let mut defined = dr.defined_in[bi].clone();
        for inst in &block.insts {
            for u in inst.used_regs() {
                // A select reads its own destination speculatively (the
                // keep-old-value leg); lowering zero-initializes locals
                // so this is never a genuine uninitialized read.
                if matches!(inst, Inst::Select { dst, .. } if *dst == u) {
                    continue;
                }
                if !defined.contains(u) {
                    return Err(err(
                        f,
                        format!("b{bi}: use of {u} before definition in `{inst}`"),
                    ));
                }
            }
            if let Some(d) = inst.def() {
                defined.insert(d);
            }
        }
        let term_use = match &block.term {
            Term::Branch { cond, .. } => cond.as_reg(),
            Term::Return(Some(v)) => v.as_reg(),
            _ => None,
        };
        if let Some(r) = term_use {
            if !defined.contains(r) {
                return Err(err(
                    f,
                    format!("b{bi}: use of {r} before definition in `{}`", block.term),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BlockId;
    use crate::lower::lower_module;
    use warp_lang::phase1;

    fn lowered(body: &str) -> FuncIr {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[8]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        lower_module(&checked).expect("lower").remove(0).1
    }

    #[test]
    fn valid_lowered_ir_verifies() {
        let f = lowered("t := 0.0; for i := 0 to 7 do t := t + v[i] * x; end; return t;");
        verify_func(&f).expect("valid IR must verify");
    }

    #[test]
    fn optimized_ir_verifies() {
        let mut f =
            lowered("t := x * 1.0 + 0.0; u := t; if n > 2 then u := t * 2.0; end; return u;");
        crate::opt::optimize(&mut f, 10);
        verify_func(&f).expect("optimized IR must verify");
    }

    #[test]
    fn dangling_block_rejected() {
        let mut f = lowered("return x;");
        f.blocks[0].term = Term::Jump(BlockId(99));
        let e = verify_func(&f).unwrap_err();
        assert!(e.message.contains("dangling block"), "{e}");
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut f = lowered("return x;");
        f.blocks[0].term = Term::Return(Some(Val::Reg(VirtReg(9999))));
        let e = verify_func(&f).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut f = lowered("t := x; return t;");
        // Return an int constant from a float function.
        f.blocks[0].term = Term::Return(Some(Val::ConstI(3)));
        let e = verify_func(&f).unwrap_err();
        assert!(e.message.contains("type"), "{e}");
    }

    #[test]
    fn use_before_def_rejected() {
        let mut f = lowered("t := x; return t;");
        let fresh = f.new_vreg(IrType::Float);
        f.blocks[0].term = Term::Return(Some(Val::Reg(fresh)));
        let e = verify_func(&f).unwrap_err();
        assert!(e.message.contains("before definition"), "{e}");
    }

    #[test]
    fn pass_name_is_reported() {
        let mut f = lowered("return x;");
        f.blocks[0].term = Term::Jump(BlockId(7));
        let e = verify_after(&f, "fold_constants").unwrap_err();
        assert_eq!(e.pass.as_deref(), Some("fold_constants"));
        assert!(e.to_string().contains("after pass `fold_constants`"), "{e}");
    }
}
