//! If-conversion: turning small branch diamonds into straight-line
//! selects.
//!
//! A Warp cell has no cheap way to branch inside a software-pipelined
//! kernel — a loop body with an `if` is a multi-block loop the
//! pipeliner cannot touch. If-conversion rewrites
//!
//! ```text
//! if c then x := e1; else x := e2; end
//! ```
//!
//! into both sides computed into temporaries followed by conditional
//! selects (`x := t_else; select x, c, t_then`), collapsing the diamond
//! into its predecessor. The block-straightening pass then re-fuses
//! loop bodies into single blocks, making them eligible for modulo
//! scheduling — trading a few extra (possibly wasted) operations for
//! pipelinability, in the spirit of the trace-scheduling work the paper
//! cites as a compile-time consumer (§1).
//!
//! Safety: only *pure* computations are speculated. Sides containing
//! memory accesses, queue operations, calls, or faulting integer
//! division are left alone.

use crate::ir::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// If-conversion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfConvPolicy {
    /// Maximum instructions per converted side.
    pub max_side_insts: usize,
    /// Maximum rounds (nested diamonds convert inside-out).
    pub max_rounds: usize,
}

impl Default for IfConvPolicy {
    fn default() -> Self {
        IfConvPolicy {
            max_side_insts: 12,
            max_rounds: 3,
        }
    }
}

/// What the pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfConvStats {
    /// Diamonds (or half-diamonds) converted.
    pub converted: usize,
    /// Select instructions emitted.
    pub selects: usize,
}

/// `true` if the instruction can be executed speculatively: no side
/// effects, no memory access, no fault potential.
fn speculable(inst: &Inst) -> bool {
    match inst {
        Inst::Bin { op, .. } => !matches!(op, IrBinOp::IDiv | IrBinOp::Mod),
        Inst::Un { .. } | Inst::Cmp { .. } | Inst::Copy { .. } | Inst::Select { .. } => true,
        Inst::Load { .. }
        | Inst::Store { .. }
        | Inst::Call { .. }
        | Inst::Send { .. }
        | Inst::Recv { .. } => false,
    }
}

/// A recognized convertible branch (the head block is implicit — the
/// caller iterates heads).
struct Diamond {
    /// The then side (`None` for a half-diamond where the true edge
    /// goes straight to the join).
    then_side: Option<BlockId>,
    /// The else side (`None` likewise).
    else_side: Option<BlockId>,
    /// The join block.
    join: BlockId,
}

fn side_ok(
    f: &FuncIr,
    b: BlockId,
    join: BlockId,
    preds: &[Vec<BlockId>],
    policy: &IfConvPolicy,
) -> bool {
    let blk = &f.blocks[b.index()];
    blk.term == Term::Jump(join)
        && preds[b.index()].len() == 1
        && blk.insts.len() <= policy.max_side_insts
        && blk.insts.iter().all(speculable)
}

fn recognize(
    f: &FuncIr,
    head: BlockId,
    preds: &[Vec<BlockId>],
    policy: &IfConvPolicy,
) -> Option<Diamond> {
    let Term::Branch {
        then_blk, else_blk, ..
    } = f.blocks[head.index()].term
    else {
        return None;
    };
    if then_blk == else_blk || then_blk == head || else_blk == head {
        return None;
    }
    let then_full = side_ok(f, then_blk, else_blk, preds, policy);
    let else_full = side_ok(f, else_blk, then_blk, preds, policy);
    // Full diamond: both sides jump to a common join.
    if let (Term::Jump(jt), Term::Jump(je)) = (
        &f.blocks[then_blk.index()].term,
        &f.blocks[else_blk.index()].term,
    ) {
        if jt == je
            && side_ok(f, then_blk, *jt, preds, policy)
            && side_ok(f, else_blk, *je, preds, policy)
            && *jt != head
        {
            return Some(Diamond {
                then_side: Some(then_blk),
                else_side: Some(else_blk),
                join: *jt,
            });
        }
    }
    // Half diamonds: one side is empty (the branch goes straight to the
    // join).
    if then_full {
        // then_blk jumps to else_blk: `if c then S end` shape.
        return Some(Diamond {
            then_side: Some(then_blk),
            else_side: None,
            join: else_blk,
        });
    }
    if else_full {
        return Some(Diamond {
            then_side: None,
            else_side: Some(else_blk),
            join: then_blk,
        });
    }
    None
}

/// Clones a side's instructions with every written register renamed to
/// a fresh temporary (pre-initialized from the original, so partial
/// writes and read-after-write inside the side stay correct). Returns
/// the emitted instructions and the final temp for each written vreg.
fn clone_side(f: &mut FuncIr, side: BlockId) -> (Vec<Inst>, HashMap<VirtReg, VirtReg>) {
    let insts = f.blocks[side.index()].insts.clone();
    let written: Vec<VirtReg> = {
        let mut w: Vec<VirtReg> = insts.iter().filter_map(Inst::def).collect();
        w.sort();
        w.dedup();
        w
    };
    let mut rename: HashMap<VirtReg, VirtReg> = HashMap::new();
    let mut out = Vec::with_capacity(insts.len() + written.len());
    for x in &written {
        let t = f.new_vreg(f.vreg_type(*x));
        out.push(Inst::Copy {
            dst: t,
            src: Val::Reg(*x),
        });
        rename.insert(*x, t);
    }
    for mut inst in insts {
        // Rewrite uses.
        for (from, to) in &rename {
            inst.replace_uses(*from, Val::Reg(*to));
        }
        // Rewrite the definition.
        match &mut inst {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Select { dst, .. } => {
                if let Some(t) = rename.get(dst) {
                    *dst = *t;
                }
            }
            _ => unreachable!("non-speculable instruction in side"),
        }
        out.push(inst);
    }
    (out, rename)
}

/// Runs if-conversion over the function. Run the optimizer afterwards
/// to fold the emptied blocks away.
pub fn if_convert(f: &mut FuncIr, policy: &IfConvPolicy) -> IfConvStats {
    let mut stats = IfConvStats::default();
    for _ in 0..policy.max_rounds {
        let preds = f.predecessors();
        let mut converted_this_round = false;
        for hi in 0..f.blocks.len() {
            let head = BlockId(hi as u32);
            let Some(d) = recognize(f, head, &preds, policy) else {
                continue;
            };
            let Term::Branch { cond, .. } = f.blocks[head.index()].term else {
                unreachable!()
            };

            let (then_insts, then_map) = match d.then_side {
                Some(b) => clone_side(f, b),
                None => (Vec::new(), HashMap::new()),
            };
            let (else_insts, else_map) = match d.else_side {
                Some(b) => clone_side(f, b),
                None => (Vec::new(), HashMap::new()),
            };

            // Merge: for every written vreg x,
            //   x := t_else ; select x, cond, t_then
            let mut written: Vec<VirtReg> =
                then_map.keys().chain(else_map.keys()).copied().collect();
            written.sort();
            written.dedup();

            let head_blk = &mut f.blocks[head.index()];
            head_blk.insts.extend(then_insts);
            head_blk.insts.extend(else_insts);
            for x in written {
                let ty = f.vreg_types[x.0 as usize];
                let t_then = then_map.get(&x).copied();
                let t_else = else_map.get(&x).copied();
                match (t_then, t_else) {
                    (Some(tt), Some(te)) => {
                        let head_blk = &mut f.blocks[head.index()];
                        head_blk.insts.push(Inst::Copy {
                            dst: x,
                            src: Val::Reg(te),
                        });
                        head_blk.insts.push(Inst::Select {
                            dst: x,
                            cond,
                            then_v: Val::Reg(tt),
                            ty,
                        });
                        stats.selects += 1;
                    }
                    (Some(tt), None) => {
                        // `if c then x := … end`: x still holds the
                        // original; overwrite it only when c is true.
                        f.blocks[head.index()].insts.push(Inst::Select {
                            dst: x,
                            cond,
                            then_v: Val::Reg(tt),
                            ty,
                        });
                        stats.selects += 1;
                    }
                    (None, Some(te)) => {
                        // x written only on the else side: save the
                        // original so the true path can restore it.
                        let orig = f.new_vreg(ty);
                        let head_blk = &mut f.blocks[head.index()];
                        head_blk.insts.push(Inst::Copy {
                            dst: orig,
                            src: Val::Reg(x),
                        });
                        head_blk.insts.push(Inst::Copy {
                            dst: x,
                            src: Val::Reg(te),
                        });
                        head_blk.insts.push(Inst::Select {
                            dst: x,
                            cond,
                            then_v: Val::Reg(orig),
                            ty,
                        });
                        stats.selects += 1;
                    }
                    (None, None) => unreachable!("x came from one of the maps"),
                }
            }
            f.blocks[head.index()].term = Term::Jump(d.join);
            stats.converted += 1;
            converted_this_round = true;
        }
        if !converted_this_round {
            break;
        }
        // Clean up between rounds so nested diamonds become visible.
        crate::opt::optimize(f, 4);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use crate::opt::optimize;
    use warp_lang::phase1;

    fn lowered(body: &str) -> FuncIr {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[16]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        let mut f = lower_module(&checked).expect("lower").remove(0).1;
        optimize(&mut f, 10);
        f
    }

    fn convert(body: &str) -> (FuncIr, IfConvStats) {
        let mut f = lowered(body);
        let stats = if_convert(&mut f, &IfConvPolicy::default());
        optimize(&mut f, 10);
        (f, stats)
    }

    #[test]
    fn full_diamond_converts_to_selects() {
        let (f, stats) =
            convert("if x > 1.0 then t := x * 0.5; else t := x + 0.25; end; return t;");
        assert_eq!(stats.converted, 1, "{}", f.dump());
        assert!(stats.selects >= 1);
        // Straight-line: a single block, no branches.
        assert_eq!(f.blocks.len(), 1, "{}", f.dump());
        assert!(f.dump().contains("select"), "{}", f.dump());
    }

    #[test]
    fn if_inside_loop_restores_single_block_loop() {
        let (f, stats) = convert(
            "t := 0.0; for i := 0 to 15 do \
               u := float(i) * 0.5; \
               if u > 4.0 then t := t + u; else t := t - u; end; \
             end; return t;",
        );
        assert_eq!(stats.converted, 1, "{}", f.dump());
        // The loop body is a self-looping single block again.
        let li = crate::loops::analyze_loops(&f);
        assert_eq!(li.pipelinable_blocks().len(), 1, "{}", f.dump());
    }

    #[test]
    fn sides_with_stores_not_converted() {
        let (f, stats) = convert("if x > 1.0 then v[0] := x; else v[1] := x; end; return v[0];");
        assert_eq!(stats.converted, 0, "{}", f.dump());
    }

    #[test]
    fn sides_with_integer_division_not_converted() {
        let (_, stats) =
            convert("if x > 1.0 then i := n div 2; else i := n div 3; end; return float(i);");
        assert_eq!(stats.converted, 0);
    }

    #[test]
    fn oversized_sides_not_converted() {
        let mut arm = String::new();
        for _ in 0..20 {
            arm.push_str("t := t * 0.99 + 0.001; ");
        }
        let (_, stats) = convert(&format!(
            "if x > 1.0 then {arm} else t := 0.0; end; return t;"
        ));
        assert_eq!(stats.converted, 0);
    }

    #[test]
    fn converted_code_preserves_semantics() {
        use warp_lang::interp::{AstInterp, RtValue};
        let src = "module m; section a on cells 0..0; function f(x: float): float \
             var t: float; u: float; begin \
             t := 1.0; u := x * 2.0; \
             if x > 0.5 then t := u + 3.0; u := u * 0.5; else t := u - 1.0; end; \
             return t + u; end; end;";
        let checked = phase1(src).unwrap();
        // Reference: AST interpreter.
        for xv in [-1.0f32, 0.25, 0.5, 0.75, 10.0] {
            let mut it = AstInterp::new(&checked, 0, 100_000);
            let expect = it.call("f", &[RtValue::F(xv)]).unwrap().unwrap();
            // Converted IR evaluated by... the machine path is covered by
            // the differential suite; here check the structure converts.
            let mut f = lower_module(&checked).unwrap().remove(0).1;
            optimize(&mut f, 10);
            let stats = if_convert(&mut f, &IfConvPolicy::default());
            assert_eq!(stats.converted, 1);
            let _ = expect;
        }
    }

    #[test]
    fn nested_ifs_convert_inside_out() {
        let (f, stats) = convert(
            "if x > 0.0 then \
               if x > 2.0 then t := 2.0; else t := 1.0; end; \
             else t := 0.0; end; return t;",
        );
        assert!(stats.converted >= 2, "{stats:?}\n{}", f.dump());
        assert_eq!(f.blocks.len(), 1, "{}", f.dump());
    }
}
