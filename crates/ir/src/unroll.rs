//! Loop unrolling.
//!
//! The paper's opening motivation: "various important optimizations
//! (like loop unrolling, procedure inlining, or trace scheduling)
//! increase the size of the program to be compiled and thereby make a
//! bad situation even worse" — and its closing argument: with parallel
//! compilation "the compiler can employ more time consuming
//! optimizations and thereby improve the quality of the code" (§6).
//!
//! This pass unrolls *single-block counted loops with constant bounds*
//! by a factor that divides the trip count exactly (no cleanup loop is
//! needed). Each copy keeps its own induction update, so addresses stay
//! correct; the intermediate exit tests are dropped. The effect on the
//! modulo scheduler is exactly the paper's trade: more ops per
//! iteration → more scheduling work → better slot utilization and
//! fewer loop-control cycles per element.

use crate::ir::*;
use crate::loops::analyze_loops;
use serde::{Deserialize, Serialize};
use warp_target::isa::CmpKind;

/// Unrolling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnrollPolicy {
    /// Desired unroll factor (tried first; smaller divisors of the trip
    /// count are tried next, down to 2).
    pub factor: u32,
    /// Do not unroll bodies beyond this instruction count (the unrolled
    /// body stays below `factor × max_body_insts`).
    pub max_body_insts: usize,
}

impl Default for UnrollPolicy {
    fn default() -> Self {
        UnrollPolicy {
            factor: 4,
            max_body_insts: 60,
        }
    }
}

/// What the pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnrollStats {
    /// Loops unrolled.
    pub unrolled: usize,
    /// Instructions added across all unrolled loops.
    pub insts_added: usize,
}

/// A recognized counted loop, ready to unroll.
struct Counted {
    block: BlockId,
    /// The induction register.
    ivar: VirtReg,
    /// +1 or −1.
    step: i64,
    /// Inclusive limit.
    limit: i32,
    /// Initial value (from the preheader).
    init: i32,
    /// Index of the exit compare inside the block.
    cmp_idx: usize,
}

/// Finds the constant initial value of `ivar`: the last `Copy ivar :=
/// const` in a non-self predecessor of the loop block.
fn const_init(f: &FuncIr, block: BlockId, ivar: VirtReg) -> Option<i32> {
    let preds = f.predecessors();
    let mut init = None;
    for p in &preds[block.index()] {
        if *p == block {
            continue;
        }
        for inst in f.blocks[p.index()].insts.iter().rev() {
            if inst.def() == Some(ivar) {
                match inst {
                    Inst::Copy {
                        src: Val::ConstI(c),
                        ..
                    } => {
                        if init.is_some_and(|v| v != *c) {
                            return None; // conflicting inits
                        }
                        init = Some(*c);
                    }
                    _ => return None,
                }
                break;
            }
        }
    }
    init
}

fn recognize(f: &FuncIr, block: BlockId) -> Option<Counted> {
    let b = &f.blocks[block.index()];
    let Term::Branch { cond, then_blk, .. } = &b.term else {
        return None;
    };
    if *then_blk != block {
        return None;
    }
    let (ivar, step) = crate::deps::find_induction(b)?;
    // Exit compare: last def of the condition register.
    let cond_reg = cond.as_reg()?;
    let cmp_idx = b.insts.iter().rposition(|i| i.def() == Some(cond_reg))?;
    let Inst::Cmp {
        kind,
        a,
        b: limit_v,
        ..
    } = &b.insts[cmp_idx]
    else {
        return None;
    };
    let want = if step > 0 { CmpKind::Le } else { CmpKind::Ge };
    if *kind != want {
        return None;
    }
    // The compare may read the induction register or the increment temp.
    let cmp_src = a.as_reg()?;
    let reads_induction = cmp_src == ivar
        || matches!(
            &b.insts[..cmp_idx].iter().rev().find(|i| i.def() == Some(cmp_src)),
            Some(Inst::Bin { op: IrBinOp::Add | IrBinOp::Sub, a: Val::Reg(r), b: Val::ConstI(_), .. })
                if *r == ivar
        );
    if !reads_induction {
        return None;
    }
    let Val::ConstI(limit) = limit_v else {
        return None;
    };
    if step.abs() != 1 {
        return None;
    }
    let init = const_init(f, block, ivar)?;
    Some(Counted {
        block,
        ivar,
        step,
        limit: *limit,
        init,
        cmp_idx,
    })
}

/// Unrolls eligible loops of `f` in place.
pub fn unroll_loops(f: &mut FuncIr, policy: &UnrollPolicy) -> UnrollStats {
    let mut stats = UnrollStats::default();
    let loops = analyze_loops(f);
    for header in loops.pipelinable_blocks() {
        let Some(counted) = recognize(f, header) else {
            continue;
        };
        let b = &f.blocks[header.index()];
        if b.insts.len() > policy.max_body_insts {
            continue;
        }
        // Trip count.
        let trip = if counted.step > 0 {
            (counted.limit as i64 - counted.init as i64) + 1
        } else {
            (counted.init as i64 - counted.limit as i64) + 1
        };
        if trip <= 1 {
            continue;
        }
        // Largest factor ≤ policy.factor that divides the trip count.
        let factor = (2..=policy.factor.min(trip as u32))
            .rev()
            .find(|&u| trip % u as i64 == 0);
        let Some(factor) = factor else { continue };

        let block = &mut f.blocks[counted.block.index()];
        let original = block.insts.clone();
        let mut body: Vec<Inst> = Vec::with_capacity(original.len() * factor as usize);
        for copy in 0..factor {
            for (i, inst) in original.iter().enumerate() {
                if i == counted.cmp_idx && copy + 1 < factor {
                    // Intermediate exit tests are dropped (the factor
                    // divides the trip count exactly).
                    continue;
                }
                body.push(inst.clone());
            }
        }
        stats.insts_added += body.len() - original.len();
        block.insts = body;
        stats.unrolled += 1;
        let _ = counted.ivar;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use crate::opt::optimize;
    use warp_lang::phase1;

    fn lowered(body: &str) -> FuncIr {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[64]; w: float[64]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        let mut f = lower_module(&checked).expect("lower").remove(0).1;
        optimize(&mut f, 10);
        f
    }

    #[test]
    fn unrolls_constant_loop_exactly() {
        let mut f = lowered("t := 0.0; for i := 0 to 15 do t := t + v[i]; end; return t;");
        let li = analyze_loops(&f);
        let hdr = li.pipelinable_blocks()[0];
        let before = f.blocks[hdr.index()].insts.len();
        let stats = unroll_loops(
            &mut f,
            &UnrollPolicy {
                factor: 4,
                max_body_insts: 60,
            },
        );
        assert_eq!(stats.unrolled, 1, "{stats:?}");
        let after = f.blocks[hdr.index()].insts.len();
        // 4 copies minus 3 dropped compares.
        assert_eq!(after, before * 4 - 3, "{before} → {after}");
    }

    #[test]
    fn indivisible_factor_falls_back_to_divisor() {
        // Trip count 15 (0..=14): factor 4 doesn't divide, 3 does.
        let mut f = lowered("t := 0.0; for i := 0 to 14 do t := t + v[i]; end; return t;");
        let stats = unroll_loops(
            &mut f,
            &UnrollPolicy {
                factor: 4,
                max_body_insts: 60,
            },
        );
        assert_eq!(stats.unrolled, 1);
        let li = analyze_loops(&f);
        let hdr = li.pipelinable_blocks()[0];
        // 3 copies minus 2 compares over the original length.
        let n = f.blocks[hdr.index()].insts.len();
        assert_eq!((n + 2) % 3, 0, "{n}");
    }

    #[test]
    fn prime_trip_count_not_unrolled() {
        let mut f = lowered("t := 0.0; for i := 0 to 12 do t := t + v[i]; end; return t;");
        // Trip 13 is prime and > factor: nothing divides.
        let stats = unroll_loops(
            &mut f,
            &UnrollPolicy {
                factor: 4,
                max_body_insts: 60,
            },
        );
        assert_eq!(stats.unrolled, 0);
    }

    #[test]
    fn variable_bounds_not_unrolled() {
        let mut f = lowered("t := 0.0; for i := 0 to n do t := t + v[i]; end; return t;");
        let stats = unroll_loops(&mut f, &UnrollPolicy::default());
        assert_eq!(stats.unrolled, 0);
    }

    #[test]
    fn oversized_bodies_skipped() {
        let mut f = lowered(
            "t := 0.0; for i := 0 to 15 do t := t + v[i] * w[i] + sqrt(abs(t) + 1.0); end; return t;",
        );
        let stats = unroll_loops(
            &mut f,
            &UnrollPolicy {
                factor: 4,
                max_body_insts: 2,
            },
        );
        assert_eq!(stats.unrolled, 0);
    }

    #[test]
    fn downto_loops_unroll() {
        let mut f = lowered("t := 0.0; for i := 15 downto 0 do t := t + v[i]; end; return t;");
        let stats = unroll_loops(
            &mut f,
            &UnrollPolicy {
                factor: 2,
                max_body_insts: 60,
            },
        );
        assert_eq!(stats.unrolled, 1, "{stats:?}\n{}", f.dump());
    }
}
