//! Lowering from the checked AST to [`FuncIr`].
//!
//! Each function lowers independently — this is precisely what makes
//! the paper's function-level parallel compilation possible: after the
//! sequential phase 1, a function master needs only its own function's
//! AST, its symbol table, and the section's signature map.
//!
//! Lowering decisions:
//!
//! * scalars (params and locals) live in virtual registers;
//! * arrays live in per-function storage ([`ArrayId`]) with row-major
//!   linearized indices;
//! * `and`/`or` evaluate both operands (the Warp cell has no cheap
//!   short-circuit branch, and branchless code schedules better);
//! * `for` loops lower to a guarded do-while so the loop body is a
//!   single self-looping block — the shape the software pipeliner
//!   needs.

use crate::ir::*;
use std::collections::HashMap;
use warp_lang::ast::{self, BinOp, Expr, ExprKind, LValue, ScalarType, Stmt, UnOp};
use warp_lang::sema::{Signature, SymbolTable};
use warp_lang::Span;
use warp_target::isa::CmpKind;

/// Error produced when lowering encounters an ill-formed construct.
///
/// After a clean semantic check these indicate an internal bug, but
/// they are reported as errors rather than panics so a function master
/// fails gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Explanation.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

type Result<T> = std::result::Result<T, LowerError>;

fn err<T>(span: Span, message: impl Into<String>) -> Result<T> {
    Err(LowerError {
        message: message.into(),
        span,
    })
}

#[derive(Debug, Clone)]
enum Storage {
    Scalar(VirtReg, IrType),
    Array(ArrayId, Vec<u32>, IrType),
}

fn scalar_ir_type(t: &ast::Type) -> IrType {
    match t.scalar {
        ScalarType::Float => IrType::Float,
        ScalarType::Int | ScalarType::Bool => IrType::Int,
    }
}

/// Lowers one function to IR.
///
/// `symbols` is the function's table from the checker and `signatures`
/// the section's signature map (needed to type call results).
///
/// # Errors
///
/// Returns [`LowerError`] on constructs the checker should have
/// rejected (useful when lowering unchecked ASTs in tests).
pub fn lower_function(
    f: &ast::Function,
    symbols: &SymbolTable,
    signatures: &HashMap<String, Signature>,
) -> Result<FuncIr> {
    // The checker already resolved names; the symbol table is accepted
    // for interface completeness (a function master receives exactly
    // this triple) and used for consistency assertions in debug builds.
    debug_assert!(f.params.iter().all(|p| symbols.get(&p.name).is_some()));
    let mut lw = Lowerer {
        func: FuncIr {
            name: f.name.clone(),
            params: Vec::new(),
            ret: f.ret.as_ref().map(scalar_ir_type),
            blocks: Vec::new(),
            arrays: Vec::new(),
            vreg_types: Vec::new(),
        },
        storage: HashMap::new(),
        signatures,
        cur: None,
        cur_insts: Vec::new(),
    };

    // Parameters first: their registers are v0..vk-1 in order.
    for p in &f.params {
        if !p.ty.is_scalar() {
            return err(p.span, format!("array parameter `{}`", p.name));
        }
        let ty = scalar_ir_type(&p.ty);
        let r = lw.func.new_vreg(ty);
        lw.func.params.push((r, ty));
        lw.storage.insert(p.name.clone(), Storage::Scalar(r, ty));
    }
    let mut scalar_locals = Vec::new();
    for v in &f.vars {
        if v.ty.is_scalar() {
            let ty = scalar_ir_type(&v.ty);
            let r = lw.func.new_vreg(ty);
            lw.storage.insert(v.name.clone(), Storage::Scalar(r, ty));
            scalar_locals.push((r, ty));
        } else {
            let ty = scalar_ir_type(&v.ty);
            let id = ArrayId(lw.func.arrays.len() as u32);
            lw.func.arrays.push(ArrayInfo {
                name: v.name.clone(),
                dims: v.ty.dims.clone(),
                ty,
            });
            lw.storage
                .insert(v.name.clone(), Storage::Array(id, v.ty.dims.clone(), ty));
        }
        // Shadowing a parameter is a sema error; keep last binding.
    }

    let entry = lw.start_block();
    debug_assert_eq!(entry, BlockId(0));
    // Locals default to zero (the reference interpreter's `default_of`);
    // dead-code elimination drops the inits for locals that are written
    // before their first read.
    for (r, ty) in scalar_locals {
        let zero = match ty {
            IrType::Int => Val::ConstI(0),
            IrType::Float => Val::ConstF(0.0),
        };
        lw.emit(Inst::Copy { dst: r, src: zero });
    }
    lw.stmts(&f.body)?;
    if lw.cur.is_some() {
        // Fell off the end: implicit return (default value for typed
        // functions — the checker warned already).
        let val = lw.func.ret.map(|ty| match ty {
            IrType::Int => Val::ConstI(0),
            IrType::Float => Val::ConstF(0.0),
        });
        lw.seal(Term::Return(val));
    }
    Ok(lw.func)
}

struct Lowerer<'a> {
    func: FuncIr,
    storage: HashMap<String, Storage>,
    signatures: &'a HashMap<String, Signature>,
    /// Block currently being filled, if any.
    cur: Option<BlockId>,
    cur_insts: Vec<Inst>,
}

impl Lowerer<'_> {
    /// Opens a fresh block and makes it current.
    fn start_block(&mut self) -> BlockId {
        debug_assert!(self.cur.is_none(), "previous block not sealed");
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            insts: Vec::new(),
            term: Term::Return(None),
        });
        self.cur = Some(id);
        self.cur_insts = Vec::new();
        id
    }

    /// Seals the current block with `term`.
    fn seal(&mut self, term: Term) -> BlockId {
        let id = self.cur.take().expect("no open block");
        let blk = &mut self.func.blocks[id.index()];
        blk.insts = std::mem::take(&mut self.cur_insts);
        blk.term = term;
        id
    }

    fn emit(&mut self, inst: Inst) {
        debug_assert!(self.cur.is_some(), "emitting into sealed block");
        self.cur_insts.push(inst);
    }

    fn emit_bin(&mut self, op: IrBinOp, ty: IrType, a: Val, b: Val) -> Val {
        let dst = self.func.new_vreg(result_type_of_bin(op, ty));
        self.emit(Inst::Bin { op, ty, dst, a, b });
        Val::Reg(dst)
    }

    fn emit_un(&mut self, op: IrUnOp, ty: IrType, a: Val) -> Val {
        let dst = self.func.new_vreg(result_type_of_un(op, ty));
        self.emit(Inst::Un { op, ty, dst, a });
        Val::Reg(dst)
    }

    /// Promotes `v` to float if it is an int.
    #[allow(clippy::wrong_self_convention)]
    fn to_float(&mut self, v: Val, ty: IrType) -> Val {
        match ty {
            IrType::Float => v,
            IrType::Int => match v {
                Val::ConstI(c) => Val::ConstF(c as f32),
                _ => self.emit_un(IrUnOp::ItoF, IrType::Int, v),
            },
        }
    }

    /// Promotes a pair of operands to a common type.
    fn unify(&mut self, a: Val, at: IrType, b: Val, bt: IrType) -> (Val, Val, IrType) {
        if at == bt {
            return (a, b, at);
        }
        let a = self.to_float(a, at);
        let b = self.to_float(b, bt);
        (a, b, IrType::Float)
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            if self.cur.is_none() {
                // Unreachable statements after a return: put them in a
                // fresh block so lowering stays total; the unreachable-
                // block cleanup removes it.
                self.start_block();
            }
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let (v, vt) = self.expr(value)?;
                match self.storage.get(&target.name).cloned() {
                    Some(Storage::Scalar(dst, ty)) => {
                        if !target.indices.is_empty() {
                            return err(*span, "subscript on scalar");
                        }
                        let v = if ty == IrType::Float {
                            self.to_float(v, vt)
                        } else {
                            v
                        };
                        self.emit(Inst::Copy { dst, src: v });
                    }
                    Some(Storage::Array(arr, dims, ty)) => {
                        let index = self.linear_index(target, &dims, *span)?;
                        let v = if ty == IrType::Float {
                            self.to_float(v, vt)
                        } else {
                            v
                        };
                        self.emit(Inst::Store {
                            arr,
                            index,
                            value: v,
                            ty,
                        });
                    }
                    None => return err(*span, format!("undeclared `{}`", target.name)),
                }
                Ok(())
            }
            Stmt::If {
                arms, else_body, ..
            } => self.lower_if(arms, else_body),
            Stmt::While { cond, body, .. } => self.lower_while(cond, body),
            Stmt::For {
                var,
                from,
                to,
                downto,
                by,
                body,
                span,
            } => self.lower_for(var, from, to, *downto, by.as_ref(), body, *span),
            Stmt::Call { name, args, span } => {
                self.lower_call(name, args, *span)?;
                Ok(())
            }
            Stmt::Send { dir, value, .. } => {
                let (v, vt) = self.expr(value)?;
                // Queues carry typed words; send floats as floats.
                let _ = vt;
                self.emit(Inst::Send {
                    dir: *dir,
                    value: v,
                });
                Ok(())
            }
            Stmt::Receive { dir, target, span } => {
                match self.storage.get(&target.name).cloned() {
                    Some(Storage::Scalar(dst, ty)) => {
                        if !target.indices.is_empty() {
                            return err(*span, "subscript on scalar");
                        }
                        self.emit(Inst::Recv { dst, dir: *dir, ty });
                    }
                    Some(Storage::Array(arr, dims, ty)) => {
                        let tmp = self.func.new_vreg(ty);
                        self.emit(Inst::Recv {
                            dst: tmp,
                            dir: *dir,
                            ty,
                        });
                        let index = self.linear_index(target, &dims, *span)?;
                        self.emit(Inst::Store {
                            arr,
                            index,
                            value: Val::Reg(tmp),
                            ty,
                        });
                    }
                    None => return err(*span, format!("undeclared `{}`", target.name)),
                }
                Ok(())
            }
            Stmt::Return { value, .. } => {
                let v = match (value, self.func.ret) {
                    (Some(e), Some(ret_ty)) => {
                        let (v, vt) = self.expr(e)?;
                        Some(if ret_ty == IrType::Float {
                            self.to_float(v, vt)
                        } else {
                            v
                        })
                    }
                    (Some(e), None) => {
                        let (v, _) = self.expr(e)?;
                        Some(v)
                    }
                    (None, Some(ret_ty)) => Some(match ret_ty {
                        IrType::Int => Val::ConstI(0),
                        IrType::Float => Val::ConstF(0.0),
                    }),
                    (None, None) => None,
                };
                self.seal(Term::Return(v));
                Ok(())
            }
        }
    }

    fn lower_if(&mut self, arms: &[ast::IfArm], else_body: &[Stmt]) -> Result<()> {
        // Reserve a join block id lazily: we need ids before blocks
        // exist, so create placeholder blocks up front.
        let mut exits: Vec<BlockId> = Vec::new();

        // Lower chain iteratively.
        let mut arm_iter = arms.iter().peekable();
        while let Some(arm) = arm_iter.next() {
            let (c, _) = self.expr(&arm.cond)?;
            let cond_block_pending = self.cur.expect("open block");
            let _ = cond_block_pending;
            // Seal with placeholder branch; patch after targets known.
            let here = self.seal(Term::Return(None));
            // Body
            let body_id = self.start_block();
            self.stmts(&arm.body)?;
            let body_exit = if self.cur.is_some() {
                Some(self.seal(Term::Return(None)))
            } else {
                None
            };
            if let Some(e) = body_exit {
                exits.push(e);
            }
            // Next arm / else
            let next_id = self.start_block();
            self.func.blocks[here.index()].term = Term::Branch {
                cond: c,
                then_blk: body_id,
                else_blk: next_id,
            };
            if arm_iter.peek().is_none() {
                // `next_id` holds the else body.
                self.stmts(else_body)?;
                let else_exit = if self.cur.is_some() {
                    Some(self.seal(Term::Return(None)))
                } else {
                    None
                };
                if let Some(e) = else_exit {
                    exits.push(e);
                }
            }
        }

        // Join block.
        let join = self.start_block();
        for e in exits {
            self.func.blocks[e.index()].term = Term::Jump(join);
        }
        // If the final else fell through (sealed above), it was added to
        // exits; nothing else to patch.
        Ok(())
    }

    fn lower_while(&mut self, cond: &Expr, body: &[Stmt]) -> Result<()> {
        let pre = self.seal(Term::Return(None));
        let header = self.start_block();
        self.func.blocks[pre.index()].term = Term::Jump(header);
        let (c, _) = self.expr(cond)?;
        let header_sealed = self.seal(Term::Return(None));
        let body_id = self.start_block();
        self.stmts(body)?;
        if self.cur.is_some() {
            self.seal(Term::Jump(header));
        }
        let exit = self.start_block();
        self.func.blocks[header_sealed.index()].term = Term::Branch {
            cond: c,
            then_blk: body_id,
            else_blk: exit,
        };
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_for(
        &mut self,
        var: &str,
        from: &Expr,
        to: &Expr,
        downto: bool,
        by: Option<&Expr>,
        body: &[Stmt],
        span: Span,
    ) -> Result<()> {
        let Some(Storage::Scalar(ivar, IrType::Int)) = self.storage.get(var).cloned() else {
            return err(
                span,
                format!("loop variable `{var}` must be a declared int"),
            );
        };
        // Evaluate bounds and step once, in the preheader.
        let (from_v, _) = self.expr(from)?;
        let (to_v, _) = self.expr(to)?;
        let step_v = match by {
            Some(e) => self.expr(e)?.0,
            None => Val::ConstI(1),
        };
        // Materialize the limit and step in registers so the loop body
        // doesn't re-evaluate them and they are loop-invariant by
        // construction. Constants stay immediate — that keeps the
        // induction update recognizable (`i := i + c`) for the
        // dependence analysis.
        let limit = if to_v.is_const() {
            to_v
        } else {
            let r = self.func.new_vreg(IrType::Int);
            self.emit(Inst::Copy { dst: r, src: to_v });
            Val::Reg(r)
        };
        let step = if step_v.is_const() {
            step_v
        } else {
            let r = self.func.new_vreg(IrType::Int);
            self.emit(Inst::Copy {
                dst: r,
                src: step_v,
            });
            Val::Reg(r)
        };
        self.emit(Inst::Copy {
            dst: ivar,
            src: from_v,
        });

        // Guard: skip the loop entirely when the trip count is zero.
        let cmp = if downto { CmpKind::Ge } else { CmpKind::Le };
        let guard = self.func.new_vreg(IrType::Int);
        self.emit(Inst::Cmp {
            kind: cmp,
            ty: IrType::Int,
            dst: guard,
            a: Val::Reg(ivar),
            b: limit,
        });
        let pre = self.seal(Term::Return(None));

        // Loop body (do-while shape: body, increment, test, branch back).
        let body_id = self.start_block();
        self.stmts(body)?;
        if self.cur.is_none() {
            // Body ended with `return` on every path; no back edge.
            let exit = self.start_block();
            self.func.blocks[pre.index()].term = Term::Branch {
                cond: Val::Reg(guard),
                then_blk: body_id,
                else_blk: exit,
            };
            return Ok(());
        }
        let next = if downto {
            self.emit_bin(IrBinOp::Sub, IrType::Int, Val::Reg(ivar), step)
        } else {
            self.emit_bin(IrBinOp::Add, IrType::Int, Val::Reg(ivar), step)
        };
        self.emit(Inst::Copy {
            dst: ivar,
            src: next,
        });
        let again = self.func.new_vreg(IrType::Int);
        self.emit(Inst::Cmp {
            kind: cmp,
            ty: IrType::Int,
            dst: again,
            a: Val::Reg(ivar),
            b: limit,
        });
        let body_sealed = self.seal(Term::Return(None));

        let exit = self.start_block();
        self.func.blocks[pre.index()].term = Term::Branch {
            cond: Val::Reg(guard),
            then_blk: body_id,
            else_blk: exit,
        };
        self.func.blocks[body_sealed.index()].term = Term::Branch {
            cond: Val::Reg(again),
            then_blk: body_id,
            else_blk: exit,
        };
        Ok(())
    }

    /// Lowers a call; returns the result value if the callee returns one.
    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<Option<(Val, IrType)>> {
        // Builtins lower to IR operators.
        if let Some(arity) = ast::builtin_arity(name) {
            if args.len() != arity {
                return err(span, format!("builtin `{name}` arity"));
            }
            let mut vals = Vec::new();
            for a in args {
                vals.push(self.expr(a)?);
            }
            return Ok(Some(self.lower_builtin(name, &vals, span)?));
        }
        let Some(sig) = self.signatures.get(name).cloned() else {
            return err(span, format!("unknown function `{name}`"));
        };
        let mut arg_vals = Vec::new();
        for (a, pty) in args.iter().zip(&sig.params) {
            let (v, vt) = self.expr(a)?;
            let want = scalar_ir_type(pty);
            let v = if want == IrType::Float {
                self.to_float(v, vt)
            } else {
                v
            };
            arg_vals.push(v);
        }
        let ret_ty = sig.ret.as_ref().map(scalar_ir_type);
        let dst = ret_ty.map(|ty| self.func.new_vreg(ty));
        self.emit(Inst::Call {
            dst,
            callee: name.to_string(),
            args: arg_vals,
        });
        Ok(dst.map(|d| (Val::Reg(d), ret_ty.unwrap())))
    }

    fn lower_builtin(
        &mut self,
        name: &str,
        vals: &[(Val, IrType)],
        span: Span,
    ) -> Result<(Val, IrType)> {
        let unary_f = |lw: &mut Self, op: IrUnOp, (v, t): (Val, IrType)| {
            let v = lw.to_float(v, t);
            (lw.emit_un(op, IrType::Float, v), IrType::Float)
        };
        Ok(match name {
            "sqrt" => unary_f(self, IrUnOp::Sqrt, vals[0]),
            "sin" => unary_f(self, IrUnOp::Sin, vals[0]),
            "cos" => unary_f(self, IrUnOp::Cos, vals[0]),
            "exp" => unary_f(self, IrUnOp::Exp, vals[0]),
            "log" => unary_f(self, IrUnOp::Log, vals[0]),
            "abs" => {
                let (v, t) = vals[0];
                (self.emit_un(IrUnOp::Abs, t, v), t)
            }
            "floor" => {
                let (v, t) = vals[0];
                let v = self.to_float(v, t);
                (self.emit_un(IrUnOp::Floor, IrType::Float, v), IrType::Int)
            }
            "min" | "max" => {
                let (a, at) = vals[0];
                let (b, bt) = vals[1];
                let (a, b, ty) = self.unify(a, at, b, bt);
                let op = if name == "min" {
                    IrBinOp::Min
                } else {
                    IrBinOp::Max
                };
                (self.emit_bin(op, ty, a, b), ty)
            }
            "float" => {
                let (v, t) = vals[0];
                (self.to_float(v, t), IrType::Float)
            }
            "int" => {
                let (v, t) = vals[0];
                match t {
                    IrType::Int => (v, IrType::Int),
                    IrType::Float => (self.emit_un(IrUnOp::FtoI, IrType::Float, v), IrType::Int),
                }
            }
            _ => return err(span, format!("unhandled builtin `{name}`")),
        })
    }

    /// Computes the row-major linear index of an array access.
    fn linear_index(&mut self, lv: &LValue, dims: &[u32], span: Span) -> Result<Val> {
        if lv.indices.len() != dims.len() {
            return err(
                span,
                format!("`{}` needs {} subscripts", lv.name, dims.len()),
            );
        }
        let mut acc: Option<Val> = None;
        for (idx_expr, (i, _dim)) in lv.indices.iter().zip(dims.iter().enumerate()) {
            let (v, vt) = self.expr(idx_expr)?;
            if vt != IrType::Int {
                return err(idx_expr.span, "subscript must be int");
            }
            acc = Some(match acc {
                None => v,
                Some(prev) => {
                    let stride = dims[i] as i32;
                    let scaled =
                        self.emit_bin(IrBinOp::Mul, IrType::Int, prev, Val::ConstI(stride));
                    self.emit_bin(IrBinOp::Add, IrType::Int, scaled, v)
                }
            });
        }
        Ok(acc.unwrap_or(Val::ConstI(0)))
    }

    /// Lowers an expression, returning its value and type.
    fn expr(&mut self, e: &Expr) -> Result<(Val, IrType)> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let v32 = i32::try_from(*v).map_err(|_| LowerError {
                    message: "int literal out of range".into(),
                    span: e.span,
                })?;
                Ok((Val::ConstI(v32), IrType::Int))
            }
            ExprKind::FloatLit(v) => Ok((Val::ConstF(*v as f32), IrType::Float)),
            ExprKind::BoolLit(v) => Ok((Val::ConstI(*v as i32), IrType::Int)),
            ExprKind::LValue(lv) => match self.storage.get(&lv.name).cloned() {
                Some(Storage::Scalar(r, ty)) => {
                    if !lv.indices.is_empty() {
                        return err(e.span, "subscript on scalar");
                    }
                    Ok((Val::Reg(r), ty))
                }
                Some(Storage::Array(arr, dims, ty)) => {
                    let index = self.linear_index(lv, &dims, e.span)?;
                    let dst = self.func.new_vreg(ty);
                    self.emit(Inst::Load {
                        dst,
                        ty,
                        arr,
                        index,
                    });
                    Ok((Val::Reg(dst), ty))
                }
                None => err(e.span, format!("undeclared `{}`", lv.name)),
            },
            ExprKind::Unary { op, expr } => {
                let (v, t) = self.expr(expr)?;
                match op {
                    UnOp::Neg => Ok((self.emit_un(IrUnOp::Neg, t, v), t)),
                    UnOp::Not => Ok((self.emit_un(IrUnOp::Not, IrType::Int, v), IrType::Int)),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let (a, at) = self.expr(lhs)?;
                let (b, bt) = self.expr(rhs)?;
                self.lower_binop(*op, a, at, b, bt, e.span)
            }
            ExprKind::Call { name, args } => match self.lower_call(name, args, e.span)? {
                Some(res) => Ok(res),
                None => err(e.span, format!("procedure `{name}` used as expression")),
            },
        }
    }

    fn lower_binop(
        &mut self,
        op: BinOp,
        a: Val,
        at: IrType,
        b: Val,
        bt: IrType,
        span: Span,
    ) -> Result<(Val, IrType)> {
        let _ = span;
        match op {
            BinOp::And => Ok((self.emit_bin(IrBinOp::And, IrType::Int, a, b), IrType::Int)),
            BinOp::Or => Ok((self.emit_bin(IrBinOp::Or, IrType::Int, a, b), IrType::Int)),
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let (a, b, ty) = self.unify(a, at, b, bt);
                let kind = match op {
                    BinOp::Eq => CmpKind::Eq,
                    BinOp::Ne => CmpKind::Ne,
                    BinOp::Lt => CmpKind::Lt,
                    BinOp::Le => CmpKind::Le,
                    BinOp::Gt => CmpKind::Gt,
                    _ => CmpKind::Ge,
                };
                let dst = self.func.new_vreg(IrType::Int);
                self.emit(Inst::Cmp {
                    kind,
                    ty,
                    dst,
                    a,
                    b,
                });
                Ok((Val::Reg(dst), IrType::Int))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let (a, b, ty) = self.unify(a, at, b, bt);
                let irop = match op {
                    BinOp::Add => IrBinOp::Add,
                    BinOp::Sub => IrBinOp::Sub,
                    _ => IrBinOp::Mul,
                };
                Ok((self.emit_bin(irop, ty, a, b), ty))
            }
            BinOp::Div => {
                let a = self.to_float(a, at);
                let b = self.to_float(b, bt);
                Ok((
                    self.emit_bin(IrBinOp::Div, IrType::Float, a, b),
                    IrType::Float,
                ))
            }
            BinOp::IDiv => Ok((self.emit_bin(IrBinOp::IDiv, IrType::Int, a, b), IrType::Int)),
            BinOp::Mod => Ok((self.emit_bin(IrBinOp::Mod, IrType::Int, a, b), IrType::Int)),
        }
    }
}

fn result_type_of_bin(op: IrBinOp, operand_ty: IrType) -> IrType {
    match op {
        IrBinOp::And | IrBinOp::Or => IrType::Int,
        IrBinOp::IDiv | IrBinOp::Mod => IrType::Int,
        IrBinOp::Div => IrType::Float,
        _ => operand_ty,
    }
}

fn result_type_of_un(op: IrUnOp, operand_ty: IrType) -> IrType {
    match op {
        IrUnOp::Not => IrType::Int,
        IrUnOp::ItoF => IrType::Float,
        IrUnOp::FtoI | IrUnOp::Floor => IrType::Int,
        IrUnOp::Sqrt | IrUnOp::Sin | IrUnOp::Cos | IrUnOp::Exp | IrUnOp::Log => IrType::Float,
        IrUnOp::Neg | IrUnOp::Abs => operand_ty,
    }
}

/// Lowers every function of a checked module, in source order, yielding
/// `(section index, FuncIr)` pairs.
///
/// # Errors
///
/// Propagates the first [`LowerError`].
pub fn lower_module(checked: &warp_lang::CheckedModule) -> Result<Vec<(usize, FuncIr)>> {
    let mut out = Vec::new();
    for (si, section) in checked.module.sections.iter().enumerate() {
        let sigs = &checked.sections[si].signatures;
        for (fi, f) in section.functions.iter().enumerate() {
            let symbols = &checked.sections[si].symbol_tables[fi];
            out.push((si, lower_function(f, symbols, sigs)?));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_lang::phase1;

    fn lower_first(src: &str) -> FuncIr {
        let checked = phase1(src).expect("phase1");
        let fns = lower_module(&checked).expect("lower");
        fns.into_iter().next().unwrap().1
    }

    fn wrap(body: &str) -> String {
        format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[8]; m2: float[4][4]; i: int; j: int; begin {body} end; end;"
        )
    }

    #[test]
    fn straight_line_lowering() {
        let f = lower_first(&wrap("t := x * 2.0 + 1.0; return t;"));
        assert_eq!(f.blocks.len(), 1);
        assert!(f.inst_count() >= 3); // mul, add, copy
        assert!(matches!(f.blocks[0].term, Term::Return(Some(_))));
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(IrType::Float));
    }

    #[test]
    fn int_to_float_promotion_inserted() {
        let f = lower_first(&wrap("t := x + n; return t;"));
        let has_itof = f.blocks[0].insts.iter().any(|i| {
            matches!(
                i,
                Inst::Un {
                    op: IrUnOp::ItoF,
                    ..
                }
            )
        });
        assert!(has_itof, "{}", f.dump());
    }

    #[test]
    fn array_access_linearized() {
        let f = lower_first(&wrap("m2[i][j] := 1.0; t := m2[0][1]; return t;"));
        let dump = f.dump();
        // Store with computed index: i*4 + j
        assert!(dump.contains("store"), "{dump}");
        assert!(f
            .arrays
            .iter()
            .any(|a| a.name == "m2" && a.dims == vec![4, 4]));
        let has_mul = f.blocks[0].insts.iter().any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: IrBinOp::Mul,
                    b: Val::ConstI(4),
                    ..
                }
            )
        });
        assert!(has_mul, "{dump}");
    }

    #[test]
    fn for_loop_shape_is_guarded_do_while() {
        let f = lower_first(&wrap(
            "t := 0.0; for i := 0 to 7 do t := t + v[i]; end; return t;",
        ));
        // Blocks: pre (guard), body (self-loop via branch), exit.
        assert_eq!(f.blocks.len(), 3, "{}", f.dump());
        let body = &f.blocks[1];
        match &body.term {
            Term::Branch { then_blk, .. } => {
                assert_eq!(*then_blk, BlockId(1), "body must self-loop")
            }
            t => panic!("body terminator {t}"),
        }
    }

    #[test]
    fn downto_uses_sub_and_ge() {
        let f = lower_first(&wrap("for i := 7 downto 0 do t := t + 1.0; end; return t;"));
        let body = &f.blocks[1];
        let has_sub = body.insts.iter().any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: IrBinOp::Sub,
                    ty: IrType::Int,
                    ..
                }
            )
        });
        assert!(has_sub, "{}", f.dump());
        let has_ge = body.insts.iter().any(|i| {
            matches!(
                i,
                Inst::Cmp {
                    kind: CmpKind::Ge,
                    ..
                }
            )
        });
        assert!(has_ge);
    }

    #[test]
    fn if_elsif_else_blocks() {
        let f = lower_first(&wrap(
            "if x > 1.0 then t := 1.0; elsif x > 0.0 then t := 2.0; else t := 3.0; end; return t;",
        ));
        // entry(br), arm1, next(br), arm2, else, join — at least 5 blocks.
        assert!(f.blocks.len() >= 5, "{}", f.dump());
        // All paths converge: exactly one Return.
        let rets = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::Return(_)))
            .count();
        assert_eq!(rets, 1, "{}", f.dump());
    }

    #[test]
    fn while_loop_header_and_exit() {
        let f = lower_first(&wrap("while t < 10.0 do t := t + 1.0; end; return t;"));
        assert_eq!(f.blocks.len(), 4, "{}", f.dump()); // pre, header, body, exit
        match &f.blocks[1].term {
            Term::Branch { .. } => {}
            t => panic!("header terminator {t}"),
        }
    }

    #[test]
    fn send_receive_lowered() {
        let f = lower_first(&wrap("receive(left, t); send(right, t * 2.0); return t;"));
        let dump = f.dump();
        assert!(dump.contains("recv.left"), "{dump}");
        assert!(dump.contains("send.right"), "{dump}");
    }

    #[test]
    fn builtins_lower_to_ops() {
        let f = lower_first(&wrap(
            "t := sqrt(x) + min(x, 1.0); i := floor(x); return t;",
        ));
        let dump = f.dump();
        assert!(dump.contains("Sqrt"), "{dump}");
        assert!(dump.contains("Min"), "{dump}");
        assert!(dump.contains("Floor"), "{dump}");
    }

    #[test]
    fn call_lowered_with_promotion() {
        let src = "module m; section a on cells 0..0; \
             function g(y: float): float begin return y; end; \
             function f(n: int): float begin return g(n); end; end;";
        let checked = phase1(src).unwrap();
        let fns = lower_module(&checked).unwrap();
        let f = &fns[1].1;
        let dump = f.dump();
        assert!(dump.contains("call g("), "{dump}");
        assert!(dump.contains("ItoF"), "{dump}");
    }

    #[test]
    fn implicit_return_value() {
        let src = "module m; section a on cells 0..0; \
             function f(): int var i: int; begin i := 1; end; end;";
        let checked = phase1(src).unwrap();
        let fns = lower_module(&checked).unwrap();
        match &fns[0].1.blocks[0].term {
            Term::Return(Some(Val::ConstI(0))) => {}
            t => panic!("expected default return, got {t}"),
        }
    }

    #[test]
    fn return_inside_loop_handled() {
        let f = lower_first(&wrap(
            "for i := 0 to 7 do if v[i] > 1.0 then return v[i]; end; end; return 0.0;",
        ));
        // Should produce a valid CFG with multiple returns.
        let rets = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::Return(_)))
            .count();
        assert!(rets >= 2, "{}", f.dump());
    }

    #[test]
    fn bool_ops_eager() {
        let f = lower_first(&wrap("if x > 0.0 and n > 1 then t := 1.0; end; return t;"));
        let has_and = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: IrBinOp::And,
                    ..
                }
            )
        });
        assert!(has_and, "{}", f.dump());
    }
}
