//! Dependence analysis ("computation of global dependencies", phase 2).
//!
//! Builds the data-dependence graph of a basic block, including
//! loop-carried dependences when the block is a self-looping loop body.
//! The graph drives both the acyclic list scheduler and the modulo
//! scheduler (software pipelining) in `warp-codegen`: recurrence
//! circuits bound the initiation interval from below (RecMII).
//!
//! Memory dependences between array accesses use the classic ZIV/SIV
//! subscript tests on indices that are affine in the loop's induction
//! register; anything unanalyzable is a conservative distance-1
//! dependence.

use crate::ir::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-after-write (true dependence).
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
    /// Ordering between side-effecting operations (queues, calls,
    /// unanalyzable memory).
    Order,
}

/// A dependence edge between two instructions of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepEdge {
    /// Source instruction index.
    pub from: usize,
    /// Destination instruction index.
    pub to: usize,
    /// Kind of dependence.
    pub kind: DepKind,
    /// Iteration distance: 0 = same iteration, k > 0 = k iterations
    /// later. Non-loop blocks only have distance 0.
    pub distance: u32,
}

/// The dependence graph of one block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepGraph {
    /// Number of instructions.
    pub n: usize,
    /// All edges.
    pub edges: Vec<DepEdge>,
    /// Number of subscript tests performed (work units).
    pub dep_tests: usize,
}

impl DepGraph {
    /// Edges with distance 0 (the intra-iteration subgraph, acyclic).
    pub fn intra_edges(&self) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(|e| e.distance == 0)
    }

    /// Edges carried around the loop.
    pub fn carried_edges(&self) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(|e| e.distance > 0)
    }
}

/// An index expression recognized as `coeff * induction + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Affine {
    coeff: i64,
    offset: i64,
}

/// Recognizes the induction register of a single-block loop: a register
/// `i` updated as `i := i ± c` (possibly through a copy of a fresh
/// temporary) one or more times in the block — an unrolled loop updates
/// it once per copy.
///
/// Returns `(register, total signed step per block iteration)`. Fails
/// if more than one register looks like an induction variable or the
/// updates mix signs.
/// Recognizes the induction register of a single-block loop: the unique
/// register whose value at block exit is its entry value plus a nonzero
/// constant (`i := i ± c`, possibly through temporaries, possibly
/// updated several times in an unrolled body).
///
/// Returns `(register, total signed step per block iteration)`.
pub fn find_induction(block: &Block) -> Option<(VirtReg, i64)> {
    use std::collections::HashSet;
    // Symbolic ±constant chains from block-entry values:
    // expr[r] = (root, delta) means r currently holds root@entry + delta.
    let mut expr: HashMap<VirtReg, (VirtReg, i64)> = HashMap::new();
    let mut defined: HashSet<VirtReg> = HashSet::new();
    for inst in &block.insts {
        match inst {
            Inst::Bin {
                op,
                ty: IrType::Int,
                dst,
                a: Val::Reg(src),
                b: Val::ConstI(c),
            } if *op == IrBinOp::Add || *op == IrBinOp::Sub => {
                let c = if *op == IrBinOp::Add {
                    *c as i64
                } else {
                    -(*c as i64)
                };
                let entry = if let Some(&(root, delta)) = expr.get(src) {
                    Some((root, delta + c))
                } else if !defined.contains(src) {
                    Some((*src, c))
                } else {
                    None
                };
                match entry {
                    Some(e) => {
                        expr.insert(*dst, e);
                    }
                    None => {
                        expr.remove(dst);
                    }
                }
                defined.insert(*dst);
            }
            Inst::Copy {
                dst,
                src: Val::Reg(s),
            } => {
                let entry = if let Some(&e) = expr.get(s) {
                    Some(e)
                } else if !defined.contains(s) {
                    Some((*s, 0))
                } else {
                    None
                };
                match entry {
                    Some(e) => {
                        expr.insert(*dst, e);
                    }
                    None => {
                        expr.remove(dst);
                    }
                }
                defined.insert(*dst);
            }
            other => {
                if let Some(d) = other.def() {
                    expr.remove(&d);
                    defined.insert(d);
                }
            }
        }
    }
    let mut candidates: Vec<(VirtReg, i64)> = expr
        .iter()
        .filter(|(r, (root, delta))| *r == root && *delta != 0 && defined.contains(r))
        .map(|(r, (_, delta))| (*r, *delta))
        .collect();
    candidates.sort_by_key(|(r, _)| r.0);
    if candidates.len() != 1 {
        return None;
    }
    Some(candidates[0])
}

/// Tries to express `index` (at instruction position `pos`) as an
/// affine function of the induction register, chasing same-block
/// definitions upward.
fn affine_of(
    block: &Block,
    pos: usize,
    index: Val,
    induction: Option<(VirtReg, i64)>,
    depth: usize,
) -> Option<Affine> {
    if depth > 16 {
        return None;
    }
    match index {
        Val::ConstI(c) => Some(Affine {
            coeff: 0,
            offset: c as i64,
        }),
        Val::ConstF(_) => None,
        Val::Reg(r) => {
            if let Some((ind, _)) = induction {
                if r == ind {
                    // Value of the induction register *at the top of the
                    // iteration* — valid if no update precedes `pos`.
                    let updated_before = block.insts[..pos].iter().any(|i| i.def() == Some(r));
                    if !updated_before {
                        return Some(Affine {
                            coeff: 1,
                            offset: 0,
                        });
                    } else {
                        return None;
                    }
                }
            }
            // Chase the defining instruction before `pos`.
            let def_pos = block.insts[..pos]
                .iter()
                .rposition(|i| i.def() == Some(r))?;
            match &block.insts[def_pos] {
                Inst::Copy { src, .. } => affine_of(block, def_pos, *src, induction, depth + 1),
                Inst::Bin {
                    op,
                    ty: IrType::Int,
                    a,
                    b,
                    ..
                } => {
                    let fa = affine_of(block, def_pos, *a, induction, depth + 1)?;
                    let fb = affine_of(block, def_pos, *b, induction, depth + 1)?;
                    match op {
                        IrBinOp::Add => Some(Affine {
                            coeff: fa.coeff + fb.coeff,
                            offset: fa.offset + fb.offset,
                        }),
                        IrBinOp::Sub => Some(Affine {
                            coeff: fa.coeff - fb.coeff,
                            offset: fa.offset - fb.offset,
                        }),
                        IrBinOp::Mul => {
                            if fa.coeff == 0 {
                                Some(Affine {
                                    coeff: fa.offset * fb.coeff,
                                    offset: fa.offset * fb.offset,
                                })
                            } else if fb.coeff == 0 {
                                Some(Affine {
                                    coeff: fb.offset * fa.coeff,
                                    offset: fb.offset * fa.offset,
                                })
                            } else {
                                None
                            }
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        }
    }
}

/// Result of a subscript dependence test between two accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubscriptDep {
    /// No dependence between the accesses.
    None,
    /// Dependence at the given non-negative iteration distance.
    Distance(u32),
    /// Unknown — assume a loop-carried dependence of distance 1.
    Unknown,
}

/// ZIV/SIV dependence test: access A at `a1*i + b1` (earlier in the
/// block) and access B at `a2*i + b2`, where the induction register
/// advances by `step` per block iteration (so the per-iteration index
/// delta is `coeff * step`).
fn subscript_test(
    fa: Option<Affine>,
    fb: Option<Affine>,
    step: i64,
    is_loop: bool,
) -> SubscriptDep {
    match (fa, fb) {
        (Some(x), Some(y)) => {
            if x.coeff == y.coeff {
                if x.coeff == 0 {
                    // ZIV: both constant.
                    if x.offset == y.offset {
                        SubscriptDep::Distance(0)
                    } else {
                        SubscriptDep::None
                    }
                } else {
                    // Strong SIV: distance = (b1 - b2) / (a * step).
                    let denom = x.coeff * step;
                    if denom == 0 {
                        return SubscriptDep::Unknown;
                    }
                    let diff = x.offset - y.offset;
                    if diff % denom != 0 {
                        SubscriptDep::None
                    } else {
                        let d = diff / denom;
                        if d == 0 {
                            SubscriptDep::Distance(0)
                        } else if !is_loop {
                            SubscriptDep::None
                        } else if d > 0 {
                            SubscriptDep::Distance(d.min(u32::MAX as i64) as u32)
                        } else {
                            // Negative direction: the *other* ordering
                            // carries it; for a conservative graph keep
                            // a distance-|d| edge in the other direction
                            // handled by the caller via symmetry.
                            SubscriptDep::None
                        }
                    }
                }
            } else {
                SubscriptDep::Unknown
            }
        }
        _ => SubscriptDep::Unknown,
    }
}

/// Builds the dependence graph of `block`.
///
/// `is_loop` marks a self-looping block; only then are loop-carried
/// (distance ≥ 1) dependences generated.
pub fn dep_graph(_func: &FuncIr, block: &Block, is_loop: bool) -> DepGraph {
    let n = block.insts.len();
    let mut edges: Vec<DepEdge> = Vec::new();
    let mut dep_tests = 0usize;
    let induction = if is_loop { find_induction(block) } else { None };

    let push = |edges: &mut Vec<DepEdge>, from: usize, to: usize, kind: DepKind, distance: u32| {
        if from == to && distance == 0 {
            return;
        }
        if !edges
            .iter()
            .any(|e| e.from == from && e.to == to && e.kind == kind && e.distance == distance)
        {
            edges.push(DepEdge {
                from,
                to,
                kind,
                distance,
            });
        }
    };

    // ---- register dependences -----------------------------------------
    // Within an iteration: classic def→use (flow), use→def (anti),
    // def→def (output). Loop-carried: a use before the (re)definition in
    // the same block reads the previous iteration's value.
    for (j, inst_j) in block.insts.iter().enumerate() {
        // Flow: last def of each used reg before j.
        for u in inst_j.used_regs() {
            match block.insts[..j].iter().rposition(|i| i.def() == Some(u)) {
                Some(i) => push(&mut edges, i, j, DepKind::Flow, 0),
                None => {
                    if is_loop {
                        // Defined later in the block? Then the use reads
                        // last iteration's value — which comes from the
                        // *last* def of the block.
                        if let Some(i) = block.insts.iter().rposition(|i| i.def() == Some(u)) {
                            if i >= j {
                                push(&mut edges, i, j, DepKind::Flow, 1);
                            }
                        }
                    }
                }
            }
        }
        if let Some(d) = inst_j.def() {
            // Anti: uses of d before j (same iteration).
            for (i, inst_i) in block.insts[..j].iter().enumerate() {
                if inst_i.used_regs().contains(&d) {
                    push(&mut edges, i, j, DepKind::Anti, 0);
                }
                if inst_i.def() == Some(d) {
                    push(&mut edges, i, j, DepKind::Output, 0);
                }
            }
        }
    }

    // ---- memory dependences --------------------------------------------
    let accesses: Vec<(usize, ArrayId, Val, bool)> = block
        .insts
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| match inst {
            Inst::Load { arr, index, .. } => Some((i, *arr, *index, false)),
            Inst::Store { arr, index, .. } => Some((i, *arr, *index, true)),
            _ => None,
        })
        .collect();
    for (x, &(i, arr_i, idx_i, wr_i)) in accesses.iter().enumerate() {
        for &(j, arr_j, idx_j, wr_j) in accesses.iter().skip(x + 1) {
            if arr_i != arr_j || (!wr_i && !wr_j) {
                continue;
            }
            dep_tests += 1;
            let fa = affine_of(block, i, idx_i, induction, 0);
            let fb = affine_of(block, j, idx_j, induction, 0);
            let step = induction.map(|(_, s)| s).unwrap_or(1);
            let kind = match (wr_i, wr_j) {
                (true, false) => DepKind::Flow,
                (false, true) => DepKind::Anti,
                (true, true) => DepKind::Output,
                (false, false) => unreachable!(),
            };
            match subscript_test(fa, fb, step, is_loop) {
                SubscriptDep::None => {
                    // Also test the reversed (loop-carried j → i) direction.
                    if is_loop {
                        match subscript_test(fb, fa, step, true) {
                            SubscriptDep::Distance(d) if d > 0 => {
                                let rkind = match (wr_j, wr_i) {
                                    (true, false) => DepKind::Flow,
                                    (false, true) => DepKind::Anti,
                                    (true, true) => DepKind::Output,
                                    (false, false) => unreachable!(),
                                };
                                push(&mut edges, j, i, rkind, d);
                            }
                            _ => {}
                        }
                    }
                }
                SubscriptDep::Distance(d) => push(&mut edges, i, j, kind, d),
                SubscriptDep::Unknown => {
                    push(&mut edges, i, j, kind, 0);
                    if is_loop {
                        let rkind = match (wr_j, wr_i) {
                            (true, false) => DepKind::Flow,
                            (false, true) => DepKind::Anti,
                            (true, true) => DepKind::Output,
                            (false, false) => unreachable!(),
                        };
                        push(&mut edges, j, i, rkind, 1);
                    }
                }
            }
        }
    }

    // ---- queue and call ordering ----------------------------------------
    // Sends on the same queue must stay ordered; receives likewise; a
    // call orders with every other effectful instruction (the callee
    // may use the queues).
    let effectful: Vec<(usize, &Inst)> = block
        .insts
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Inst::Send { .. } | Inst::Recv { .. } | Inst::Call { .. }))
        .collect();
    for (x, &(i, inst_i)) in effectful.iter().enumerate() {
        for &(j, inst_j) in effectful.iter().skip(x + 1) {
            let ordered = match (inst_i, inst_j) {
                (Inst::Send { dir: d1, .. }, Inst::Send { dir: d2, .. }) => d1 == d2,
                (Inst::Recv { dir: d1, .. }, Inst::Recv { dir: d2, .. }) => d1 == d2,
                (Inst::Call { .. }, _) | (_, Inst::Call { .. }) => true,
                _ => false,
            };
            if ordered {
                push(&mut edges, i, j, DepKind::Order, 0);
                if is_loop {
                    push(&mut edges, j, i, DepKind::Order, 1);
                }
            }
        }
    }

    DepGraph {
        n,
        edges,
        dep_tests,
    }
}

/// The scheduling delay an edge imposes between its endpoints.
///
/// Flow dependences require the producer's full latency; anti
/// dependences allow the write in the same cycle as the read (the cell
/// reads all operands before any write commits); output and order
/// dependences require one cycle of separation.
pub fn edge_delay(e: &DepEdge, latency: &[u32]) -> u32 {
    match e.kind {
        DepKind::Flow => latency[e.from],
        DepKind::Anti => 0,
        DepKind::Output | DepKind::Order => 1,
    }
}

/// Computes the recurrence-constrained minimum initiation interval
/// (RecMII) of a loop dependence graph given per-instruction latencies.
///
/// Uses the standard iterative shortest/longest path formulation: for
/// each candidate II, a cycle with total delay L and total distance D
/// is feasible iff `L <= II * D`. Returns the smallest II in
/// `1..=max_ii` that satisfies all circuits, or `max_ii + 1`.
pub fn rec_mii(graph: &DepGraph, latency: &[u32], max_ii: u32) -> u32 {
    // Floyd–Warshall style longest-path with (latency - II*distance)
    // weights; a positive cycle means II is infeasible.
    let n = graph.n;
    if n == 0 {
        return 1;
    }
    'outer: for ii in 1..=max_ii {
        const NEG: i64 = i64::MIN / 4;
        let mut dist = vec![vec![NEG; n]; n];
        for e in &graph.edges {
            let w = edge_delay(e, latency) as i64 - (ii as i64) * (e.distance as i64);
            if w > dist[e.from][e.to] {
                dist[e.from][e.to] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if dist[i][k] == NEG {
                    continue;
                }
                for j in 0..n {
                    if dist[k][j] == NEG {
                        continue;
                    }
                    let via = dist[i][k] + dist[k][j];
                    if via > dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
        for (i, row) in dist.iter().enumerate() {
            if row[i] > 0 {
                continue 'outer;
            }
        }
        return ii;
    }
    max_ii + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::analyze_loops;
    use crate::lower::lower_module;
    use warp_lang::phase1;

    fn lowered(body: &str) -> FuncIr {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[64]; w: float[64]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        let mut f = lower_module(&checked).expect("lower").remove(0).1;
        crate::opt::optimize(&mut f, 10);
        f
    }

    fn loop_block(f: &FuncIr) -> &Block {
        let li = analyze_loops(f);
        let hdr = li.pipelinable_blocks()[0];
        &f.blocks[hdr.index()]
    }

    #[test]
    fn induction_variable_found() {
        let f = lowered("t := 0.0; for i := 0 to 7 do t := t + v[i]; end; return t;");
        let blk = loop_block(&f);
        let (reg, step) = find_induction(blk).expect("induction");
        assert_eq!(step, 1);
        // The register must be an int.
        assert_eq!(f.vreg_type(reg), IrType::Int);
    }

    #[test]
    fn downto_induction_step_negative() {
        let f = lowered("t := 0.0; for i := 7 downto 0 do t := t + v[i]; end; return t;");
        let blk = loop_block(&f);
        let (_, step) = find_induction(blk).expect("induction");
        assert_eq!(step, -1);
    }

    #[test]
    fn accumulator_has_carried_flow_dep() {
        let f = lowered("t := 0.0; for i := 0 to 7 do t := t + v[i]; end; return t;");
        let blk = loop_block(&f);
        let g = dep_graph(&f, blk, true);
        assert!(
            g.carried_edges().any(|e| e.kind == DepKind::Flow),
            "{:?}\n{}",
            g.edges,
            f.dump()
        );
    }

    #[test]
    fn independent_elements_no_memory_dep() {
        // v[i] := w[i] * 2.0 — different arrays, no carried memory dep.
        let f = lowered("for i := 0 to 63 do v[i] := w[i] * 2.0; end; return 0.0;");
        let blk = loop_block(&f);
        let g = dep_graph(&f, blk, true);
        let mem_carried = g.carried_edges().any(|e| {
            matches!(blk.insts[e.from], Inst::Load { .. } | Inst::Store { .. })
                && matches!(blk.insts[e.to], Inst::Load { .. } | Inst::Store { .. })
        });
        assert!(!mem_carried, "{:?}", g.edges);
    }

    #[test]
    fn recurrence_through_array_distance_detected() {
        // v[i] := v[i-1] + 1.0: distance-1 flow from store to load.
        let f =
            lowered("v[0] := x; for i := 1 to 63 do v[i] := v[i - 1] + 1.0; end; return v[63];");
        let blk = loop_block(&f);
        let g = dep_graph(&f, blk, true);
        let found = g.edges.iter().any(|e| {
            e.distance == 1
                && e.kind == DepKind::Flow
                && matches!(blk.insts[e.from], Inst::Store { .. })
                && matches!(blk.insts[e.to], Inst::Load { .. })
        });
        assert!(found, "{:?}\n{}", g.edges, f.dump());
        assert!(g.dep_tests > 0);
    }

    #[test]
    fn same_element_distance_zero() {
        // v[i] := v[i] + 1.0: flow within the iteration (load before store).
        let f = lowered("for i := 0 to 63 do v[i] := v[i] + 1.0; end; return 0.0;");
        let blk = loop_block(&f);
        let g = dep_graph(&f, blk, true);
        // load (earlier) → store (later) anti edge with distance 0.
        let found = g.intra_edges().any(|e| {
            e.kind == DepKind::Anti
                && matches!(blk.insts[e.from], Inst::Load { .. })
                && matches!(blk.insts[e.to], Inst::Store { .. })
        });
        assert!(found, "{:?}\n{}", g.edges, f.dump());
    }

    #[test]
    fn sends_are_ordered() {
        let f =
            lowered("for i := 0 to 7 do send(right, v[i]); send(right, w[i]); end; return 0.0;");
        let blk = loop_block(&f);
        let g = dep_graph(&f, blk, true);
        let order_edges = g.edges.iter().filter(|e| e.kind == DepKind::Order).count();
        assert!(order_edges >= 2, "{:?}", g.edges); // intra + carried
    }

    #[test]
    fn rec_mii_of_accumulator_at_least_latency() {
        // t := t + v[i] with FAdd latency 5 and distance 1 → RecMII >= 5.
        let f = lowered("t := 0.0; for i := 0 to 63 do t := t + v[i]; end; return t;");
        let blk = loop_block(&f);
        let g = dep_graph(&f, blk, true);
        let lat: Vec<u32> = blk
            .insts
            .iter()
            .map(|i| match i {
                Inst::Bin {
                    ty: IrType::Float, ..
                } => 5,
                Inst::Load { .. } => 3,
                _ => 1,
            })
            .collect();
        let mii = rec_mii(&g, &lat, 64);
        assert!(mii >= 5, "mii={mii}\n{:?}", g.edges);
        assert!(mii <= 10, "mii={mii}");
    }

    #[test]
    fn rec_mii_of_independent_loop_is_one() {
        let f = lowered("for i := 0 to 63 do v[i] := w[i] * 2.0; end; return 0.0;");
        let blk = loop_block(&f);
        let g = dep_graph(&f, blk, true);
        // Remove the induction recurrence's effect: i := i + 1 has
        // latency 1, so its self-circuit allows II = 1.
        let lat: Vec<u32> = blk.insts.iter().map(|_| 1).collect();
        let mii = rec_mii(&g, &lat, 64);
        // Only the induction recurrence (i := i + 1 through a copy and
        // the address chain feeding next iteration's loads) constrains
        // the II; with unit latencies that bound is small.
        assert!(mii <= 3, "mii={mii} {:?}", g.edges);
    }

    #[test]
    fn non_loop_block_has_no_carried_edges() {
        let f = lowered("t := x + 1.0; v[0] := t; return v[0];");
        let g = dep_graph(&f, &f.blocks[0], false);
        assert_eq!(g.carried_edges().count(), 0);
        assert!(g.intra_edges().count() > 0);
    }
}
