//! Abstract interpretation over the mid-level IR: a worklist
//! interpreter computing, for every virtual register at every block
//! entry, a *product* abstraction of
//!
//! * an **integer interval** (`i64` bounds on the `i32` value),
//! * a **float envelope** — the finiteness domain of the analysis
//!   refined to an outward-rounded `f64` interval plus a may-be-NaN
//!   flag, and
//! * a **definedness (poison) bit** — `true` means the register
//!   provably carries a written value on every path, mirroring the
//!   `reg_def` bits of [`warp_target::exec`].
//!
//! The fixpoint uses widening after [`WIDEN_AFTER`] joins per block
//! (changed bounds jump to the type extreme) followed by
//! [`NARROW_PASSES`] truncated narrowing sweeps, with integer
//! branch-condition refinement on CFG edges. Array contents are
//! summarized flow-insensitively as one value hull per array
//! (data memory starts zero-filled and defined, so hulls start at
//! exactly zero and grow with every store).
//!
//! The result is a machine-checkable [`FactSet`] — per-site
//! no-trap claims, infeasible branch edges, loop trip bounds,
//! whole-function trap-freedom summaries — plus a list of proposed
//! [`Rewrite`]s that `opt::apply_facts` turns into code improvements
//! with bit-identical execution. Every claim is phrased so the
//! concrete oracles (the strict interpreter, `BatchInterp`, and the
//! IR evaluator in [`crate::eval`]) can falsify it: an unsound fact
//! is a test failure, never a silent miscompile.
//!
//! Soundness notes on the two subtle corners:
//!
//! * Float transfer functions compute corner cases in `f64` and then
//!   widen each bound outward by two `f32` ulps, so the envelope
//!   always contains every achievable `f32` result even though the
//!   analysis does not model the rounding mode exactly.
//! * A register whose definedness bit is `false` gets the full range
//!   of its type: after register allocation an undefined virtual
//!   register may alias any physical register, so no numeric claim
//!   about it survives to machine level.

use crate::ir::{FuncIr, Inst, IrBinOp, IrType, IrUnOp, Term, Val, VirtReg};
use serde::{Deserialize, Serialize};
use warp_target::isa::CmpKind;

/// Joins per block before widening kicks in.
pub const WIDEN_AFTER: u32 = 3;
/// Truncated narrowing sweeps after the widened fixpoint stabilizes.
pub const NARROW_PASSES: usize = 2;

// ---------------------------------------------------------------------------
// Integer intervals
// ---------------------------------------------------------------------------

/// Inclusive interval of `i32` values, held as `i64` so refinement
/// arithmetic never overflows. `lo > hi` encodes the empty interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntItv {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl IntItv {
    /// Every `i32` value.
    pub const FULL: IntItv = IntItv {
        lo: i32::MIN as i64,
        hi: i32::MAX as i64,
    };
    /// No value (an infeasible path).
    pub const EMPTY: IntItv = IntItv { lo: 1, hi: 0 };

    /// The single value `v`.
    pub fn exact(v: i64) -> IntItv {
        IntItv { lo: v, hi: v }
    }

    /// `true` if no concrete value is contained.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// `true` if `v` is contained.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of contained values (saturating).
    pub fn width(self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi - self.lo) as u64 + 1
        }
    }

    fn join(self, o: IntItv) -> IntItv {
        if self.is_empty() {
            o
        } else if o.is_empty() {
            self
        } else {
            IntItv {
                lo: self.lo.min(o.lo),
                hi: self.hi.max(o.hi),
            }
        }
    }

    fn meet(self, o: IntItv) -> IntItv {
        IntItv {
            lo: self.lo.max(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    fn clamp32(lo: i64, hi: i64) -> IntItv {
        if lo < i32::MIN as i64 || hi > i32::MAX as i64 {
            IntItv::FULL
        } else {
            IntItv { lo, hi }
        }
    }
}

// ---------------------------------------------------------------------------
// Float envelopes
// ---------------------------------------------------------------------------

/// Sound envelope of an `f32` value: `f64` bounds (always kept as a
/// non-empty superset) plus a may-be-NaN flag. Finiteness — the fact
/// the analysis actually reports — is `!nan && lo > -inf && hi < inf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FltItv {
    /// Lower bound (inclusive, may be `-inf`).
    pub lo: f64,
    /// Upper bound (inclusive, may be `+inf`).
    pub hi: f64,
    /// Whether the value may be NaN.
    pub nan: bool,
}

impl FltItv {
    /// Any float, NaN included.
    pub const FULL: FltItv = FltItv {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        nan: true,
    };

    /// The single value `v` (a NaN constant becomes the pure-NaN
    /// envelope around zero).
    pub fn exact(v: f32) -> FltItv {
        if v.is_nan() {
            FltItv {
                lo: 0.0,
                hi: 0.0,
                nan: true,
            }
        } else {
            FltItv {
                lo: v as f64,
                hi: v as f64,
                nan: false,
            }
        }
    }

    /// `true` if every contained value is a finite non-NaN float.
    pub fn finite(self) -> bool {
        !self.nan && self.lo.is_finite() && self.hi.is_finite()
    }

    fn may_be_inf(self) -> bool {
        self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY
    }

    fn contains_zero(self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    fn join(self, o: FltItv) -> FltItv {
        FltItv {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            nan: self.nan || o.nan,
        }
    }

    fn widen_from(self, prev: FltItv) -> FltItv {
        FltItv {
            lo: if self.lo < prev.lo {
                f64::NEG_INFINITY
            } else {
                self.lo
            },
            hi: if self.hi > prev.hi {
                f64::INFINITY
            } else {
                self.hi
            },
            nan: self.nan,
        }
    }
}

/// The next `f32` below `f`, as the ±0 / infinity-preserving bit walk.
fn f32_next_down(f: f32) -> f32 {
    if f.is_nan() || f == f32::NEG_INFINITY {
        return f;
    }
    let bits = f.to_bits();
    let next = if bits == 0 {
        0x8000_0001 // +0.0 -> smallest negative subnormal
    } else if bits >> 31 == 0 {
        bits - 1
    } else {
        bits + 1
    };
    f32::from_bits(next)
}

fn f32_next_up(f: f32) -> f32 {
    if f.is_nan() || f == f32::INFINITY {
        return f;
    }
    let bits = f.to_bits();
    let next = if bits == 0x8000_0000 {
        1 // -0.0 -> smallest positive subnormal
    } else if bits >> 31 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f32::from_bits(next)
}

/// Widen an `f64` corner value downward past the nearest `f32`: the
/// result is `<=` every `f32` that any concrete evaluation within the
/// corner's envelope can round to.
fn env_lo(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NEG_INFINITY;
    }
    let f = x as f32; // round to nearest
    let f = if (f as f64) > x { f32_next_down(f) } else { f };
    f32_next_down(f) as f64
}

/// Mirror of [`env_lo`] for upper bounds.
fn env_hi(x: f64) -> f64 {
    if x.is_nan() {
        return f64::INFINITY;
    }
    let f = x as f32;
    let f = if (f as f64) < x { f32_next_up(f) } else { f };
    f32_next_up(f) as f64
}

fn env(lo: f64, hi: f64, nan: bool) -> FltItv {
    let (mut lo, mut hi) = (env_lo(lo), env_hi(hi));
    if lo > hi {
        // Pure-NaN or inconsistent corner set: keep a non-empty
        // superset so interval arithmetic never sees an empty range.
        lo = f64::NEG_INFINITY;
        hi = f64::INFINITY;
    }
    FltItv { lo, hi, nan }
}

// ---------------------------------------------------------------------------
// Abstract values and states
// ---------------------------------------------------------------------------

/// The numeric component of the product domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsNum {
    /// Integer interval.
    Int(IntItv),
    /// Float envelope.
    Flt(FltItv),
}

/// One register's abstraction: numeric range × definedness bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsVal {
    /// Numeric component.
    pub num: AbsNum,
    /// `true` when the register is provably defined here.
    pub def: bool,
}

impl AbsVal {
    /// The full range of `ty`, with the given definedness.
    pub fn top(ty: IrType, def: bool) -> AbsVal {
        let num = match ty {
            IrType::Int => AbsNum::Int(IntItv::FULL),
            IrType::Float => AbsNum::Flt(FltItv::FULL),
        };
        AbsVal { num, def }
    }

    fn join(self, o: AbsVal) -> AbsVal {
        let num = match (self.num, o.num) {
            (AbsNum::Int(a), AbsNum::Int(b)) => AbsNum::Int(a.join(b)),
            (AbsNum::Flt(a), AbsNum::Flt(b)) => AbsNum::Flt(a.join(b)),
            // A type mismatch can only come from ill-typed IR; give up
            // soundly on the register.
            (AbsNum::Int(_), _) => AbsNum::Int(IntItv::FULL),
            (AbsNum::Flt(_), _) => AbsNum::Flt(FltItv::FULL),
        };
        AbsVal {
            num,
            def: self.def && o.def,
        }
    }
}

/// Threshold widening: a bound that moved since the previous state
/// jumps to the nearest program constant beyond it (then to the type
/// extreme), so loop bounds converge without a full descent.
fn widen_val(j: AbsVal, prev: AbsVal, thresholds: &[i64]) -> AbsVal {
    let num = match (j.num, prev.num) {
        (AbsNum::Int(a), AbsNum::Int(p)) => {
            if p.is_empty() || a.is_empty() {
                AbsNum::Int(a)
            } else {
                let lo = if a.lo < p.lo {
                    thresholds
                        .iter()
                        .rev()
                        .find(|&&t| t <= a.lo)
                        .copied()
                        .unwrap_or(IntItv::FULL.lo)
                        .max(IntItv::FULL.lo)
                } else {
                    a.lo
                };
                let hi = if a.hi > p.hi {
                    thresholds
                        .iter()
                        .find(|&&t| t >= a.hi)
                        .copied()
                        .unwrap_or(IntItv::FULL.hi)
                        .min(IntItv::FULL.hi)
                } else {
                    a.hi
                };
                AbsNum::Int(IntItv { lo, hi })
            }
        }
        (AbsNum::Flt(a), AbsNum::Flt(p)) => AbsNum::Flt(a.widen_from(p)),
        (n, _) => n,
    };
    AbsVal { num, def: j.def }
}

/// Per-block-entry register state. `None` in the analysis tables
/// means the block is unreachable so far.
type State = Vec<AbsVal>;

// ---------------------------------------------------------------------------
// Facts
// ---------------------------------------------------------------------------

/// A program point: instruction `inst` of block `block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    /// Block index.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: u32,
}

/// A branch edge proven infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadEdge {
    /// Block whose terminator is the branch.
    pub block: u32,
    /// `true`: the then-edge is always taken (else-edge dead);
    /// `false`: the else-edge is always taken.
    pub always_then: bool,
}

/// An upper bound on consecutive executions of a self-loop block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopBound {
    /// The single-block loop's header (and body).
    pub block: u32,
    /// The body runs at most this many consecutive times per entry.
    pub max_trips: u64,
}

/// Machine-readable facts about one function, every one of which the
/// concrete engines can check. Counts are split *sites* / *safe* so a
/// report can show proof coverage; the whole-function booleans are
/// the claims the fuzzing oracle holds against observed faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FactSet {
    /// Worklist iterations spent (block transfers, all passes).
    pub iterations: usize,
    /// Integer division/modulo sites (the only div-trap sites).
    pub div_sites: u32,
    /// Division sites proven free of `DivisionByZero` and undefined
    /// divisors.
    pub div_safe: u32,
    /// Load/store sites.
    pub mem_sites: u32,
    /// Memory sites proven in-bounds with a defined address.
    pub mem_safe: u32,
    /// Points that *consume* a value (divisors, addresses, branch
    /// conditions, sent values, returns) and so fault on poison.
    pub consume_sites: u32,
    /// Consumption points with a provably defined operand.
    pub consume_safe: u32,
    /// No execution of this function's code raises `DivisionByZero`.
    pub div_trap_free: bool,
    /// No execution raises `MemOutOfBounds`.
    pub mem_trap_free: bool,
    /// No execution raises `UninitializedRead`.
    pub def_free: bool,
    /// The function returns a float that is always finite non-NaN.
    pub finite_return: bool,
    /// Division sites individually proven safe.
    pub safe_divs: Vec<Site>,
    /// Memory sites individually proven safe.
    pub safe_mems: Vec<Site>,
    /// Branch edges proven infeasible.
    pub dead_edges: Vec<DeadEdge>,
    /// Self-loop trip bounds.
    pub loop_bounds: Vec<LoopBound>,
}

impl FactSet {
    /// Total number of individually checkable claims carried.
    pub fn claim_count(&self) -> usize {
        self.safe_divs.len()
            + self.safe_mems.len()
            + self.dead_edges.len()
            + self.loop_bounds.len()
            + usize::from(self.div_trap_free)
            + usize::from(self.mem_trap_free)
            + usize::from(self.def_free)
            + usize::from(self.finite_return)
    }
}

/// A semantics-preserving transformation the facts license.
/// `opt::apply_facts` performs these; each is only proposed when the
/// involved operands are provably *defined*, so the rewritten code is
/// bit-identical under both strict and speculative execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rewrite {
    /// The branch condition is provably nonzero: the else-edge is
    /// infeasible and the terminator can become `Jump(then)`.
    PruneElse {
        /// Branching block.
        block: u32,
    },
    /// The branch condition is provably zero: prune the then-edge.
    PruneThen {
        /// Branching block.
        block: u32,
    },
    /// `dst := a mod c` with `a ∈ [0, c-1]`: the (trap-checked)
    /// modulo is the identity, rewrite to `dst := a`.
    ModIdentity {
        /// Block index.
        block: u32,
        /// Instruction index.
        inst: u32,
    },
    /// `dst := a idiv c` with `a ∈ [0, c-1]`: the quotient is zero.
    DivToZero {
        /// Block index.
        block: u32,
        /// Instruction index.
        inst: u32,
    },
}

/// Analysis result: the fact set plus the rewrites it licenses.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Proven facts.
    pub facts: FactSet,
    /// Licensed rewrites for `opt::apply_facts`.
    pub rewrites: Vec<Rewrite>,
}

// ---------------------------------------------------------------------------
// Operand evaluation
// ---------------------------------------------------------------------------

fn reg_val(st: &State, r: VirtReg) -> AbsVal {
    st[r.0 as usize]
}

/// Integer view of a value, mirroring `Value::as_i` (floats truncate
/// with saturation; NaN becomes 0).
fn val_int(f: &FuncIr, st: &State, v: Val) -> (IntItv, bool) {
    match v {
        Val::ConstI(k) => (IntItv::exact(k as i64), true),
        Val::ConstF(c) => (IntItv::exact((c as i32) as i64), true),
        Val::Reg(r) => {
            let av = reg_val(st, r);
            let itv = match av.num {
                AbsNum::Int(i) => i,
                AbsNum::Flt(fl) => ftoi_itv(fl),
            };
            let _ = f;
            (if av.def { itv } else { IntItv::FULL }, av.def)
        }
    }
}

/// Float view of a value, mirroring `Value::as_f`.
fn val_flt(f: &FuncIr, st: &State, v: Val) -> (FltItv, bool) {
    match v {
        Val::ConstI(k) => (FltItv::exact(k as f32), true),
        Val::ConstF(c) => (FltItv::exact(c), true),
        Val::Reg(r) => {
            let av = reg_val(st, r);
            let itv = match av.num {
                AbsNum::Flt(fl) => fl,
                AbsNum::Int(i) => itof_itv(i),
            };
            let _ = f;
            (if av.def { itv } else { FltItv::FULL }, av.def)
        }
    }
}

/// `i32 as f32` over an interval (monotone, so corners suffice).
fn itof_itv(i: IntItv) -> FltItv {
    if i.is_empty() {
        return FltItv::FULL;
    }
    env(i.lo as f64, i.hi as f64, false)
}

/// `f32 as i32` (saturating trunc, NaN → 0) over an envelope.
fn ftoi_itv(fl: FltItv) -> IntItv {
    let sat = |x: f64| -> i64 {
        if x.is_nan() {
            0
        } else if x <= i32::MIN as f64 {
            i32::MIN as i64
        } else if x >= i32::MAX as f64 {
            i32::MAX as i64
        } else {
            x.trunc() as i64
        }
    };
    let mut lo = sat(fl.lo);
    let mut hi = sat(fl.hi);
    if fl.nan {
        lo = lo.min(0);
        hi = hi.max(0);
    }
    IntItv { lo, hi }
}

/// `f32.floor() as i32` over an envelope.
fn floor_itv(fl: FltItv) -> IntItv {
    let sat = |x: f64| -> i64 {
        if x.is_nan() {
            0
        } else if x <= i32::MIN as f64 {
            i32::MIN as i64
        } else if x >= i32::MAX as f64 {
            i32::MAX as i64
        } else {
            x.floor() as i64
        }
    };
    // floor can undershoot the f64 corner by one: pad the low end.
    let mut lo = sat(fl.lo).saturating_sub(1).max(i32::MIN as i64);
    let mut hi = sat(fl.hi);
    if fl.nan {
        lo = lo.min(0);
        hi = hi.max(0);
    }
    IntItv { lo, hi }
}

// ---------------------------------------------------------------------------
// Transfer functions
// ---------------------------------------------------------------------------

fn bin_int(op: IrBinOp, a: IntItv, b: IntItv) -> IntItv {
    if a.is_empty() || b.is_empty() {
        return IntItv::EMPTY;
    }
    match op {
        IrBinOp::Add => IntItv::clamp32(a.lo + b.lo, a.hi + b.hi),
        IrBinOp::Sub => IntItv::clamp32(a.lo - b.hi, a.hi - b.lo),
        IrBinOp::Mul => {
            let cs = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            IntItv::clamp32(*cs.iter().min().unwrap(), *cs.iter().max().unwrap())
        }
        IrBinOp::IDiv => idiv_itv(a, b),
        IrBinOp::Mod => imod_itv(a, b),
        IrBinOp::Min => IntItv {
            lo: a.lo.min(b.lo),
            hi: a.hi.min(b.hi),
        },
        IrBinOp::Max => IntItv {
            lo: a.lo.max(b.lo),
            hi: a.hi.max(b.hi),
        },
        IrBinOp::And | IrBinOp::Or => IntItv { lo: 0, hi: 1 },
        // `Div` on an Int-typed Bin cannot be produced by lowering;
        // stay sound anyway.
        IrBinOp::Div => IntItv::FULL,
    }
}

/// Quotient interval of `a idiv b` over the non-zero part of `b`
/// (the zero part traps and produces no value).
fn idiv_itv(a: IntItv, b: IntItv) -> IntItv {
    // i32::MIN / -1 wraps: give up on the whole range.
    if a.contains(i32::MIN as i64) && b.contains(-1) {
        return IntItv::FULL;
    }
    let mut out = IntItv::EMPTY;
    let parts = [
        IntItv {
            lo: b.lo,
            hi: b.hi.min(-1),
        }, // negative divisors
        IntItv {
            lo: b.lo.max(1),
            hi: b.hi,
        }, // positive divisors
    ];
    for p in parts {
        if p.is_empty() {
            continue;
        }
        let cs = [a.lo / p.lo, a.lo / p.hi, a.hi / p.lo, a.hi / p.hi];
        out = out.join(IntItv {
            lo: *cs.iter().min().unwrap(),
            hi: *cs.iter().max().unwrap(),
        });
    }
    if out.is_empty() {
        IntItv::FULL
    } else {
        out
    }
}

/// Remainder interval of `a mod b` (sign follows the dividend).
fn imod_itv(a: IntItv, b: IntItv) -> IntItv {
    // Largest |divisor| minus one bounds the magnitude; i32::MIN as a
    // divisor still bounds |rem| by i32::MAX.
    let m =
        b.lo.unsigned_abs()
            .max(b.hi.unsigned_abs())
            .min(i32::MAX as u64 + 1) as i64;
    if m == 0 {
        // Divisor is exactly zero: always traps, no value produced.
        return IntItv::EMPTY;
    }
    let mag = m - 1;
    let lo = if a.lo >= 0 { 0 } else { (-mag).max(a.lo) };
    let hi = if a.hi <= 0 { 0 } else { mag.min(a.hi) };
    IntItv { lo, hi }
}

fn cmp_int(kind: CmpKind, a: IntItv, b: IntItv) -> IntItv {
    if a.is_empty() || b.is_empty() {
        return IntItv::EMPTY;
    }
    let (always, never) = match kind {
        CmpKind::Lt => (a.hi < b.lo, a.lo >= b.hi),
        CmpKind::Le => (a.hi <= b.lo, a.lo > b.hi),
        CmpKind::Gt => (a.lo > b.hi, a.hi <= b.lo),
        CmpKind::Ge => (a.lo >= b.hi, a.hi < b.lo),
        CmpKind::Eq => (
            a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
            a.hi < b.lo || b.hi < a.lo,
        ),
        CmpKind::Ne => (
            a.hi < b.lo || b.hi < a.lo,
            a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
        ),
    };
    bool_itv(always, never)
}

fn cmp_flt(kind: CmpKind, a: FltItv, b: FltItv) -> IntItv {
    let (mut always, mut never) = match kind {
        CmpKind::Lt => (a.hi < b.lo, a.lo >= b.hi),
        CmpKind::Le => (a.hi <= b.lo, a.lo > b.hi),
        CmpKind::Gt => (a.lo > b.hi, a.hi <= b.lo),
        CmpKind::Ge => (a.lo >= b.hi, a.hi < b.lo),
        CmpKind::Eq => (
            a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
            a.hi < b.lo || b.hi < a.lo,
        ),
        CmpKind::Ne => (
            a.hi < b.lo || b.hi < a.lo,
            a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
        ),
    };
    // NaN operands make every comparison false except Ne, which is true.
    if a.nan || b.nan {
        if kind == CmpKind::Ne {
            never = false;
        } else {
            always = false;
        }
    }
    bool_itv(always, never)
}

fn bool_itv(always: bool, never: bool) -> IntItv {
    match (always, never) {
        (true, false) => IntItv::exact(1),
        (false, true) => IntItv::exact(0),
        _ => IntItv { lo: 0, hi: 1 },
    }
}

fn bin_flt(op: IrBinOp, a: FltItv, b: FltItv) -> FltItv {
    let nan_in = a.nan || b.nan;
    match op {
        IrBinOp::Add => {
            let nan = nan_in
                || (a.hi == f64::INFINITY && b.lo == f64::NEG_INFINITY)
                || (a.lo == f64::NEG_INFINITY && b.hi == f64::INFINITY);
            env(a.lo + b.lo, a.hi + b.hi, nan)
        }
        IrBinOp::Sub => {
            let nan = nan_in
                || (a.hi == f64::INFINITY && b.hi == f64::INFINITY)
                || (a.lo == f64::NEG_INFINITY && b.lo == f64::NEG_INFINITY);
            env(a.lo - b.hi, a.hi - b.lo, nan)
        }
        IrBinOp::Mul => {
            let nan = nan_in
                || (a.contains_zero() && b.may_be_inf())
                || (b.contains_zero() && a.may_be_inf());
            let cs = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            let lo = cs.iter().copied().fold(f64::INFINITY, fold_min);
            let hi = cs.iter().copied().fold(f64::NEG_INFINITY, fold_max);
            env(lo, hi, nan)
        }
        IrBinOp::Div => {
            let nan = nan_in
                || (a.contains_zero() && b.contains_zero())
                || (a.may_be_inf() && b.may_be_inf());
            if b.contains_zero() {
                return FltItv {
                    lo: f64::NEG_INFINITY,
                    hi: f64::INFINITY,
                    nan,
                };
            }
            let cs = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
            let lo = cs.iter().copied().fold(f64::INFINITY, fold_min);
            let hi = cs.iter().copied().fold(f64::NEG_INFINITY, fold_max);
            env(lo, hi, nan)
        }
        IrBinOp::Min => {
            // f32::min ignores a single NaN and returns the other arm.
            let mut hi = a.hi.min(b.hi);
            if a.nan {
                hi = hi.max(b.hi);
            }
            if b.nan {
                hi = hi.max(a.hi);
            }
            FltItv {
                lo: a.lo.min(b.lo),
                hi,
                nan: a.nan && b.nan,
            }
        }
        IrBinOp::Max => {
            let mut lo = a.lo.max(b.lo);
            if a.nan {
                lo = lo.min(b.lo);
            }
            if b.nan {
                lo = lo.min(a.lo);
            }
            FltItv {
                lo,
                hi: a.hi.max(b.hi),
                nan: a.nan && b.nan,
            }
        }
        // Boolean and integer ops on a Float-typed Bin cannot be
        // produced by lowering; stay sound.
        _ => FltItv::FULL,
    }
}

fn fold_min(acc: f64, x: f64) -> f64 {
    if x.is_nan() {
        f64::NEG_INFINITY
    } else {
        acc.min(x)
    }
}

fn fold_max(acc: f64, x: f64) -> f64 {
    if x.is_nan() {
        f64::INFINITY
    } else {
        acc.max(x)
    }
}

fn un_flt(op: IrUnOp, a: FltItv) -> FltItv {
    match op {
        IrUnOp::Neg => FltItv {
            lo: -a.hi,
            hi: -a.lo,
            nan: a.nan,
        },
        IrUnOp::Abs => {
            if a.lo >= 0.0 {
                a
            } else if a.hi <= 0.0 {
                FltItv {
                    lo: -a.hi,
                    hi: -a.lo,
                    nan: a.nan,
                }
            } else {
                FltItv {
                    lo: 0.0,
                    hi: (-a.lo).max(a.hi),
                    nan: a.nan,
                }
            }
        }
        IrUnOp::Sqrt => {
            let nan = a.nan || a.lo < 0.0;
            env((a.lo.max(0.0)).sqrt(), (a.hi.max(0.0)).sqrt(), nan)
        }
        IrUnOp::Sin | IrUnOp::Cos => FltItv {
            lo: -1.0,
            hi: 1.0,
            nan: a.nan || a.may_be_inf(),
        },
        IrUnOp::Exp => env(a.lo.exp(), a.hi.exp(), a.nan),
        IrUnOp::Log => {
            let nan = a.nan || a.lo < 0.0;
            env((a.lo.max(0.0)).ln(), (a.hi.max(0.0)).ln(), nan)
        }
        _ => FltItv::FULL,
    }
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

struct Analyzer<'a> {
    f: &'a FuncIr,
    in_states: Vec<Option<State>>,
    hulls: Vec<AbsVal>,
    hulls_grew: bool,
    has_calls: bool,
    visits: Vec<u32>,
    iterations: usize,
    /// Sorted threshold set for widening: the function's integer
    /// constants (±1), so loop bounds are guessed before the bound
    /// jumps to the type extreme.
    thresholds: Vec<i64>,
}

fn collect_thresholds(f: &FuncIr) -> Vec<i64> {
    let mut t = vec![-1, 0, 1];
    let mut push = |v: Val| {
        if let Val::ConstI(k) = v {
            t.extend([k as i64 - 1, k as i64, k as i64 + 1]);
        }
    };
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    push(*a);
                    push(*b);
                }
                Inst::Un { a, .. } => push(*a),
                Inst::Copy { src, .. } => push(*src),
                Inst::Load { index, .. } => push(*index),
                Inst::Store { index, value, .. } => {
                    push(*index);
                    push(*value);
                }
                _ => {}
            }
        }
    }
    t.sort_unstable();
    t.dedup();
    t
}

/// Hard cap on block transfers; reaching it abandons the analysis
/// with an empty fact set (sound: nothing is claimed).
fn transfer_budget(f: &FuncIr) -> usize {
    64 * f.blocks.len().max(1) + 512
}

/// Runs the analysis on `f` and returns the proven facts plus the
/// rewrites they license. Never fails: an over-budget or degenerate
/// function simply yields an empty fact set.
pub fn analyze(f: &FuncIr) -> Analysis {
    let nregs = f.vreg_types.len();
    let has_calls = f
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. })));
    let hulls = f
        .arrays
        .iter()
        .map(|a| {
            if has_calls {
                // Cross-function memory effects are out of scope: any
                // call clobbers every hull.
                AbsVal::top(a.ty, false)
            } else {
                // Data memory starts zero-filled and defined.
                let num = match a.ty {
                    IrType::Int => AbsNum::Int(IntItv::exact(0)),
                    IrType::Float => AbsNum::Flt(FltItv::exact(0.0)),
                };
                AbsVal { num, def: true }
            }
        })
        .collect();

    let mut entry: State = Vec::with_capacity(nregs);
    for (i, &ty) in f.vreg_types.iter().enumerate() {
        let is_param = f.params.iter().any(|&(r, _)| r.0 as usize == i);
        // An undefined virtual register may alias any physical
        // register after allocation: full range, undefined.
        entry.push(AbsVal::top(ty, is_param));
    }

    let mut az = Analyzer {
        f,
        in_states: vec![None; f.blocks.len()],
        hulls,
        hulls_grew: false,
        has_calls,
        visits: vec![0; f.blocks.len()],
        iterations: 0,
        thresholds: collect_thresholds(f),
    };
    az.in_states[0] = Some(entry);

    let budget = transfer_budget(f);
    if !az.fixpoint(budget) {
        return Analysis {
            facts: FactSet {
                iterations: az.iterations,
                ..FactSet::default()
            },
            rewrites: Vec::new(),
        };
    }
    az.narrow();
    let (mut facts, rewrites) = az.collect_facts();
    facts.iterations = az.iterations;
    Analysis { facts, rewrites }
}

impl<'a> Analyzer<'a> {
    /// Widened worklist fixpoint, re-seeded while array hulls grow.
    /// Returns `false` on budget exhaustion.
    fn fixpoint(&mut self, budget: usize) -> bool {
        for _hull_round in 0..6 {
            let mut work: Vec<usize> = vec![0];
            let mut queued = vec![false; self.f.blocks.len()];
            queued[0] = true;
            // Re-seed every reachable block: a hull change can affect
            // any load anywhere.
            for (b, q) in queued.iter_mut().enumerate().skip(1) {
                if self.in_states[b].is_some() {
                    work.push(b);
                    *q = true;
                }
            }
            self.hulls_grew = false;
            while let Some(b) = work.pop() {
                queued[b] = false;
                self.iterations += 1;
                if self.iterations > budget {
                    return false;
                }
                let in_state = match &self.in_states[b] {
                    Some(s) => s.clone(),
                    None => continue,
                };
                let out = self.transfer_block(b, in_state);
                for (succ, edge_state) in self.successor_states(b, &out) {
                    let Some(edge_state) = edge_state else {
                        continue;
                    };
                    let changed = match &mut self.in_states[succ] {
                        slot @ None => {
                            *slot = Some(edge_state);
                            true
                        }
                        Some(cur) => {
                            let mut joined: State = cur
                                .iter()
                                .zip(&edge_state)
                                .map(|(c, n)| c.join(*n))
                                .collect();
                            if joined != *cur {
                                self.visits[succ] += 1;
                                if self.visits[succ] > WIDEN_AFTER {
                                    joined = joined
                                        .iter()
                                        .zip(cur.iter())
                                        .map(|(j, c)| widen_val(*j, *c, &self.thresholds))
                                        .collect();
                                }
                                *cur = joined;
                                true
                            } else {
                                false
                            }
                        }
                    };
                    if changed && !queued[succ] {
                        queued[succ] = true;
                        work.push(succ);
                    }
                }
            }
            if !self.hulls_grew {
                return true;
            }
            // Hulls widen like registers: after a few growth rounds,
            // jump straight to top-of-type.
            if _hull_round >= 2 {
                for h in &mut self.hulls {
                    let ty = match h.num {
                        AbsNum::Int(_) => IrType::Int,
                        AbsNum::Flt(_) => IrType::Float,
                    };
                    *h = AbsVal::top(ty, h.def);
                }
            }
        }
        true
    }

    /// Truncated narrowing: recompute each reachable block's in-state
    /// from its predecessors and meet it into the current state.
    fn narrow(&mut self) {
        let n = self.f.blocks.len();
        for _ in 0..NARROW_PASSES {
            // Precompute refined out-states per edge.
            let mut incoming: Vec<Option<State>> = vec![None; n];
            incoming[0] = self.in_states[0].clone(); // entry keeps its state
            for b in 0..n {
                let Some(in_state) = self.in_states[b].clone() else {
                    continue;
                };
                self.iterations += 1;
                let out = self.transfer_block(b, in_state);
                for (succ, edge_state) in self.successor_states(b, &out) {
                    let Some(edge_state) = edge_state else {
                        continue;
                    };
                    incoming[succ] = Some(match incoming[succ].take() {
                        None => edge_state,
                        Some(cur) => cur
                            .iter()
                            .zip(&edge_state)
                            .map(|(c, e)| c.join(*e))
                            .collect(),
                    });
                }
            }
            for (b, inc) in incoming.iter_mut().enumerate() {
                match (&mut self.in_states[b], inc.take()) {
                    (Some(cur), Some(new)) => {
                        // x ← x ⊓ F(x): sound truncated narrowing.
                        let met: State = cur
                            .iter()
                            .zip(&new)
                            .map(|(c, e)| meet_val(*c, *e))
                            .collect();
                        *cur = met;
                    }
                    (slot @ Some(_), None) if b != 0 => *slot = None,
                    _ => {}
                }
            }
        }
    }

    /// Applies the block's instructions to `st`, updating hulls.
    fn transfer_block(&mut self, b: usize, mut st: State) -> State {
        // Split borrows: transfer_inst needs &FuncIr and &mut hulls.
        let f = self.f;
        let insts = &f.blocks[b].insts;
        for inst in insts {
            transfer_inst(
                f,
                &mut st,
                &mut self.hulls,
                &mut self.hulls_grew,
                self.has_calls,
                inst,
            );
        }
        st
    }

    /// Successor blocks with edge-refined states. `None` marks an
    /// edge proven infeasible.
    fn successor_states(&self, b: usize, out: &State) -> Vec<(usize, Option<State>)> {
        match &self.f.blocks[b].term {
            Term::Jump(t) => vec![(t.0 as usize, Some(out.clone()))],
            Term::Return(_) => vec![],
            Term::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let (citv, _) = val_int(self.f, out, *cond);
                // A decided condition, or a refinement that empties an
                // interval, proves the edge infeasible (`None`).
                let then_state = if citv == IntItv::exact(0) {
                    None
                } else {
                    refine_edge(self.f, out, b, *cond, true)
                };
                let else_state = if citv == IntItv::exact(1) {
                    None
                } else {
                    refine_edge(self.f, out, b, *cond, false)
                };
                vec![
                    (then_blk.0 as usize, then_state),
                    (else_blk.0 as usize, else_state),
                ]
            }
        }
    }

    /// Walks every reachable block once, recording facts and rewrites.
    fn collect_facts(&mut self) -> (FactSet, Vec<Rewrite>) {
        let f = self.f;
        let mut facts = FactSet::default();
        let mut rewrites = Vec::new();
        let mut all_returns_finite = f.ret == Some(IrType::Float);
        let mut saw_return = false;

        for (bi, block) in f.blocks.iter().enumerate() {
            let Some(in_state) = self.in_states[bi].clone() else {
                continue;
            };
            let mut st = in_state;
            for (ii, inst) in block.insts.iter().enumerate() {
                let site = Site {
                    block: bi as u32,
                    inst: ii as u32,
                };
                match inst {
                    Inst::Bin {
                        op: op @ (IrBinOp::IDiv | IrBinOp::Mod),
                        ty: IrType::Int,
                        a,
                        b,
                        ..
                    } => {
                        facts.div_sites += 1;
                        let (bd, bdef) = val_int(f, &st, *b);
                        let (ad, adef) = val_int(f, &st, *a);
                        facts.consume_sites += 1;
                        if bdef {
                            facts.consume_safe += 1;
                        }
                        if bdef && !bd.contains(0) && !bd.is_empty() {
                            facts.div_safe += 1;
                            facts.safe_divs.push(site);
                            // Identity rewrites additionally need a
                            // defined, range-proven dividend.
                            if let Val::ConstI(c) = *b {
                                if c > 0 && adef && ad.lo >= 0 && ad.hi < c as i64 {
                                    rewrites.push(match op {
                                        IrBinOp::Mod => Rewrite::ModIdentity {
                                            block: site.block,
                                            inst: site.inst,
                                        },
                                        _ => Rewrite::DivToZero {
                                            block: site.block,
                                            inst: site.inst,
                                        },
                                    });
                                }
                            }
                        }
                    }
                    Inst::Load { arr, index, .. } | Inst::Store { arr, index, .. } => {
                        facts.mem_sites += 1;
                        facts.consume_sites += 1;
                        let (idx, idef) = val_int(f, &st, *index);
                        if idef {
                            facts.consume_safe += 1;
                        }
                        let words = f.arrays[arr.0 as usize].words() as i64;
                        if idef && !idx.is_empty() && idx.lo >= 0 && idx.hi < words {
                            facts.mem_safe += 1;
                            facts.safe_mems.push(site);
                        }
                    }
                    Inst::Send { value, .. } => {
                        facts.consume_sites += 1;
                        let def = val_def(f, &st, *value);
                        if def {
                            facts.consume_safe += 1;
                        }
                    }
                    _ => {}
                }
                transfer_inst(
                    f,
                    &mut st,
                    &mut self.hulls,
                    &mut self.hulls_grew,
                    self.has_calls,
                    inst,
                );
            }
            match &block.term {
                Term::Branch { cond, .. } => {
                    facts.consume_sites += 1;
                    let (citv, cdef) = val_int(f, &st, *cond);
                    if cdef {
                        facts.consume_safe += 1;
                    }
                    if citv == IntItv::exact(1) {
                        facts.dead_edges.push(DeadEdge {
                            block: bi as u32,
                            always_then: true,
                        });
                        if cdef {
                            rewrites.push(Rewrite::PruneElse { block: bi as u32 });
                        }
                    } else if citv == IntItv::exact(0) {
                        facts.dead_edges.push(DeadEdge {
                            block: bi as u32,
                            always_then: false,
                        });
                        if cdef {
                            rewrites.push(Rewrite::PruneThen { block: bi as u32 });
                        }
                    }
                }
                Term::Return(Some(v)) => {
                    saw_return = true;
                    facts.consume_sites += 1;
                    let def = val_def(f, &st, *v);
                    if def {
                        facts.consume_safe += 1;
                    }
                    if f.ret == Some(IrType::Float) {
                        let (fv, fdef) = val_flt(f, &st, *v);
                        if !(fdef && fv.finite()) {
                            all_returns_finite = false;
                        }
                    }
                }
                _ => {}
            }
            // Self-loop trip bounds.
            if let Some(bound) = self.self_loop_bound(bi) {
                facts.loop_bounds.push(bound);
            }
        }

        facts.div_trap_free = facts.div_safe == facts.div_sites;
        facts.mem_trap_free = facts.mem_safe == facts.mem_sites;
        facts.def_free = facts.consume_safe == facts.consume_sites;
        facts.finite_return = saw_return && all_returns_finite;
        (facts, rewrites)
    }

    /// Trip bound for a single-block self loop: the block must step
    /// one integer register by a constant each iteration; the
    /// register's interval invariant then bounds consecutive runs.
    fn self_loop_bound(&self, bi: usize) -> Option<LoopBound> {
        let f = self.f;
        let block = &f.blocks[bi];
        let is_self = match &block.term {
            Term::Branch {
                then_blk, else_blk, ..
            } => then_blk.0 as usize == bi || else_blk.0 as usize == bi,
            _ => false,
        };
        if !is_self {
            return None;
        }
        let in_state = self.in_states[bi].as_ref()?;
        // Candidate counters: registers written exactly once in the
        // block, by `i := i ± const` (directly or through one copy of
        // a register itself written once by the step).
        let writes = |r: VirtReg| block.insts.iter().filter(|i| i.def() == Some(r)).count();
        let mut best: Option<u64> = None;
        for (pos, inst) in block.insts.iter().enumerate() {
            let (i_reg, step) = match inst {
                Inst::Bin {
                    op,
                    ty: IrType::Int,
                    dst,
                    a: Val::Reg(r),
                    b: Val::ConstI(s),
                    ..
                } if *r == *dst && matches!(op, IrBinOp::Add | IrBinOp::Sub) => {
                    let s = if *op == IrBinOp::Add {
                        *s as i64
                    } else {
                        -(*s as i64)
                    };
                    (*dst, s)
                }
                Inst::Bin {
                    op: IrBinOp::Add,
                    ty: IrType::Int,
                    dst,
                    a: Val::ConstI(s),
                    b: Val::Reg(r),
                    ..
                } if *r == *dst => (*dst, *s as i64),
                Inst::Copy {
                    dst,
                    src: Val::Reg(t),
                } => {
                    // i := t  where  t := i ± const  earlier in the block.
                    let mut found = None;
                    for prior in &block.insts[..pos] {
                        if let Inst::Bin {
                            op,
                            ty: IrType::Int,
                            dst: td,
                            a: Val::Reg(base),
                            b: Val::ConstI(s),
                            ..
                        } = prior
                        {
                            if td == t
                                && *base == *dst
                                && matches!(op, IrBinOp::Add | IrBinOp::Sub)
                                && writes(*t) == 1
                            {
                                let s = if *op == IrBinOp::Add {
                                    *s as i64
                                } else {
                                    -(*s as i64)
                                };
                                found = Some((*dst, s));
                            }
                        }
                    }
                    match found {
                        Some(x) => x,
                        None => continue,
                    }
                }
                _ => continue,
            };
            if step == 0 || writes(i_reg) != 1 {
                continue;
            }
            let AbsNum::Int(itv) = in_state[i_reg.0 as usize].num else {
                continue;
            };
            if itv.is_empty() {
                continue;
            }
            let w = itv.width();
            // Keep well clear of i32 wraparound re-entry.
            if w == 0 || w > (1u64 << 31) {
                continue;
            }
            let trips = (w - 1) / step.unsigned_abs() + 1;
            best = Some(best.map_or(trips, |b: u64| b.min(trips)));
        }
        best.map(|max_trips| LoopBound {
            block: bi as u32,
            max_trips,
        })
    }
}

fn meet_val(c: AbsVal, e: AbsVal) -> AbsVal {
    let num = match (c.num, e.num) {
        (AbsNum::Int(a), AbsNum::Int(b)) => {
            let m = a.meet(b);
            // Both inputs are sound supersets; an empty meet can only
            // mean the value never flows here, but keep the fresh
            // state so later arithmetic never sees inverted bounds.
            AbsNum::Int(if m.is_empty() && !a.is_empty() && !b.is_empty() {
                b
            } else {
                m
            })
        }
        (AbsNum::Flt(a), AbsNum::Flt(b)) => {
            let m = FltItv {
                lo: a.lo.max(b.lo),
                hi: a.hi.min(b.hi),
                nan: a.nan && b.nan,
            };
            AbsNum::Flt(if m.lo > m.hi { b } else { m })
        }
        (n, _) => n,
    };
    // Definedness is precise without widening; keep the fixpoint value.
    AbsVal { num, def: c.def }
}

fn val_def(f: &FuncIr, st: &State, v: Val) -> bool {
    let _ = f;
    match v {
        Val::Reg(r) => reg_val(st, r).def,
        _ => true,
    }
}

/// One instruction's abstract effect.
fn transfer_inst(
    f: &FuncIr,
    st: &mut State,
    hulls: &mut [AbsVal],
    hulls_grew: &mut bool,
    has_calls: bool,
    inst: &Inst,
) {
    match inst {
        Inst::Bin { op, ty, dst, a, b } => {
            let out = match ty {
                IrType::Int => {
                    let (ai, ad) = val_int(f, st, *a);
                    let (bi, bd) = val_int(f, st, *b);
                    AbsVal {
                        num: AbsNum::Int(bin_int(*op, ai, bi)),
                        def: ad && bd,
                    }
                }
                IrType::Float => {
                    let (af, ad) = val_flt(f, st, *a);
                    let (bf, bd) = val_flt(f, st, *b);
                    AbsVal {
                        num: AbsNum::Flt(bin_flt(*op, af, bf)),
                        def: ad && bd,
                    }
                }
            };
            set_reg(f, st, *dst, out);
        }
        Inst::Un { op, ty, dst, a } => {
            let out = match op {
                IrUnOp::ItoF => {
                    let (af, ad) = val_flt(f, st, *a);
                    AbsVal {
                        num: AbsNum::Flt(af),
                        def: ad,
                    }
                }
                IrUnOp::FtoI => {
                    let (ai, ad) = val_int(f, st, *a);
                    AbsVal {
                        num: AbsNum::Int(ai),
                        def: ad,
                    }
                }
                IrUnOp::Floor => {
                    let (af, ad) = val_flt(f, st, *a);
                    AbsVal {
                        num: AbsNum::Int(floor_itv(af)),
                        def: ad,
                    }
                }
                IrUnOp::Neg | IrUnOp::Abs => match ty {
                    IrType::Int => {
                        let (ai, ad) = val_int(f, st, *a);
                        let out = if *op == IrUnOp::Neg {
                            ineg_itv(ai)
                        } else {
                            iabs_itv(ai)
                        };
                        AbsVal {
                            num: AbsNum::Int(out),
                            def: ad,
                        }
                    }
                    IrType::Float => {
                        let (af, ad) = val_flt(f, st, *a);
                        let uop = if *op == IrUnOp::Neg {
                            IrUnOp::Neg
                        } else {
                            IrUnOp::Abs
                        };
                        AbsVal {
                            num: AbsNum::Flt(un_flt(uop, af)),
                            def: ad,
                        }
                    }
                },
                IrUnOp::Not => {
                    let (_, ad) = val_int(f, st, *a);
                    AbsVal {
                        num: AbsNum::Int(IntItv { lo: 0, hi: 1 }),
                        def: ad,
                    }
                }
                IrUnOp::Sqrt | IrUnOp::Sin | IrUnOp::Cos | IrUnOp::Exp | IrUnOp::Log => {
                    let (af, ad) = val_flt(f, st, *a);
                    AbsVal {
                        num: AbsNum::Flt(un_flt(*op, af)),
                        def: ad,
                    }
                }
            };
            set_reg(f, st, *dst, out);
        }
        Inst::Cmp {
            kind,
            ty,
            dst,
            a,
            b,
        } => {
            let (itv, def) = match ty {
                IrType::Int => {
                    let (ai, ad) = val_int(f, st, *a);
                    let (bi, bd) = val_int(f, st, *b);
                    (cmp_int(*kind, ai, bi), ad && bd)
                }
                IrType::Float => {
                    let (af, ad) = val_flt(f, st, *a);
                    let (bf, bd) = val_flt(f, st, *b);
                    (cmp_flt(*kind, af, bf), ad && bd)
                }
            };
            set_reg(
                f,
                st,
                *dst,
                AbsVal {
                    num: AbsNum::Int(itv),
                    def,
                },
            );
        }
        Inst::Copy { dst, src } => {
            let out = match f.vreg_types[dst.0 as usize] {
                IrType::Int => {
                    let (i, d) = val_int(f, st, *src);
                    AbsVal {
                        num: AbsNum::Int(i),
                        def: d,
                    }
                }
                IrType::Float => {
                    let (fl, d) = val_flt(f, st, *src);
                    AbsVal {
                        num: AbsNum::Flt(fl),
                        def: d,
                    }
                }
            };
            set_reg(f, st, *dst, out);
        }
        Inst::Load { dst, arr, .. } => {
            let hull = hulls[arr.0 as usize];
            // Coerce to the destination register's type view.
            let out = coerce(hull, f.vreg_types[dst.0 as usize]);
            set_reg(f, st, *dst, out);
        }
        Inst::Store { arr, value, ty, .. } => {
            let stored = match ty {
                IrType::Int => {
                    let (i, d) = val_int(f, st, *value);
                    AbsVal {
                        num: AbsNum::Int(i),
                        def: d,
                    }
                }
                IrType::Float => {
                    let (fl, d) = val_flt(f, st, *value);
                    AbsVal {
                        num: AbsNum::Flt(fl),
                        def: d,
                    }
                }
            };
            let cur = hulls[arr.0 as usize];
            let joined = cur.join(coerce(stored, hull_ty(cur)));
            if joined != cur {
                hulls[arr.0 as usize] = joined;
                *hulls_grew = true;
            }
        }
        Inst::Call { dst, .. } => {
            let _ = has_calls; // hulls already topped when calls exist
            if let Some(d) = dst {
                // Unknown callee result; conservatively maybe-undef.
                set_reg(f, st, *d, AbsVal::top(f.vreg_types[d.0 as usize], false));
            }
        }
        Inst::Send { .. } => {}
        Inst::Recv { dst, ty, .. } => {
            set_reg(f, st, *dst, AbsVal::top(*ty, true));
        }
        Inst::Select {
            dst,
            cond,
            then_v,
            ty,
        } => {
            let (citv, cdef) = val_int(f, st, *cond);
            let old = st[dst.0 as usize];
            let new = match ty {
                IrType::Int => {
                    let (i, d) = val_int(f, st, *then_v);
                    AbsVal {
                        num: AbsNum::Int(i),
                        def: d,
                    }
                }
                IrType::Float => {
                    let (fl, d) = val_flt(f, st, *then_v);
                    AbsVal {
                        num: AbsNum::Flt(fl),
                        def: d,
                    }
                }
            };
            let picked = if citv == IntItv::exact(0) {
                old
            } else if citv.is_empty() || !citv.contains(0) {
                new
            } else {
                old.join(new)
            };
            set_reg(
                f,
                st,
                *dst,
                AbsVal {
                    num: picked.num,
                    def: cdef && picked.def,
                },
            );
        }
    }
}

fn hull_ty(h: AbsVal) -> IrType {
    match h.num {
        AbsNum::Int(_) => IrType::Int,
        AbsNum::Flt(_) => IrType::Float,
    }
}

fn coerce(v: AbsVal, ty: IrType) -> AbsVal {
    let num = match (v.num, ty) {
        (AbsNum::Int(i), IrType::Int) => AbsNum::Int(i),
        (AbsNum::Flt(fl), IrType::Float) => AbsNum::Flt(fl),
        (AbsNum::Int(i), IrType::Float) => AbsNum::Flt(itof_itv(i)),
        (AbsNum::Flt(fl), IrType::Int) => AbsNum::Int(ftoi_itv(fl)),
    };
    AbsVal { num, def: v.def }
}

fn set_reg(f: &FuncIr, st: &mut State, r: VirtReg, v: AbsVal) {
    // Keep the register's declared type view.
    st[r.0 as usize] = coerce(v, f.vreg_types[r.0 as usize]);
}

fn ineg_itv(a: IntItv) -> IntItv {
    if a.is_empty() {
        return IntItv::EMPTY;
    }
    if a.contains(i32::MIN as i64) {
        return IntItv::FULL; // wrapping_neg(i32::MIN) == i32::MIN
    }
    IntItv {
        lo: -a.hi,
        hi: -a.lo,
    }
}

fn iabs_itv(a: IntItv) -> IntItv {
    if a.is_empty() {
        return IntItv::EMPTY;
    }
    if a.contains(i32::MIN as i64) {
        return IntItv::FULL; // wrapping_abs(i32::MIN) == i32::MIN
    }
    if a.lo >= 0 {
        a
    } else if a.hi <= 0 {
        IntItv {
            lo: -a.hi,
            hi: -a.lo,
        }
    } else {
        IntItv {
            lo: 0,
            hi: (-a.lo).max(a.hi),
        }
    }
}

// ---------------------------------------------------------------------------
// Edge refinement
// ---------------------------------------------------------------------------

/// State for the `taken`-edge out of branch block `b`. Returns `None`
/// when the refinement proves the edge infeasible.
fn refine_edge(f: &FuncIr, out: &State, b: usize, cond: Val, taken: bool) -> Option<State> {
    let mut st = out.clone();
    let Val::Reg(c) = cond else {
        // Constant condition: feasibility was already decided.
        return Some(st);
    };
    // The condition register itself is 0/1-valued on the edge when it
    // is an integer.
    if f.vreg_types[c.0 as usize] == IrType::Int {
        let cur = match st[c.0 as usize].num {
            AbsNum::Int(i) => i,
            AbsNum::Flt(_) => IntItv::FULL,
        };
        let refined = if taken {
            // nonzero: only trimmable at the 0 boundary.
            let mut r = cur;
            if r.lo == 0 {
                r.lo = 1;
            }
            if r.hi == 0 {
                r.hi = -1;
            }
            r
        } else {
            cur.meet(IntItv::exact(0))
        };
        if refined.is_empty() {
            return None;
        }
        st[c.0 as usize].num = AbsNum::Int(refined);
    }
    // Find the comparison defining `c` in this block, with no later
    // redefinition of `c` or its operands.
    let block = &f.blocks[b];
    let mut cmp: Option<(CmpKind, Val, Val)> = None;
    for (pos, inst) in block.insts.iter().enumerate() {
        if inst.def() == Some(c) {
            cmp = match inst {
                Inst::Cmp {
                    kind,
                    ty: IrType::Int,
                    a,
                    b: rhs,
                    ..
                } => {
                    // The comparison's operands must still hold their
                    // compared values at the branch.
                    let ops_stable = block.insts[pos + 1..]
                        .iter()
                        .all(|later| match later.def() {
                            None => true,
                            Some(d) => Some(d) != a.as_reg() && Some(d) != rhs.as_reg(),
                        });
                    if ops_stable {
                        Some((*kind, *a, *rhs))
                    } else {
                        None
                    }
                }
                _ => None,
            };
        }
    }
    if let Some((kind, a, rhs)) = cmp {
        let k = if taken { kind } else { negate(kind) };
        if !apply_cmp(f, &mut st, k, a, rhs) {
            return None;
        }
    }
    // A `dst := src` copy where neither side is redefined afterwards
    // means both registers hold the same value at the branch, so a
    // refinement of one transfers to the other (loop lowering ends
    // blocks with `i := i_next` right before the exit test — without
    // this the refined bound never reaches the induction variable).
    for (pos, inst) in block.insts.iter().enumerate() {
        let Inst::Copy {
            dst,
            src: Val::Reg(s),
        } = inst
        else {
            continue;
        };
        let stable = block.insts[pos + 1..]
            .iter()
            .all(|l| l.def() != Some(*dst) && l.def() != Some(*s));
        if !stable
            || f.vreg_types[dst.0 as usize] != IrType::Int
            || f.vreg_types[s.0 as usize] != IrType::Int
        {
            continue;
        }
        let (AbsNum::Int(di), AbsNum::Int(si)) = (st[dst.0 as usize].num, st[s.0 as usize].num)
        else {
            continue;
        };
        let m = di.meet(si);
        if m.is_empty() {
            // Both sides provably hold the same concrete value, so an
            // empty meet means no execution reaches this branch.
            return None;
        }
        st[dst.0 as usize].num = AbsNum::Int(m);
        st[s.0 as usize].num = AbsNum::Int(m);
    }
    Some(st)
}

fn negate(k: CmpKind) -> CmpKind {
    match k {
        CmpKind::Eq => CmpKind::Ne,
        CmpKind::Ne => CmpKind::Eq,
        CmpKind::Lt => CmpKind::Ge,
        CmpKind::Ge => CmpKind::Lt,
        CmpKind::Le => CmpKind::Gt,
        CmpKind::Gt => CmpKind::Le,
    }
}

/// Narrows register intervals so `a k rhs` holds. Returns `false`
/// when that is impossible (the edge is infeasible).
fn apply_cmp(f: &FuncIr, st: &mut State, k: CmpKind, a: Val, rhs: Val) -> bool {
    let (ai, _) = val_int(f, st, a);
    let (bi, _) = val_int(f, st, rhs);
    if ai.is_empty() || bi.is_empty() {
        return false;
    }
    // New bounds for each side.
    let (na, nb) = match k {
        CmpKind::Lt => (
            ai.meet(IntItv {
                lo: i64::MIN,
                hi: bi.hi - 1,
            }),
            bi.meet(IntItv {
                lo: ai.lo + 1,
                hi: i64::MAX,
            }),
        ),
        CmpKind::Le => (
            ai.meet(IntItv {
                lo: i64::MIN,
                hi: bi.hi,
            }),
            bi.meet(IntItv {
                lo: ai.lo,
                hi: i64::MAX,
            }),
        ),
        CmpKind::Gt => (
            ai.meet(IntItv {
                lo: bi.lo + 1,
                hi: i64::MAX,
            }),
            bi.meet(IntItv {
                lo: i64::MIN,
                hi: ai.hi - 1,
            }),
        ),
        CmpKind::Ge => (
            ai.meet(IntItv {
                lo: bi.lo,
                hi: i64::MAX,
            }),
            bi.meet(IntItv {
                lo: i64::MIN,
                hi: ai.hi,
            }),
        ),
        CmpKind::Eq => (ai.meet(bi), bi.meet(ai)),
        CmpKind::Ne => {
            let trim = |mut x: IntItv, y: IntItv| {
                if y.lo == y.hi {
                    if x.lo == y.lo {
                        x.lo += 1;
                    }
                    if x.hi == y.lo {
                        x.hi -= 1;
                    }
                }
                x
            };
            (trim(ai, bi), trim(bi, ai))
        }
    };
    if na.is_empty() || nb.is_empty() {
        return false;
    }
    // Only write back to integer registers whose view was integral.
    if let Val::Reg(r) = a {
        if f.vreg_types[r.0 as usize] == IrType::Int {
            st[r.0 as usize].num = AbsNum::Int(na);
        }
    }
    if let Val::Reg(r) = rhs {
        if f.vreg_types[r.0 as usize] == IrType::Int {
            st[r.0 as usize].num = AbsNum::Int(nb);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, BlockId};

    fn func_with(blocks: Vec<Block>, vreg_types: Vec<IrType>, ret: Option<IrType>) -> FuncIr {
        FuncIr {
            name: "t".into(),
            params: vec![],
            ret,
            blocks,
            arrays: vec![],
            vreg_types,
        }
    }

    #[test]
    fn interval_arith_soundness_spot_checks() {
        let a = IntItv { lo: -3, hi: 5 };
        let b = IntItv { lo: 2, hi: 4 };
        let m = bin_int(IrBinOp::Mul, a, b);
        for x in -3..=5i64 {
            for y in 2..=4i64 {
                assert!(m.contains(x * y), "{x}*{y} outside {m:?}");
            }
        }
        let d = bin_int(IrBinOp::IDiv, a, b);
        for x in -3..=5i64 {
            for y in 2..=4i64 {
                assert!(d.contains(x / y));
            }
        }
        let r = bin_int(IrBinOp::Mod, a, b);
        for x in -3..=5i64 {
            for y in 2..=4i64 {
                assert!(r.contains(x % y));
            }
        }
    }

    #[test]
    fn idiv_min_by_minus_one_goes_full() {
        let a = IntItv {
            lo: i32::MIN as i64,
            hi: i32::MIN as i64,
        };
        let b = IntItv::exact(-1);
        assert_eq!(bin_int(IrBinOp::IDiv, a, b), IntItv::FULL);
    }

    #[test]
    fn float_envelope_contains_f32_results() {
        let a = FltItv::exact(0.1);
        let b = FltItv::exact(0.2);
        let s = bin_flt(IrBinOp::Add, a, b);
        let concrete = 0.1f32 + 0.2f32;
        assert!(s.lo <= concrete as f64 && concrete as f64 <= s.hi);
        assert!(!s.nan);
        // Large but finite stays finite; overflow to inf is detected.
        let big = FltItv::exact(3.0e38);
        let sum = bin_flt(IrBinOp::Add, big, big);
        let concrete = 3.0e38f32 + 3.0e38f32;
        assert!(concrete.is_infinite());
        assert!(!sum.finite());
    }

    #[test]
    fn constant_branch_is_pruned_and_else_edge_reported_dead() {
        // b0: c := 0 <= 15; branch c -> b1 / b2 ; b1,b2: return 0
        let c = VirtReg(0);
        let blocks = vec![
            Block {
                insts: vec![Inst::Cmp {
                    kind: CmpKind::Le,
                    ty: IrType::Int,
                    dst: c,
                    a: Val::ConstI(0),
                    b: Val::ConstI(15),
                }],
                term: Term::Branch {
                    cond: Val::Reg(c),
                    then_blk: BlockId(1),
                    else_blk: BlockId(2),
                },
            },
            Block {
                insts: vec![],
                term: Term::Return(Some(Val::ConstI(0))),
            },
            Block {
                insts: vec![],
                term: Term::Return(Some(Val::ConstI(1))),
            },
        ];
        let f = func_with(blocks, vec![IrType::Int], Some(IrType::Int));
        let a = analyze(&f);
        assert_eq!(
            a.facts.dead_edges,
            vec![DeadEdge {
                block: 0,
                always_then: true
            }]
        );
        assert!(a.rewrites.contains(&Rewrite::PruneElse { block: 0 }));
        // The dead block is never analyzed, so its return does not
        // pollute facts.
        assert!(a.facts.def_free);
    }

    #[test]
    fn counting_loop_gets_interval_and_trip_bound() {
        // b0: i := 0 ; jump b1
        // b1: i := i + 1 ; c := i <= 15 ; branch c -> b1 / b2
        // b2: d := i mod 32 ; return d
        let i = VirtReg(0);
        let c = VirtReg(1);
        let d = VirtReg(2);
        let blocks = vec![
            Block {
                insts: vec![Inst::Copy {
                    dst: i,
                    src: Val::ConstI(0),
                }],
                term: Term::Jump(BlockId(1)),
            },
            Block {
                insts: vec![
                    Inst::Bin {
                        op: IrBinOp::Add,
                        ty: IrType::Int,
                        dst: i,
                        a: Val::Reg(i),
                        b: Val::ConstI(1),
                    },
                    Inst::Cmp {
                        kind: CmpKind::Le,
                        ty: IrType::Int,
                        dst: c,
                        a: Val::Reg(i),
                        b: Val::ConstI(15),
                    },
                ],
                term: Term::Branch {
                    cond: Val::Reg(c),
                    then_blk: BlockId(1),
                    else_blk: BlockId(2),
                },
            },
            Block {
                insts: vec![Inst::Bin {
                    op: IrBinOp::Mod,
                    ty: IrType::Int,
                    dst: d,
                    a: Val::Reg(i),
                    b: Val::ConstI(32),
                }],
                term: Term::Return(Some(Val::Reg(d))),
            },
        ];
        let f = func_with(blocks, vec![IrType::Int; 3], Some(IrType::Int));
        let a = analyze(&f);
        // Division is safe (constant divisor 32) and the dividend is
        // provably 16 at the exit, so the mod folds to the identity.
        assert_eq!(a.facts.div_safe, 1);
        assert!(
            a.rewrites
                .iter()
                .any(|r| matches!(r, Rewrite::ModIdentity { .. })),
            "rewrites: {:?}",
            a.rewrites
        );
        assert!(a.facts.div_trap_free);
        // Trip bound: i ∈ [0,16] at the header entry, step 1.
        let lb = a
            .facts
            .loop_bounds
            .iter()
            .find(|l| l.block == 1)
            .expect("loop bound");
        assert!(
            lb.max_trips >= 16 && lb.max_trips <= 18,
            "trips {}",
            lb.max_trips
        );
    }

    #[test]
    fn division_by_maybe_zero_is_not_claimed_safe() {
        // d := p mod q with both params unknown.
        let p = VirtReg(0);
        let q = VirtReg(1);
        let d = VirtReg(2);
        let blocks = vec![Block {
            insts: vec![Inst::Bin {
                op: IrBinOp::Mod,
                ty: IrType::Int,
                dst: d,
                a: Val::Reg(p),
                b: Val::Reg(q),
            }],
            term: Term::Return(Some(Val::Reg(d))),
        }];
        let mut f = func_with(blocks, vec![IrType::Int; 3], Some(IrType::Int));
        f.params = vec![(p, IrType::Int), (q, IrType::Int)];
        let a = analyze(&f);
        assert_eq!(a.facts.div_sites, 1);
        assert_eq!(a.facts.div_safe, 0);
        assert!(!a.facts.div_trap_free);
        assert!(a.rewrites.is_empty());
    }

    #[test]
    fn zero_init_float_compare_prunes_padding_diamond() {
        // t := 0.0 ; c := t > 0.7 ; branch c -> b1 / b2 — the then
        // edge is infeasible (t is exactly zero, no NaN).
        let t = VirtReg(0);
        let c = VirtReg(1);
        let blocks = vec![
            Block {
                insts: vec![
                    Inst::Copy {
                        dst: t,
                        src: Val::ConstF(0.0),
                    },
                    Inst::Cmp {
                        kind: CmpKind::Gt,
                        ty: IrType::Float,
                        dst: c,
                        a: Val::Reg(t),
                        b: Val::ConstF(0.7),
                    },
                ],
                term: Term::Branch {
                    cond: Val::Reg(c),
                    then_blk: BlockId(1),
                    else_blk: BlockId(2),
                },
            },
            Block {
                insts: vec![],
                term: Term::Return(Some(Val::ConstF(1.0))),
            },
            Block {
                insts: vec![],
                term: Term::Return(Some(Val::ConstF(2.0))),
            },
        ];
        let f = func_with(
            blocks,
            vec![IrType::Float, IrType::Int],
            Some(IrType::Float),
        );
        let a = analyze(&f);
        assert_eq!(
            a.facts.dead_edges,
            vec![DeadEdge {
                block: 0,
                always_then: false
            }]
        );
        assert!(a.rewrites.contains(&Rewrite::PruneThen { block: 0 }));
        assert!(a.facts.finite_return);
    }

    #[test]
    fn undefined_register_blocks_claims() {
        // Branch on a never-written register: consumption unsafe.
        let c = VirtReg(0);
        let blocks = vec![
            Block {
                insts: vec![],
                term: Term::Branch {
                    cond: Val::Reg(c),
                    then_blk: BlockId(1),
                    else_blk: BlockId(1),
                },
            },
            Block {
                insts: vec![],
                term: Term::Return(Some(Val::ConstI(0))),
            },
        ];
        let f = func_with(blocks, vec![IrType::Int], Some(IrType::Int));
        let a = analyze(&f);
        assert!(!a.facts.def_free);
        // No prune rewrite may fire on an undefined condition even if
        // its interval were to collapse.
        assert!(a.rewrites.is_empty());
    }
}
