//! A strict concrete evaluator for the mid-level IR — the reference
//! oracle for [`crate::absint`].
//!
//! The evaluator mirrors the machine semantics of
//! `warp_target::exec::compute` (wrapping `i32` arithmetic, `f32`
//! float operations, truncating/saturating coercions, poison
//! propagation with strict consumption faults) while keeping IR-level
//! coordinates: every trap carries the `(block, inst)` [`Site`] that
//! raised it, every branch edge and every consecutive self-loop run
//! is counted. That lets the fuzzing harness hold each per-site claim
//! of a [`FactSet`] against a concrete execution: a claimed-safe site
//! that traps, a claimed-dead edge that is traversed, or a loop that
//! runs past its claimed bound is a soundness violation.
//!
//! One deliberate divergence from the machine: memory bounds are
//! checked *per array*, which is exactly the property the memory
//! facts claim. (The machine checks the flat data-memory frame, so it
//! may tolerate a cross-array index that this evaluator reports.)

use crate::absint::{FactSet, Site};
use crate::ir::{FuncIr, Inst, IrBinOp, IrType, IrUnOp, Term, Val};
use warp_target::exec::cmp_holds;
use warp_target::interp::Value;
use warp_target::isa::CmpKind;

/// Instruction index marking a trap raised by a block's terminator.
pub const TERM_SITE: u32 = u32::MAX;

/// Why an evaluation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalTrap {
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// Array index outside the accessed array.
    MemOutOfBounds(i64),
    /// Strict consumption of an undefined value.
    UninitializedRead,
}

/// Everything a fact check needs from one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Returned value (raw register contents), if the function
    /// returned one.
    pub ret: Option<Value>,
    /// Whether the returned value was defined.
    pub ret_def: bool,
    /// The trap that stopped execution, with its site
    /// ([`TERM_SITE`] marks a terminator).
    pub trap: Option<(Site, EvalTrap)>,
    /// `true` when the instruction budget ran out first.
    pub fuel_exhausted: bool,
    /// The program used `Call` or `Recv`, which this evaluator does
    /// not model; all other outcome fields are unusable.
    pub unsupported: bool,
    /// Per block: times the then-edge was taken.
    pub then_taken: Vec<u64>,
    /// Per block: times the else-edge was taken.
    pub else_taken: Vec<u64>,
    /// Per block: longest consecutive self-execution run.
    pub max_run: Vec<u64>,
    /// Bit patterns of sent values, in program order.
    pub sent: Vec<u64>,
}

/// Runs `f` on `args` (one [`Value`] per parameter) with an
/// instruction budget of `fuel`.
pub fn eval_ir(f: &FuncIr, args: &[Value], fuel: u64) -> EvalOutcome {
    let n = f.blocks.len();
    let mut out = EvalOutcome {
        ret: None,
        ret_def: false,
        trap: None,
        fuel_exhausted: false,
        unsupported: false,
        then_taken: vec![0; n],
        else_taken: vec![0; n],
        max_run: vec![0; n],
        sent: Vec::new(),
    };
    // Registers mirror machine registers: integer zero, undefined.
    let mut regs: Vec<(Value, bool)> = vec![(Value::I(0), false); f.vreg_types.len()];
    for (&(r, _), &v) in f.params.iter().zip(args.iter()) {
        regs[r.0 as usize] = (v, true);
    }
    // Data memory starts zero-filled and defined.
    let mut mem: Vec<Vec<(Value, bool)>> = f
        .arrays
        .iter()
        .map(|a| vec![(Value::I(0), true); a.words() as usize])
        .collect();

    let rd = |regs: &[(Value, bool)], v: Val| -> (Value, bool) {
        match v {
            Val::ConstI(k) => (Value::I(k), true),
            Val::ConstF(c) => (Value::F(c), true),
            Val::Reg(r) => regs[r.0 as usize],
        }
    };

    let mut fuel = fuel;
    let mut bi = 0usize;
    let mut run = 0u64;
    let mut prev: Option<usize> = None;
    loop {
        if prev == Some(bi) {
            run += 1;
        } else {
            run = 1;
        }
        out.max_run[bi] = out.max_run[bi].max(run);
        prev = Some(bi);

        let block = &f.blocks[bi];
        let mut trapped = false;
        for (ii, inst) in block.insts.iter().enumerate() {
            if fuel == 0 {
                out.fuel_exhausted = true;
                return out;
            }
            fuel -= 1;
            let site = Site {
                block: bi as u32,
                inst: ii as u32,
            };
            let trap = |o: &mut EvalOutcome, t: EvalTrap| {
                o.trap = Some((site, t));
            };
            match inst {
                Inst::Bin { op, ty, dst, a, b } => {
                    let (av, ad) = rd(&regs, *a);
                    let (bv, bd) = rd(&regs, *b);
                    let def = ad && bd;
                    let v = match (op, ty) {
                        (IrBinOp::Add, IrType::Int) => Value::I(av.as_i().wrapping_add(bv.as_i())),
                        (IrBinOp::Sub, IrType::Int) => Value::I(av.as_i().wrapping_sub(bv.as_i())),
                        (IrBinOp::Mul, IrType::Int) => Value::I(av.as_i().wrapping_mul(bv.as_i())),
                        (IrBinOp::Min, IrType::Int) => Value::I(av.as_i().min(bv.as_i())),
                        (IrBinOp::Max, IrType::Int) => Value::I(av.as_i().max(bv.as_i())),
                        (IrBinOp::Add, IrType::Float) => Value::F(av.as_f() + bv.as_f()),
                        (IrBinOp::Sub, IrType::Float) => Value::F(av.as_f() - bv.as_f()),
                        (IrBinOp::Mul, IrType::Float) => Value::F(av.as_f() * bv.as_f()),
                        (IrBinOp::Min, IrType::Float) => Value::F(av.as_f().min(bv.as_f())),
                        (IrBinOp::Max, IrType::Float) => Value::F(av.as_f().max(bv.as_f())),
                        (IrBinOp::Div, _) => Value::F(av.as_f() / bv.as_f()),
                        (IrBinOp::IDiv | IrBinOp::Mod, _) => {
                            // The divisor is consumed: strict check,
                            // then the concrete zero test.
                            if !bd {
                                trap(&mut out, EvalTrap::UninitializedRead);
                                trapped = true;
                                break;
                            }
                            let (x, y) = (av.as_i(), bv.as_i());
                            if y == 0 {
                                trap(&mut out, EvalTrap::DivisionByZero);
                                trapped = true;
                                break;
                            }
                            if *op == IrBinOp::IDiv {
                                Value::I(x.wrapping_div(y))
                            } else {
                                Value::I(x.wrapping_rem(y))
                            }
                        }
                        (IrBinOp::And, _) => Value::I((av.truthy() && bv.truthy()) as i32),
                        (IrBinOp::Or, _) => Value::I((av.truthy() || bv.truthy()) as i32),
                    };
                    regs[dst.0 as usize] = (v, def);
                }
                Inst::Un { op, ty, dst, a } => {
                    let (av, ad) = rd(&regs, *a);
                    let v = match (op, ty) {
                        (IrUnOp::Neg, IrType::Int) => Value::I(av.as_i().wrapping_neg()),
                        (IrUnOp::Abs, IrType::Int) => Value::I(av.as_i().wrapping_abs()),
                        (IrUnOp::Neg, IrType::Float) => Value::F(-av.as_f()),
                        (IrUnOp::Abs, IrType::Float) => Value::F(av.as_f().abs()),
                        (IrUnOp::Not, _) => Value::I(!av.truthy() as i32),
                        (IrUnOp::ItoF, _) => Value::F(av.as_f()),
                        (IrUnOp::FtoI, _) => Value::I(av.as_i()),
                        (IrUnOp::Floor, _) => Value::I(av.as_f().floor() as i32),
                        (IrUnOp::Sqrt, _) => Value::F(av.as_f().sqrt()),
                        (IrUnOp::Sin, _) => Value::F(av.as_f().sin()),
                        (IrUnOp::Cos, _) => Value::F(av.as_f().cos()),
                        (IrUnOp::Exp, _) => Value::F(av.as_f().exp()),
                        (IrUnOp::Log, _) => Value::F(av.as_f().ln()),
                    };
                    regs[dst.0 as usize] = (v, ad);
                }
                Inst::Cmp {
                    kind,
                    ty,
                    dst,
                    a,
                    b,
                } => {
                    let (av, ad) = rd(&regs, *a);
                    let (bv, bd) = rd(&regs, *b);
                    let holds = match ty {
                        IrType::Int => cmp_holds(*kind, av.as_i().cmp(&bv.as_i())),
                        IrType::Float => match av.as_f().partial_cmp(&bv.as_f()) {
                            Some(ord) => cmp_holds(*kind, ord),
                            None => *kind == CmpKind::Ne,
                        },
                    };
                    regs[dst.0 as usize] = (Value::I(holds as i32), ad && bd);
                }
                Inst::Copy { dst, src } => {
                    regs[dst.0 as usize] = rd(&regs, *src);
                }
                Inst::Load {
                    dst, arr, index, ..
                } => {
                    let (iv, idef) = rd(&regs, *index);
                    if !idef {
                        trap(&mut out, EvalTrap::UninitializedRead);
                        trapped = true;
                        break;
                    }
                    let a = i64::from(iv.as_i());
                    let words = mem[arr.0 as usize].len() as i64;
                    if a < 0 || a >= words {
                        trap(&mut out, EvalTrap::MemOutOfBounds(a));
                        trapped = true;
                        break;
                    }
                    regs[dst.0 as usize] = mem[arr.0 as usize][a as usize];
                }
                Inst::Store {
                    arr, index, value, ..
                } => {
                    let (iv, idef) = rd(&regs, *index);
                    if !idef {
                        trap(&mut out, EvalTrap::UninitializedRead);
                        trapped = true;
                        break;
                    }
                    let a = i64::from(iv.as_i());
                    let words = mem[arr.0 as usize].len() as i64;
                    if a < 0 || a >= words {
                        trap(&mut out, EvalTrap::MemOutOfBounds(a));
                        trapped = true;
                        break;
                    }
                    mem[arr.0 as usize][a as usize] = rd(&regs, *value);
                }
                Inst::Send { value, .. } => {
                    let (v, d) = rd(&regs, *value);
                    if !d {
                        trap(&mut out, EvalTrap::UninitializedRead);
                        trapped = true;
                        break;
                    }
                    out.sent.push(v.to_bits());
                }
                Inst::Select {
                    dst, cond, then_v, ..
                } => {
                    let (cv, cd) = rd(&regs, *cond);
                    let (old, old_def) = regs[dst.0 as usize];
                    let (nv, nd) = rd(&regs, *then_v);
                    let (picked, pdef) = if cv.truthy() {
                        (nv, nd)
                    } else {
                        (old, old_def)
                    };
                    regs[dst.0 as usize] = (picked, cd && pdef);
                }
                Inst::Call { .. } | Inst::Recv { .. } => {
                    out.unsupported = true;
                    return out;
                }
            }
        }
        if trapped {
            return out;
        }
        if fuel == 0 {
            out.fuel_exhausted = true;
            return out;
        }
        fuel -= 1;
        let term_site = Site {
            block: bi as u32,
            inst: TERM_SITE,
        };
        match &block.term {
            Term::Jump(t) => bi = t.0 as usize,
            Term::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let (cv, cd) = rd(&regs, *cond);
                if !cd {
                    out.trap = Some((term_site, EvalTrap::UninitializedRead));
                    return out;
                }
                if cv.truthy() {
                    out.then_taken[bi] += 1;
                    bi = then_blk.0 as usize;
                } else {
                    out.else_taken[bi] += 1;
                    bi = else_blk.0 as usize;
                }
            }
            Term::Return(v) => {
                if let Some(v) = v {
                    let (rv, rdz) = rd(&regs, *v);
                    if !rdz {
                        out.trap = Some((term_site, EvalTrap::UninitializedRead));
                        return out;
                    }
                    out.ret = Some(rv);
                    out.ret_def = true;
                }
                return out;
            }
        }
    }
}

/// Holds every claim in `facts` against one concrete evaluation of
/// the same IR. Returns human-readable descriptions of violations —
/// an empty vector means no claim was falsified. Partial runs (fuel
/// exhausted, traps) still check everything they observed.
pub fn fact_violations(facts: &FactSet, o: &EvalOutcome) -> Vec<String> {
    let mut v = Vec::new();
    if o.unsupported {
        return v;
    }
    if let Some((site, trap)) = &o.trap {
        if site.inst != TERM_SITE {
            if facts.safe_divs.contains(site) {
                v.push(format!(
                    "claimed-safe div site b{}:{} trapped {trap:?}",
                    site.block, site.inst
                ));
            }
            if facts.safe_mems.contains(site) {
                v.push(format!(
                    "claimed-safe mem site b{}:{} trapped {trap:?}",
                    site.block, site.inst
                ));
            }
        }
        match trap {
            EvalTrap::DivisionByZero if facts.div_trap_free => {
                v.push("div_trap_free function raised DivisionByZero".into());
            }
            EvalTrap::MemOutOfBounds(a) if facts.mem_trap_free => {
                v.push(format!("mem_trap_free function went out of bounds ({a})"));
            }
            EvalTrap::UninitializedRead if facts.def_free => {
                v.push("def_free function consumed an undefined value".into());
            }
            _ => {}
        }
    }
    for e in &facts.dead_edges {
        let b = e.block as usize;
        if e.always_then && o.else_taken.get(b).copied().unwrap_or(0) > 0 {
            v.push(format!("dead else-edge of b{b} was taken"));
        }
        if !e.always_then && o.then_taken.get(b).copied().unwrap_or(0) > 0 {
            v.push(format!("dead then-edge of b{b} was taken"));
        }
    }
    for l in &facts.loop_bounds {
        let b = l.block as usize;
        let run = o.max_run.get(b).copied().unwrap_or(0);
        if run > l.max_trips {
            v.push(format!(
                "loop b{b} ran {run} consecutive trips, bound {}",
                l.max_trips
            ));
        }
    }
    if facts.finite_return {
        if let Some(Value::F(x)) = o.ret {
            if !x.is_finite() {
                v.push(format!("finite_return function returned {x}"));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint;
    use crate::ir::{Block, VirtReg};

    /// Analyze-then-evaluate must never produce violations on a
    /// straight-line arithmetic function.
    #[test]
    fn facts_hold_on_concrete_run() {
        // d := p mod 7 (p param); loop-free.
        let p = VirtReg(0);
        let d = VirtReg(1);
        let f = FuncIr {
            name: "t".into(),
            params: vec![(p, IrType::Int)],
            ret: Some(IrType::Int),
            blocks: vec![Block {
                insts: vec![Inst::Bin {
                    op: IrBinOp::Mod,
                    ty: IrType::Int,
                    dst: d,
                    a: Val::Reg(p),
                    b: Val::ConstI(7),
                }],
                term: Term::Return(Some(Val::Reg(d))),
            }],
            arrays: vec![],
            vreg_types: vec![IrType::Int, IrType::Int],
        };
        let a = absint::analyze(&f);
        assert!(a.facts.div_trap_free, "constant divisor is safe");
        for x in [-9i32, -1, 0, 1, 6, 7, 100, i32::MIN, i32::MAX] {
            let o = eval_ir(&f, &[Value::I(x)], 1_000);
            assert_eq!(o.ret, Some(Value::I(x.wrapping_rem(7))));
            assert!(fact_violations(&a.facts, &o).is_empty());
        }
    }

    #[test]
    fn division_by_zero_is_reported_at_its_site() {
        let p = VirtReg(0);
        let d = VirtReg(1);
        let f = FuncIr {
            name: "t".into(),
            params: vec![(p, IrType::Int)],
            ret: Some(IrType::Int),
            blocks: vec![Block {
                insts: vec![Inst::Bin {
                    op: IrBinOp::IDiv,
                    ty: IrType::Int,
                    dst: d,
                    a: Val::ConstI(1),
                    b: Val::Reg(p),
                }],
                term: Term::Return(Some(Val::Reg(d))),
            }],
            arrays: vec![],
            vreg_types: vec![IrType::Int, IrType::Int],
        };
        let o = eval_ir(&f, &[Value::I(0)], 1_000);
        assert_eq!(
            o.trap,
            Some((Site { block: 0, inst: 0 }, EvalTrap::DivisionByZero))
        );
        // A (deliberately wrong) claim of safety is falsified.
        let mut facts = FactSet {
            div_trap_free: true,
            ..FactSet::default()
        };
        facts.safe_divs.push(Site { block: 0, inst: 0 });
        assert_eq!(fact_violations(&facts, &o).len(), 2);
    }
}
