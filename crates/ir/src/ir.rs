//! The mid-level three-address intermediate representation.
//!
//! Phase 2 of the compiler lowers each function's AST into a control
//! flow graph of basic blocks over virtual registers. Scalars live in
//! virtual registers (not SSA — registers are mutable, which matches
//! the 1980s compiler the paper describes); arrays live in abstract
//! array storage referenced by [`ArrayId`], which keeps array identity
//! visible to the dependence analysis.

use serde::{Deserialize, Serialize};
use std::fmt;
use warp_lang::ast::Direction;
use warp_target::isa::CmpKind;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtReg(pub u32);

impl fmt::Display for VirtReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An abstract array (one per array-typed variable of the function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A basic block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the function's block vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Scalar IR types. Booleans are represented as `Int` 0/1 after
/// lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrType {
    /// 32-bit integer.
    Int,
    /// 32-bit float.
    Float,
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IrType::Int => "i32",
            IrType::Float => "f32",
        })
    }
}

/// A value: a virtual register or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Val {
    /// Register value.
    Reg(VirtReg),
    /// Integer constant.
    ConstI(i32),
    /// Float constant.
    ConstF(f32),
}

impl Val {
    /// The register, if this is one.
    pub fn as_reg(self) -> Option<VirtReg> {
        match self {
            Val::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// `true` if this value is a constant.
    pub fn is_const(self) -> bool {
        !matches!(self, Val::Reg(_))
    }

    /// The type of a constant value (`None` for registers).
    pub fn const_type(self) -> Option<IrType> {
        match self {
            Val::ConstI(_) => Some(IrType::Int),
            Val::ConstF(_) => Some(IrType::Float),
            Val::Reg(_) => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Reg(r) => write!(f, "{r}"),
            Val::ConstI(v) => write!(f, "{v}"),
            Val::ConstF(v) => write!(f, "{v:?}"),
        }
    }
}

/// Binary IR operators. Comparison is a separate instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Float division.
    Div,
    /// Integer division.
    IDiv,
    /// Integer remainder.
    Mod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Boolean and (operands 0/1).
    And,
    /// Boolean or.
    Or,
}

impl IrBinOp {
    /// `true` if the operator is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            IrBinOp::Add | IrBinOp::Mul | IrBinOp::Min | IrBinOp::Max | IrBinOp::And | IrBinOp::Or
        )
    }
}

/// Unary IR operators, including math builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrUnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
    /// int → float conversion.
    ItoF,
    /// float → int truncation.
    FtoI,
    /// Absolute value.
    Abs,
    /// `floor` to integer.
    Floor,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Exponential.
    Exp,
    /// Natural log.
    Log,
}

/// A three-address instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst := a op b`
    Bin {
        /// The operator.
        op: IrBinOp,
        /// Operand/result type.
        ty: IrType,
        /// Destination register.
        dst: VirtReg,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// `dst := op a`
    Un {
        /// The operator.
        op: IrUnOp,
        /// Operand type (result type may differ for conversions).
        ty: IrType,
        /// Destination register.
        dst: VirtReg,
        /// Operand.
        a: Val,
    },
    /// `dst := a cmp b` (result is Int 0/1).
    Cmp {
        /// The predicate.
        kind: CmpKind,
        /// Type of the compared operands.
        ty: IrType,
        /// Destination register.
        dst: VirtReg,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// `dst := src`
    Copy {
        /// Destination register.
        dst: VirtReg,
        /// Source value.
        src: Val,
    },
    /// `dst := array[index]` (index already linearized to words).
    Load {
        /// Destination register.
        dst: VirtReg,
        /// Element type.
        ty: IrType,
        /// The array.
        arr: ArrayId,
        /// Linear element index.
        index: Val,
    },
    /// `array[index] := value`
    Store {
        /// The array.
        arr: ArrayId,
        /// Linear element index.
        index: Val,
        /// Stored value.
        value: Val,
        /// Element type.
        ty: IrType,
    },
    /// Call a function in the same section.
    Call {
        /// Destination for the return value, if used.
        dst: Option<VirtReg>,
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Val>,
    },
    /// Enqueue a value toward a neighbor.
    Send {
        /// Queue direction.
        dir: Direction,
        /// Sent value.
        value: Val,
    },
    /// Dequeue a value from a neighbor.
    Recv {
        /// Destination register.
        dst: VirtReg,
        /// Queue direction.
        dir: Direction,
        /// Element type expected.
        ty: IrType,
    },
    /// Conditional select: `dst := cond ? then_v : dst`. Reads its own
    /// destination — produced by if-conversion.
    Select {
        /// Destination register (also an input).
        dst: VirtReg,
        /// Condition (Int 0/1).
        cond: Val,
        /// Value taken when the condition is nonzero.
        then_v: Val,
        /// Value type.
        ty: IrType,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<VirtReg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Recv { dst, .. }
            | Inst::Select { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::Send { .. } => None,
        }
    }

    /// The values this instruction reads.
    pub fn uses(&self) -> Vec<Val> {
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => vec![*a, *b],
            Inst::Un { a, .. } => vec![*a],
            Inst::Copy { src, .. } => vec![*src],
            Inst::Load { index, .. } => vec![*index],
            Inst::Store { index, value, .. } => vec![*index, *value],
            Inst::Call { args, .. } => args.clone(),
            Inst::Send { value, .. } => vec![*value],
            Inst::Recv { .. } => vec![],
            // Select also reads its destination (kept when the
            // condition is false).
            Inst::Select {
                dst, cond, then_v, ..
            } => vec![Val::Reg(*dst), *cond, *then_v],
        }
    }

    /// Registers read by this instruction.
    pub fn used_regs(&self) -> Vec<VirtReg> {
        self.uses().into_iter().filter_map(Val::as_reg).collect()
    }

    /// Replaces every use of register `from` with value `to`.
    pub fn replace_uses(&mut self, from: VirtReg, to: Val) {
        let rep = |v: &mut Val| {
            if *v == Val::Reg(from) {
                *v = to;
            }
        };
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                rep(a);
                rep(b);
            }
            Inst::Un { a, .. } => rep(a),
            Inst::Copy { src, .. } => rep(src),
            Inst::Load { index, .. } => rep(index),
            Inst::Store { index, value, .. } => {
                rep(index);
                rep(value);
            }
            Inst::Call { args, .. } => args.iter_mut().for_each(rep),
            Inst::Send { value, .. } => rep(value),
            Inst::Recv { .. } => {}
            // The destination of a Select is not a rewritable use.
            Inst::Select { cond, then_v, .. } => {
                rep(cond);
                rep(then_v);
            }
        }
    }

    /// `true` for instructions that must keep their relative order with
    /// other effectful instructions even if no register dependence
    /// connects them (memory, queues, calls).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::Send { .. } | Inst::Recv { .. } | Inst::Call { .. }
        )
    }

    /// `true` if removing this instruction when its result is dead is
    /// safe.
    pub fn is_removable_if_dead(&self) -> bool {
        !self.has_side_effects()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, ty, dst, a, b } => write!(f, "{dst} := {op:?}.{ty} {a}, {b}"),
            Inst::Un { op, ty, dst, a } => write!(f, "{dst} := {op:?}.{ty} {a}"),
            Inst::Cmp {
                kind,
                ty,
                dst,
                a,
                b,
            } => write!(f, "{dst} := cmp.{kind}.{ty} {a}, {b}"),
            Inst::Copy { dst, src } => write!(f, "{dst} := {src}"),
            Inst::Load {
                dst,
                ty,
                arr,
                index,
            } => write!(f, "{dst} := load.{ty} {arr}[{index}]"),
            Inst::Store {
                arr,
                index,
                value,
                ty,
            } => {
                write!(f, "store.{ty} {arr}[{index}] := {value}")
            }
            Inst::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} := call {callee}(")?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Send { dir, value } => write!(f, "send.{dir} {value}"),
            Inst::Recv { dst, dir, ty } => write!(f, "{dst} := recv.{dir}.{ty}"),
            Inst::Select {
                dst,
                cond,
                then_v,
                ty,
            } => {
                write!(f, "{dst} := select.{ty} {cond} ? {then_v} : {dst}")
            }
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean (Int 0/1) value.
    Branch {
        /// Condition value.
        cond: Val,
        /// Target when nonzero.
        then_blk: BlockId,
        /// Target when zero.
        else_blk: BlockId,
    },
    /// Function return.
    Return(Option<Val>),
}

impl Term {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jump(b) => vec![*b],
            Term::Branch {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Term::Return(_) => vec![],
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Jump(b) => write!(f, "jump {b}"),
            Term::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                write!(f, "br {cond} ? {then_blk} : {else_blk}")
            }
            Term::Return(Some(v)) => write!(f, "ret {v}"),
            Term::Return(None) => write!(f, "ret"),
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The block's instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

/// An array variable's storage description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayInfo {
    /// Source name.
    pub name: String,
    /// Dimensions, outermost first.
    pub dims: Vec<u32>,
    /// Element type.
    pub ty: IrType,
}

impl ArrayInfo {
    /// Total elements (= words).
    pub fn words(&self) -> u32 {
        self.dims.iter().product::<u32>().max(1)
    }
}

/// The IR of one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncIr {
    /// Function name.
    pub name: String,
    /// Parameter registers with their types, in order.
    pub params: Vec<(VirtReg, IrType)>,
    /// Return type, if the function returns a value.
    pub ret: Option<IrType>,
    /// Basic blocks; [`BlockId`] indexes this vector. Block 0 is the
    /// entry.
    pub blocks: Vec<Block>,
    /// Array storage.
    pub arrays: Vec<ArrayInfo>,
    /// Type of every virtual register, indexed by register number.
    pub vreg_types: Vec<IrType>,
}

impl FuncIr {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: IrType) -> VirtReg {
        let r = VirtReg(self.vreg_types.len() as u32);
        self.vreg_types.push(ty);
        r
    }

    /// The type of register `r`.
    ///
    /// # Panics
    ///
    /// Panics if the register was not allocated by this function.
    pub fn vreg_type(&self, r: VirtReg) -> IrType {
        self.vreg_types[r.0 as usize]
    }

    /// The type of a value.
    pub fn val_type(&self, v: Val) -> IrType {
        match v {
            Val::Reg(r) => self.vreg_type(r),
            Val::ConstI(_) => IrType::Int,
            Val::ConstF(_) => IrType::Float,
        }
    }

    /// Total instruction count across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Total words of array storage.
    pub fn array_words(&self) -> u32 {
        self.arrays.iter().map(ArrayInfo::words).sum()
    }

    /// Renders the IR as text (for tests and debugging).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "func {} ({} blocks)", self.name, self.blocks.len());
        for (i, b) in self.blocks.iter().enumerate() {
            let _ = writeln!(s, "b{i}:");
            for inst in &b.insts {
                let _ = writeln!(s, "  {inst}");
            }
            let _ = writeln!(s, "  {}", b.term);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func() -> FuncIr {
        FuncIr {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![],
            arrays: vec![],
            vreg_types: vec![],
        }
    }

    #[test]
    fn vreg_allocation_and_types() {
        let mut f = func();
        let a = f.new_vreg(IrType::Int);
        let b = f.new_vreg(IrType::Float);
        assert_eq!(a, VirtReg(0));
        assert_eq!(b, VirtReg(1));
        assert_eq!(f.vreg_type(a), IrType::Int);
        assert_eq!(f.val_type(Val::Reg(b)), IrType::Float);
        assert_eq!(f.val_type(Val::ConstI(3)), IrType::Int);
    }

    #[test]
    fn def_and_uses() {
        let mut f = func();
        let d = f.new_vreg(IrType::Int);
        let s = f.new_vreg(IrType::Int);
        let i = Inst::Bin {
            op: IrBinOp::Add,
            ty: IrType::Int,
            dst: d,
            a: Val::Reg(s),
            b: Val::ConstI(1),
        };
        assert_eq!(i.def(), Some(d));
        assert_eq!(i.used_regs(), vec![s]);
        let st = Inst::Store {
            arr: ArrayId(0),
            index: Val::Reg(s),
            value: Val::Reg(d),
            ty: IrType::Int,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.used_regs(), vec![s, d]);
        assert!(st.has_side_effects());
    }

    #[test]
    fn replace_uses_rewrites_all_positions() {
        let mut f = func();
        let a = f.new_vreg(IrType::Int);
        let d = f.new_vreg(IrType::Int);
        let mut i = Inst::Bin {
            op: IrBinOp::Mul,
            ty: IrType::Int,
            dst: d,
            a: Val::Reg(a),
            b: Val::Reg(a),
        };
        i.replace_uses(a, Val::ConstI(7));
        assert_eq!(i.used_regs(), Vec::<VirtReg>::new());
        if let Inst::Bin { a, b, .. } = i {
            assert_eq!(a, Val::ConstI(7));
            assert_eq!(b, Val::ConstI(7));
        }
    }

    #[test]
    fn predecessors_computed() {
        let mut f = func();
        let c = f.new_vreg(IrType::Int);
        f.blocks = vec![
            Block {
                insts: vec![],
                term: Term::Branch {
                    cond: Val::Reg(c),
                    then_blk: BlockId(1),
                    else_blk: BlockId(2),
                },
            },
            Block {
                insts: vec![],
                term: Term::Jump(BlockId(2)),
            },
            Block {
                insts: vec![],
                term: Term::Return(None),
            },
        ];
        let preds = f.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn array_words() {
        let a = ArrayInfo {
            name: "m".into(),
            dims: vec![4, 8],
            ty: IrType::Float,
        };
        assert_eq!(a.words(), 32);
        let s = ArrayInfo {
            name: "x".into(),
            dims: vec![],
            ty: IrType::Float,
        };
        assert_eq!(s.words(), 1);
    }

    #[test]
    fn dump_contains_blocks() {
        let mut f = func();
        let d = f.new_vreg(IrType::Int);
        f.blocks = vec![Block {
            insts: vec![Inst::Copy {
                dst: d,
                src: Val::ConstI(1),
            }],
            term: Term::Return(Some(Val::Reg(d))),
        }];
        let text = f.dump();
        assert!(text.contains("b0:"));
        assert!(text.contains("v0 := 1"));
        assert!(text.contains("ret v0"));
    }
}
