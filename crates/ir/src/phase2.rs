//! Phase-2 driver: lower one function, optimize it, analyze its loops
//! and dependences, and account for the work done.
//!
//! This is the first half of what a *function master* executes in the
//! parallel compiler (paper §3.2); the second half (phase 3, software
//! pipelining and code generation) lives in `warp-codegen`.

use crate::absint::{analyze, FactSet};
use crate::deps::{dep_graph, DepGraph};
use crate::ifconv::{if_convert, IfConvPolicy, IfConvStats};
use crate::ir::{BlockId, FuncIr};
use crate::loops::{analyze_loops, LoopInfo};
use crate::lower::{lower_function, LowerError};
use crate::opt::{apply_facts, optimize_traced, OptStats};
use crate::unroll::{unroll_loops, UnrollPolicy, UnrollStats};
use crate::verify::{verify_after, VerifyError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use warp_lang::ast::Function;
use warp_lang::sema::{Signature, SymbolTable};
use warp_obs::{Trace, TrackId};

/// Deterministic work counters for phase 2, consumed by the host
/// simulator to convert real compilations into 1989-scale times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase2Work {
    /// IR instructions after lowering (before optimization).
    pub lowered_insts: usize,
    /// IR instructions after optimization.
    pub optimized_insts: usize,
    /// Instructions visited by optimization passes.
    pub opt_visits: usize,
    /// Optimization pipeline iterations.
    pub opt_iterations: usize,
    /// Dependence subscript tests performed.
    pub dep_tests: usize,
    /// Dependence edges produced.
    pub dep_edges: usize,
    /// Number of loops analyzed.
    pub loops: usize,
    /// Abstract-interpretation worklist iterations (0 when the absint
    /// pass is disabled), reported alongside the dataflow iteration
    /// counts so the cost model can charge the analysis work.
    pub absint_iterations: usize,
    /// Statically-infeasible branches pruned by the fact-driven pass.
    pub branches_pruned: usize,
    /// Trap checks elided by the fact-driven pass.
    pub trap_checks_elided: usize,
}

impl Phase2Work {
    /// A single scalar work measure (used as the simulator's unit of
    /// phase-2 CPU work). Weights reflect the relative cost of the
    /// activities in a Lisp implementation of the era.
    pub fn units(&self) -> u64 {
        self.lowered_insts as u64 * 4
            + self.opt_visits as u64 * 3
            + self.dep_tests as u64 * 6
            + self.dep_edges as u64 * 2
            + self.loops as u64 * 20
            + self.absint_iterations as u64 * 5
    }
}

/// Everything phase 2 produces for one function.
#[derive(Debug, Clone)]
pub struct Phase2Result {
    /// The optimized IR.
    pub ir: FuncIr,
    /// Loop forest.
    pub loops: LoopInfo,
    /// Dependence graph for every block, indexed by block.
    pub block_deps: Vec<DepGraph>,
    /// Optimization statistics.
    pub opt_stats: OptStats,
    /// Loop-unrolling statistics (zero unless unrolling was requested).
    pub unroll_stats: UnrollStats,
    /// If-conversion statistics (zero unless requested).
    pub ifconv_stats: IfConvStats,
    /// Facts proven by the abstract interpreter about the *final* IR
    /// (`None` unless the absint pass was requested).
    pub facts: Option<FactSet>,
    /// Work counters.
    pub work: Phase2Work,
}

impl Phase2Result {
    /// The dependence graph of block `b`.
    pub fn deps_of(&self, b: BlockId) -> &DepGraph {
        &self.block_deps[b.index()]
    }

    /// `true` if block `b` is a pipelinable (single-block) loop.
    pub fn is_pipeline_loop(&self, b: BlockId) -> bool {
        self.loops.pipelinable_blocks().contains(&b)
    }
}

/// Runs phase 2 on one function.
///
/// # Errors
///
/// Propagates [`LowerError`] (only possible on ASTs that did not pass
/// the checker).
pub fn phase2(
    func: &Function,
    symbols: &SymbolTable,
    signatures: &HashMap<String, Signature>,
) -> Result<Phase2Result, LowerError> {
    phase2_opts(func, symbols, signatures, None, None)
}

/// Phase 2 with optional loop unrolling (the compile-time-for-code-
/// quality trade of §6) applied after local optimization.
///
/// # Errors
///
/// Propagates [`LowerError`].
pub fn phase2_with_unroll(
    func: &Function,
    symbols: &SymbolTable,
    signatures: &HashMap<String, Signature>,
    unroll: Option<&UnrollPolicy>,
) -> Result<Phase2Result, LowerError> {
    phase2_opts(func, symbols, signatures, unroll, None)
}

/// A phase-2 failure: either lowering rejected the AST or (with
/// `verify_each_pass` enabled) a pass broke an IR invariant.
#[derive(Debug, Clone)]
pub enum Phase2Error {
    /// Lowering failed.
    Lower(LowerError),
    /// A pass produced IR that fails verification.
    Verify(VerifyError),
}

impl fmt::Display for Phase2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase2Error::Lower(e) => e.fmt(f),
            Phase2Error::Verify(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Phase2Error {}

impl From<LowerError> for Phase2Error {
    fn from(e: LowerError) -> Self {
        Phase2Error::Lower(e)
    }
}

impl From<VerifyError> for Phase2Error {
    fn from(e: VerifyError) -> Self {
        Phase2Error::Verify(e)
    }
}

/// Phase 2 with all optional optimizations: if-conversion (making
/// branchy loop bodies pipelinable) runs before unrolling.
///
/// # Errors
///
/// Propagates [`LowerError`].
pub fn phase2_opts(
    func: &Function,
    symbols: &SymbolTable,
    signatures: &HashMap<String, Signature>,
    unroll: Option<&UnrollPolicy>,
    ifconv: Option<&IfConvPolicy>,
) -> Result<Phase2Result, LowerError> {
    match phase2_verified(func, symbols, signatures, unroll, ifconv, false, false) {
        Ok(r) => Ok(r),
        Err(Phase2Error::Lower(e)) => Err(e),
        Err(Phase2Error::Verify(e)) => unreachable!("verification disabled: {e}"),
    }
}

/// Phase 2 with the IR verifier run at every pass boundary: after
/// lowering, after each individual optimization pass, and after
/// if-conversion, unrolling and the fact-driven absint pass. A
/// failure names the pass that broke the IR.
///
/// # Errors
///
/// Propagates [`LowerError`]; returns [`Phase2Error::Verify`] when
/// `verify_each_pass` is set and a pass breaks an invariant.
#[allow(clippy::too_many_arguments)]
pub fn phase2_verified(
    func: &Function,
    symbols: &SymbolTable,
    signatures: &HashMap<String, Signature>,
    unroll: Option<&UnrollPolicy>,
    ifconv: Option<&IfConvPolicy>,
    absint: bool,
    verify_each_pass: bool,
) -> Result<Phase2Result, Phase2Error> {
    phase2_traced(
        func,
        symbols,
        signatures,
        unroll,
        ifconv,
        absint,
        verify_each_pass,
        &Trace::disabled(),
        TrackId(0),
    )
}

/// One analyze→apply round of the fact-driven absint pass, iterated
/// until no rewrite fires (bounded). Emits `"absint"` spans for the
/// analysis and the rewrite application.
fn absint_stage(
    ir: &mut FuncIr,
    stage: &str,
    verify_each_pass: bool,
    trace: &Trace,
    track: TrackId,
) -> Result<(usize, usize, usize), Phase2Error> {
    let (mut iterations, mut pruned, mut elided) = (0usize, 0usize, 0usize);
    for round in 0..3 {
        let analysis = {
            let mut span = trace.span("absint", format!("absint:{stage}:analyze"), track);
            let a = analyze(ir);
            span.arg("iterations", a.facts.iterations as f64);
            span.arg("claims", a.facts.claim_count() as f64);
            span.arg("round", round as f64);
            a
        };
        iterations += analysis.facts.iterations;
        if analysis.rewrites.is_empty() {
            break;
        }
        let stats = {
            let _span = trace.span("absint", format!("absint:{stage}:apply_facts"), track);
            apply_facts(ir, &analysis.rewrites)
        };
        if verify_each_pass {
            let _span = trace.span("verify", "ir:apply_facts", track);
            verify_after(ir, "apply_facts")?;
        }
        pruned += stats.branches_pruned;
        elided += stats.trap_checks_elided;
        if !stats.changed() {
            break;
        }
    }
    Ok((iterations, pruned, elided))
}

/// [`phase2_verified`] with span tracing: records one `"pass"` span
/// per phase-2 stage (`lower`, each optimization pass via
/// [`crate::opt::optimize_traced`], `if_convert`, `unroll_loops`,
/// `analyze_loops`, `dep_graph`), `"absint"` spans for the abstract
/// interpreter and its fact-driven rewrites, and `"verify"` spans for
/// the per-pass IR verification, all on `track` of `trace`. With a
/// disabled trace this is exactly [`phase2_verified`].
///
/// # Errors
///
/// Propagates [`LowerError`]; returns [`Phase2Error::Verify`] when
/// `verify_each_pass` is set and a pass breaks an invariant.
#[allow(clippy::too_many_arguments)]
pub fn phase2_traced(
    func: &Function,
    symbols: &SymbolTable,
    signatures: &HashMap<String, Signature>,
    unroll: Option<&UnrollPolicy>,
    ifconv: Option<&IfConvPolicy>,
    absint: bool,
    verify_each_pass: bool,
    trace: &Trace,
    track: TrackId,
) -> Result<Phase2Result, Phase2Error> {
    let mut ir = {
        let _span = trace.span("pass", "lower", track);
        lower_function(func, symbols, signatures)?
    };
    if verify_each_pass {
        let _span = trace.span("verify", "ir:lower", track);
        verify_after(&ir, "lower")?;
    }
    let lowered_insts = ir.inst_count();
    // The absint pass runs right after lowering — cross-block facts
    // (zero-initialized accumulators, loop ranges) are visible here
    // that the purely local optimizer cannot see — and again after the
    // optimization pipeline, once cleanup has exposed new constants.
    let (mut absint_iterations, mut branches_pruned, mut trap_checks_elided) = (0, 0, 0);
    if absint {
        let (it, p, e) = absint_stage(&mut ir, "post-lower", verify_each_pass, trace, track)?;
        absint_iterations += it;
        branches_pruned += p;
        trap_checks_elided += e;
    }
    let mut opt_stats = optimize_traced(&mut ir, 10, verify_each_pass, trace, track)?;
    let mut ifconv_stats = IfConvStats::default();
    if let Some(policy) = ifconv {
        {
            let _span = trace.span("pass", "if_convert", track);
            ifconv_stats = if_convert(&mut ir, policy);
        }
        if verify_each_pass {
            let _span = trace.span("verify", "ir:if_convert", track);
            verify_after(&ir, "if_convert")?;
        }
        if ifconv_stats.converted > 0 {
            let again = optimize_traced(&mut ir, 6, verify_each_pass, trace, track)?;
            opt_stats.insts_visited += again.insts_visited;
            opt_stats.iterations += again.iterations;
        }
    }
    let mut unroll_stats = UnrollStats::default();
    if let Some(policy) = unroll {
        {
            let _span = trace.span("pass", "unroll_loops", track);
            unroll_stats = unroll_loops(&mut ir, policy);
        }
        if verify_each_pass {
            let _span = trace.span("verify", "ir:unroll_loops", track);
            verify_after(&ir, "unroll_loops")?;
        }
        if unroll_stats.unrolled > 0 {
            // Clean up the duplicated bodies (CSE across copies etc.).
            let again = optimize_traced(&mut ir, 4, verify_each_pass, trace, track)?;
            opt_stats.insts_visited += again.insts_visited;
            opt_stats.iterations += again.iterations;
        }
    }
    let _ = (&unroll_stats, &ifconv_stats);
    // Post-optimization absint round, then a final analysis so the
    // shipped facts describe the exact IR phase 3 will consume.
    let mut facts = None;
    if absint {
        let (it, p, e) = absint_stage(&mut ir, "post-opt", verify_each_pass, trace, track)?;
        absint_iterations += it;
        branches_pruned += p;
        trap_checks_elided += e;
        if p + e > 0 {
            let again = optimize_traced(&mut ir, 4, verify_each_pass, trace, track)?;
            opt_stats.insts_visited += again.insts_visited;
            opt_stats.iterations += again.iterations;
        }
        let final_analysis = {
            let mut span = trace.span("absint", "absint:final:analyze", track);
            let a = analyze(&ir);
            span.arg("iterations", a.facts.iterations as f64);
            span.arg("claims", a.facts.claim_count() as f64);
            a
        };
        absint_iterations += final_analysis.facts.iterations;
        facts = Some(final_analysis.facts);
    }
    let loops = {
        let _span = trace.span("pass", "analyze_loops", track);
        analyze_loops(&ir)
    };
    let pipelinable = loops.pipelinable_blocks();
    let mut block_deps = Vec::with_capacity(ir.blocks.len());
    let mut dep_tests = 0;
    let mut dep_edges = 0;
    {
        let mut span = trace.span("pass", "dep_graph", track);
        for (bi, block) in ir.blocks.iter().enumerate() {
            let is_loop = pipelinable.contains(&BlockId(bi as u32));
            let g = dep_graph(&ir, block, is_loop);
            dep_tests += g.dep_tests;
            dep_edges += g.edges.len();
            block_deps.push(g);
        }
        span.arg("dep_tests", dep_tests as f64);
        span.arg("dep_edges", dep_edges as f64);
    }
    let work = Phase2Work {
        lowered_insts,
        optimized_insts: ir.inst_count(),
        opt_visits: opt_stats.insts_visited,
        opt_iterations: opt_stats.iterations,
        dep_tests,
        dep_edges,
        loops: loops.loops.len(),
        absint_iterations,
        branches_pruned,
        trap_checks_elided,
    };
    Ok(Phase2Result {
        ir,
        loops,
        block_deps,
        opt_stats,
        unroll_stats,
        ifconv_stats,
        facts,
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_lang::phase1;

    fn run(body: &str) -> Phase2Result {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[16]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        phase2(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
        )
        .expect("phase2")
    }

    #[test]
    fn phase2_produces_consistent_result() {
        let r = run("t := 0.0; for i := 0 to 15 do t := t + v[i] * x; end; return t;");
        assert_eq!(r.block_deps.len(), r.ir.blocks.len());
        assert_eq!(r.loops.loops.len(), 1);
        assert!(r.work.units() > 0);
        assert!(r.work.optimized_insts <= r.work.lowered_insts);
        let hdr = r.loops.pipelinable_blocks()[0];
        assert!(r.is_pipeline_loop(hdr));
        assert!(r.deps_of(hdr).carried_edges().count() > 0);
    }

    #[test]
    fn verified_phase2_accepts_valid_source() {
        let src = "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[16]; i: int; begin t := 0.0; \
             for i := 0 to 15 do t := t + v[i] * x; end; return t; end; end;";
        let checked = phase1(src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        let r = phase2_verified(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
            Some(&crate::unroll::UnrollPolicy::default()),
            Some(&crate::ifconv::IfConvPolicy::default()),
            true,
            true,
        )
        .expect("verified phase 2 must pass on valid source");
        assert_eq!(r.block_deps.len(), r.ir.blocks.len());
        let facts = r.facts.expect("absint requested");
        assert!(r.work.absint_iterations > 0);
        // No division anywhere, every consumed value defined, and the
        // base load of each unrolled group has a proven-bounded index.
        // (The +1/+2/+3 offset loads are beyond the interval domain:
        // the stride-4 entry set {0,4,8,12} abstracts to [0,15].)
        assert!(facts.div_trap_free, "{facts:?}");
        assert!(facts.def_free, "{facts:?}");
        assert!(facts.mem_safe >= 1, "{facts:?}");
    }

    #[test]
    fn absint_pass_prunes_infeasible_branch_and_elides_trap_check() {
        // t starts at 0.0, so `t > 0.5` is statically false on the
        // first branch... but t changes in the loop; instead use a
        // plainly infeasible diamond on a zero-initialized scalar
        // *before* the loop, plus an `i mod 16` whose left operand is
        // the loop counter bounded by the loop range — both beyond
        // the local optimizer (cross-block; non-constant operand).
        let src = "module m; section a on cells 0..0; \
             function f(x: float, n: int): float \
             var t: float; g: float; v: float[16]; i: int; k: int; begin \
             t := 0.0; g := 0.1; \
             if t > g then t := x; end; \
             for i := 0 to 15 do k := i mod 16; t := t + v[k] * x; end; \
             return t; end; end;";
        let checked = phase1(src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        let r = phase2_verified(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
            None,
            None,
            true,
            true,
        )
        .expect("phase2");
        assert!(r.work.branches_pruned >= 1, "{:?}\n{}", r.work, r.ir.dump());
        assert!(
            r.work.trap_checks_elided >= 1,
            "{:?}\n{}",
            r.work,
            r.ir.dump()
        );
        assert!(r.work.units() > 0);
        let facts = r.facts.expect("facts shipped");
        assert!(facts.div_trap_free, "the mod was elided: {facts:?}");
    }

    #[test]
    fn work_scales_with_function_size() {
        let small = run("t := x; return t;");
        let large = run(
            "t := 0.0; for i := 0 to 15 do t := t + v[i] * x; v[i] := t; end; \
             for i := 0 to 15 do t := t + v[i]; end; return t;",
        );
        assert!(large.work.units() > small.work.units());
    }
}
