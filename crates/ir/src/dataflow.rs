//! Iterative dataflow analysis.
//!
//! Provides a dense bitset over virtual registers and the classic
//! backward liveness analysis used by dead-code elimination and (in
//! `warp-codegen`) register allocation. The number of worklist
//! iterations is reported so the host simulator can charge phase-2
//! work for it.

use crate::ir::{BlockId, FuncIr, VirtReg};
use serde::{Deserialize, Serialize};

/// A dense bitset over virtual register numbers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// An empty set sized for `n` registers.
    pub fn new(n: usize) -> Self {
        RegSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `r`, growing the set if `r` is beyond its current
    /// capacity; returns `true` if it was newly inserted.
    pub fn insert(&mut self, r: VirtReg) -> bool {
        let (w, b) = (r.0 as usize / 64, r.0 as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Removes `r`. A register beyond the set's capacity is already
    /// absent, so this never grows (or panics).
    pub fn remove(&mut self, r: VirtReg) {
        let (w, b) = (r.0 as usize / 64, r.0 as usize % 64);
        if let Some(word) = self.words.get_mut(w) {
            *word &= !(1 << b);
        }
    }

    /// Membership test.
    pub fn contains(&self, r: VirtReg) -> bool {
        let (w, b) = (r.0 as usize / 64, r.0 as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    /// The sets may be sized for different register counts: `self`
    /// grows to cover every member of `other` (a zip over the shorter
    /// word vector would silently drop the high members).
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Intersects `other` into `self`; returns `true` if `self`
    /// changed. Words of `self` beyond `other`'s capacity intersect
    /// with the implicit empty set there, i.e. they are cleared.
    pub fn intersect_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            let old = *a;
            *a &= b;
            changed |= *a != old;
        }
        changed
    }

    /// The full set over `n` registers.
    pub fn full(n: usize) -> Self {
        let mut s = RegSet::new(n);
        for r in 0..n {
            s.insert(VirtReg(r as u32));
        }
        s
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VirtReg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(VirtReg((wi * 64 + b) as u32))
                } else {
                    None
                }
            })
        })
    }
}

/// Result of liveness analysis.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
    /// Number of worklist iterations until the fixpoint.
    pub iterations: usize,
}

impl Liveness {
    /// Registers live out of block `b`.
    pub fn out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.index()]
    }

    /// Registers live into block `b`.
    pub fn into_block(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.index()]
    }
}

/// Per-block `use`/`def` summary for liveness.
fn block_use_def(f: &FuncIr, b: usize, nregs: usize) -> (RegSet, RegSet) {
    let mut uses = RegSet::new(nregs);
    let mut defs = RegSet::new(nregs);
    let blk = &f.blocks[b];
    for inst in &blk.insts {
        for u in inst.used_regs() {
            if !defs.contains(u) {
                uses.insert(u);
            }
        }
        if let Some(d) = inst.def() {
            defs.insert(d);
        }
    }
    match &blk.term {
        crate::ir::Term::Branch { cond, .. } => {
            if let Some(r) = cond.as_reg() {
                if !defs.contains(r) {
                    uses.insert(r);
                }
            }
        }
        crate::ir::Term::Return(Some(v)) => {
            if let Some(r) = v.as_reg() {
                if !defs.contains(r) {
                    uses.insert(r);
                }
            }
        }
        _ => {}
    }
    (uses, defs)
}

/// Computes backward liveness over the function.
pub fn liveness(f: &FuncIr) -> Liveness {
    let nblocks = f.blocks.len();
    let nregs = f.vreg_types.len();
    let mut live_in = vec![RegSet::new(nregs); nblocks];
    let mut live_out = vec![RegSet::new(nregs); nblocks];
    let use_def: Vec<(RegSet, RegSet)> = (0..nblocks).map(|b| block_use_def(f, b, nregs)).collect();
    let preds = f.predecessors();

    // Worklist seeded with all blocks in reverse order (approximates
    // reverse dataflow order for our mostly-structured CFGs).
    let mut worklist: Vec<usize> = (0..nblocks).rev().collect();
    let mut on_list = vec![true; nblocks];
    let mut iterations = 0usize;
    while let Some(b) = worklist.pop() {
        on_list[b] = false;
        iterations += 1;
        // live_out[b] = union of live_in of successors
        let succs = f.blocks[b].term.successors();
        let mut new_out = RegSet::new(nregs);
        for s in &succs {
            new_out.union_with(&live_in[s.index()]);
        }
        live_out[b] = new_out;
        // live_in[b] = uses ∪ (live_out − defs)
        let (uses, defs) = &use_def[b];
        let mut new_in = uses.clone();
        let mut out_minus_def = live_out[b].clone();
        for d in defs.iter() {
            out_minus_def.remove(d);
        }
        new_in.union_with(&out_minus_def);
        if new_in != live_in[b] {
            live_in[b] = new_in;
            for p in &preds[b] {
                if !on_list[p.index()] {
                    on_list[p.index()] = true;
                    worklist.push(p.index());
                }
            }
        }
    }
    Liveness {
        live_in,
        live_out,
        iterations,
    }
}

/// Result of the forward *definitely-defined registers* analysis.
///
/// A register is in `defined_in[b]` iff every path from the entry to
/// block `b` writes it before reaching `b` (parameters count as
/// written at entry). The IR verifier uses this to prove def-before-use.
#[derive(Debug, Clone)]
pub struct DefinedRegs {
    /// Registers definitely defined on entry to each block.
    pub defined_in: Vec<RegSet>,
    /// Number of worklist iterations until the fixpoint.
    pub iterations: usize,
}

/// Computes the forward definitely-defined-registers fixpoint (meet =
/// intersection over predecessors; transfer = add each block's defs).
pub fn defined_regs(f: &FuncIr) -> DefinedRegs {
    let nblocks = f.blocks.len();
    let nregs = f.vreg_types.len();
    let mut entry = RegSet::new(nregs);
    for (r, _) in &f.params {
        entry.insert(*r);
    }
    // Non-entry blocks start at top (everything defined) and are only
    // ever narrowed by the meet.
    let mut defined_in: Vec<RegSet> = (0..nblocks)
        .map(|b| {
            if b == 0 {
                entry.clone()
            } else {
                RegSet::full(nregs)
            }
        })
        .collect();
    let defs: Vec<RegSet> = (0..nblocks)
        .map(|b| {
            let mut d = RegSet::new(nregs);
            for inst in &f.blocks[b].insts {
                if let Some(r) = inst.def() {
                    d.insert(r);
                }
            }
            d
        })
        .collect();
    let mut worklist: Vec<usize> = (0..nblocks).collect();
    let mut on_list = vec![true; nblocks];
    let mut iterations = 0usize;
    while let Some(b) = worklist.pop() {
        on_list[b] = false;
        iterations += 1;
        let mut out = defined_in[b].clone();
        out.union_with(&defs[b]);
        for s in f.blocks[b].term.successors() {
            let si = s.index();
            if defined_in[si].intersect_with(&out) && !on_list[si] {
                on_list[si] = true;
                worklist.push(si);
            }
        }
    }
    DefinedRegs {
        defined_in,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(VirtReg(0)));
        assert!(s.insert(VirtReg(129)));
        assert!(!s.insert(VirtReg(0)));
        assert!(s.contains(VirtReg(129)));
        assert!(!s.contains(VirtReg(64)));
        assert_eq!(s.len(), 2);
        let members: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(members, vec![0, 129]);
        s.remove(VirtReg(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regset_union() {
        let mut a = RegSet::new(10);
        a.insert(VirtReg(1));
        let mut b = RegSet::new(10);
        b.insert(VirtReg(2));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 2);
    }

    /// Model-based property test: RegSet against a `HashSet<u32>`
    /// reference model over randomized op sequences whose two operand
    /// sets are deliberately sized for *different* register counts
    /// (ragged word vectors). union/intersect/insert must behave as
    /// set algebra regardless of capacity mismatch.
    #[test]
    fn regset_properties_ragged_sizes() {
        use std::collections::HashSet;
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let members = |s: &RegSet| -> HashSet<u32> { s.iter().map(|r| r.0).collect() };
        for _case in 0..500 {
            // Capacities land on and around word boundaries: 0, 1,
            // 63..65, 127..129, and a larger one.
            let caps = [0usize, 1, 63, 64, 65, 127, 128, 129, 300];
            let ca = caps[(next() % caps.len() as u64) as usize];
            let cb = caps[(next() % caps.len() as u64) as usize];
            let mut a = RegSet::new(ca);
            let mut b = RegSet::new(cb);
            let mut ma: HashSet<u32> = HashSet::new();
            let mut mb: HashSet<u32> = HashSet::new();
            let max_reg = 320u64;
            for _ in 0..(next() % 64) {
                let r = VirtReg((next() % max_reg) as u32);
                match next() % 5 {
                    0 => {
                        assert_eq!(a.insert(r), ma.insert(r.0), "insert {r:?}");
                    }
                    1 => {
                        assert_eq!(b.insert(r), mb.insert(r.0));
                    }
                    2 => {
                        a.remove(r);
                        ma.remove(&r.0);
                    }
                    3 => {
                        let changed = a.union_with(&b);
                        let before = ma.len();
                        ma.extend(&mb);
                        assert_eq!(changed, ma.len() != before, "union changed-flag");
                    }
                    _ => {
                        let before = ma.clone();
                        let changed = a.intersect_with(&b);
                        ma = ma.intersection(&mb).copied().collect();
                        assert_eq!(changed, ma != before, "intersect changed-flag");
                    }
                }
                assert_eq!(members(&a), ma, "membership after op");
                assert_eq!(a.len(), ma.len());
                assert_eq!(a.is_empty(), ma.is_empty());
                for probe in [0u32, 63, 64, 65, 128, 299, 319, 4000] {
                    assert_eq!(a.contains(VirtReg(probe)), ma.contains(&probe));
                }
            }
        }
    }

    #[test]
    fn regset_ragged_union_keeps_high_members() {
        let mut small = RegSet::new(4);
        let mut big = RegSet::new(200);
        big.insert(VirtReg(150));
        assert!(small.union_with(&big), "union must grow and report change");
        assert!(small.contains(VirtReg(150)));
        // And the reverse direction: intersect clears high members not
        // present in the (shorter) other set.
        assert!(big.intersect_with(&RegSet::new(4)));
        assert!(big.is_empty());
        // Out-of-capacity insert grows instead of panicking.
        let mut s = RegSet::new(1);
        assert!(s.insert(VirtReg(1000)));
        assert!(s.contains(VirtReg(1000)));
        s.remove(VirtReg(5000)); // beyond capacity: no-op, no panic
    }

    fn simple_loop_func() -> FuncIr {
        // b0: v0 := 0; v1 := 10; jump b1
        // b1: v2 := v0 < v1; br v2 ? b2 : b3
        // b2: v0 := v0 + 1; jump b1
        // b3: ret v0
        let mut f = FuncIr {
            name: "t".into(),
            params: vec![],
            ret: Some(IrType::Int),
            blocks: vec![],
            arrays: vec![],
            vreg_types: vec![],
        };
        let v0 = f.new_vreg(IrType::Int);
        let v1 = f.new_vreg(IrType::Int);
        let v2 = f.new_vreg(IrType::Int);
        let v3 = f.new_vreg(IrType::Int);
        f.blocks = vec![
            Block {
                insts: vec![
                    Inst::Copy {
                        dst: v0,
                        src: Val::ConstI(0),
                    },
                    Inst::Copy {
                        dst: v1,
                        src: Val::ConstI(10),
                    },
                ],
                term: Term::Jump(BlockId(1)),
            },
            Block {
                insts: vec![Inst::Cmp {
                    kind: warp_target::isa::CmpKind::Lt,
                    ty: IrType::Int,
                    dst: v2,
                    a: Val::Reg(v0),
                    b: Val::Reg(v1),
                }],
                term: Term::Branch {
                    cond: Val::Reg(v2),
                    then_blk: BlockId(2),
                    else_blk: BlockId(3),
                },
            },
            Block {
                insts: vec![
                    Inst::Bin {
                        op: IrBinOp::Add,
                        ty: IrType::Int,
                        dst: v3,
                        a: Val::Reg(v0),
                        b: Val::ConstI(1),
                    },
                    Inst::Copy {
                        dst: v0,
                        src: Val::Reg(v3),
                    },
                ],
                term: Term::Jump(BlockId(1)),
            },
            Block {
                insts: vec![],
                term: Term::Return(Some(Val::Reg(v0))),
            },
        ];
        f
    }

    #[test]
    fn liveness_of_loop() {
        let f = simple_loop_func();
        let lv = liveness(&f);
        // v0 and v1 are live around the loop header.
        assert!(lv.into_block(BlockId(1)).contains(VirtReg(0)));
        assert!(lv.into_block(BlockId(1)).contains(VirtReg(1)));
        // v2 (the comparison) is not live into the header.
        assert!(!lv.into_block(BlockId(1)).contains(VirtReg(2)));
        // v0 live out of the loop body (feeds header and exit).
        assert!(lv.out(BlockId(2)).contains(VirtReg(0)));
        // Entry block needs nothing live-in.
        assert!(lv.into_block(BlockId(0)).is_empty());
        assert!(lv.iterations >= f.blocks.len());
    }

    #[test]
    fn liveness_of_straight_line() {
        let mut f = FuncIr {
            name: "t".into(),
            params: vec![],
            ret: Some(IrType::Int),
            blocks: vec![],
            arrays: vec![],
            vreg_types: vec![],
        };
        let a = f.new_vreg(IrType::Int);
        let b = f.new_vreg(IrType::Int);
        f.blocks = vec![Block {
            insts: vec![
                Inst::Copy {
                    dst: a,
                    src: Val::ConstI(1),
                },
                Inst::Bin {
                    op: IrBinOp::Add,
                    ty: IrType::Int,
                    dst: b,
                    a: Val::Reg(a),
                    b: Val::ConstI(2),
                },
            ],
            term: Term::Return(Some(Val::Reg(b))),
        }];
        let lv = liveness(&f);
        assert!(lv.into_block(BlockId(0)).is_empty());
        assert!(lv.out(BlockId(0)).is_empty());
    }

    #[test]
    fn defined_regs_of_loop() {
        let f = simple_loop_func();
        let dr = defined_regs(&f);
        // Nothing is defined on entry (no params).
        assert!(dr.defined_in[0].is_empty());
        // v0 and v1 are defined entering the header from both paths.
        assert!(dr.defined_in[1].contains(VirtReg(0)));
        assert!(dr.defined_in[1].contains(VirtReg(1)));
        // v3 is defined only along the backedge, so the meet drops it.
        assert!(!dr.defined_in[1].contains(VirtReg(3)));
        // The exit sees everything the header saw.
        assert!(dr.defined_in[3].contains(VirtReg(0)));
        assert!(dr.iterations >= f.blocks.len());
    }

    #[test]
    fn defined_regs_intersects_diamond() {
        // b0: br v0 ? b1 : b2 ; b1 defines v1; b2 defines v2; b3 joins.
        let mut f = FuncIr {
            name: "t".into(),
            params: vec![],
            ret: None,
            blocks: vec![],
            arrays: vec![],
            vreg_types: vec![],
        };
        let c = f.new_vreg(IrType::Int);
        let x = f.new_vreg(IrType::Int);
        let y = f.new_vreg(IrType::Int);
        f.params.push((c, IrType::Int));
        f.blocks = vec![
            Block {
                insts: vec![],
                term: Term::Branch {
                    cond: Val::Reg(c),
                    then_blk: BlockId(1),
                    else_blk: BlockId(2),
                },
            },
            Block {
                insts: vec![Inst::Copy {
                    dst: x,
                    src: Val::ConstI(1),
                }],
                term: Term::Jump(BlockId(3)),
            },
            Block {
                insts: vec![Inst::Copy {
                    dst: y,
                    src: Val::ConstI(2),
                }],
                term: Term::Jump(BlockId(3)),
            },
            Block {
                insts: vec![],
                term: Term::Return(None),
            },
        ];
        let dr = defined_regs(&f);
        assert!(dr.defined_in[3].contains(c));
        assert!(!dr.defined_in[3].contains(x), "x defined on one path only");
        assert!(!dr.defined_in[3].contains(y), "y defined on one path only");
    }
}
