//! Local optimization (compiler phase 2).
//!
//! The paper's phase 2 performs "construction of the flowgraph, local
//! optimization, and computation of global dependencies". This module
//! is the local-optimization part:
//!
//! * constant folding and algebraic simplification,
//! * local value numbering (common-subexpression elimination together
//!   with copy and constant propagation),
//! * global dead-code elimination (built on liveness),
//! * unreachable-block removal.
//!
//! The pass driver iterates to a fixpoint and reports counters that the
//! host simulator charges as compilation work.

use crate::dataflow::liveness;
use crate::ir::*;
use crate::verify::{verify_after, VerifyError};
use serde::{Deserialize, Serialize};
use warp_obs::{Trace, TrackId};
use std::collections::HashMap;
use warp_target::isa::CmpKind;

/// Counters describing the work done and the improvements found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// Constants folded (including algebraic simplifications).
    pub folded: usize,
    /// Redundant expressions replaced by an earlier result.
    pub cse_hits: usize,
    /// Uses rewritten by copy/constant propagation.
    pub propagated: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Unreachable blocks removed.
    pub unreachable_removed: usize,
    /// Fixpoint iterations of the pass pipeline.
    pub iterations: usize,
    /// Total instructions visited across all passes (work units).
    pub insts_visited: usize,
}

impl OptStats {
    fn absorb(&mut self, other: OptStats) {
        self.folded += other.folded;
        self.cse_hits += other.cse_hits;
        self.propagated += other.propagated;
        self.dead_removed += other.dead_removed;
        self.unreachable_removed += other.unreachable_removed;
        self.insts_visited += other.insts_visited;
    }

    /// `true` if any pass changed the function.
    fn changed(&self) -> bool {
        self.folded + self.cse_hits + self.propagated + self.dead_removed + self.unreachable_removed
            > 0
    }
}

/// Runs the full local-optimization pipeline to a fixpoint (bounded at
/// `max_iterations`).
pub fn optimize(f: &mut FuncIr, max_iterations: usize) -> OptStats {
    optimize_verified(f, max_iterations, false).expect("unverified optimize cannot fail")
}

/// Like [`optimize`], but when `verify_each_pass` is set the IR verifier
/// runs after every individual pass, so a miscompile is attributed to
/// the pass that introduced it.
///
/// # Errors
///
/// Returns the first [`VerifyError`] (tagged with the offending pass
/// name) when verification is enabled and a pass breaks an invariant.
pub fn optimize_verified(
    f: &mut FuncIr,
    max_iterations: usize,
    verify_each_pass: bool,
) -> Result<OptStats, VerifyError> {
    optimize_traced(f, max_iterations, verify_each_pass, &Trace::disabled(), TrackId(0))
}

/// Like [`optimize_verified`], but records one span per individual
/// pass invocation (category `"pass"`) and one per post-pass IR
/// verification (category `"verify"`) into `trace` on `track` — the
/// per-pass timeline of the `warpcc --trace` flow. With a disabled
/// trace this is exactly [`optimize_verified`].
///
/// # Errors
///
/// Returns the first [`VerifyError`] when verification is enabled and
/// a pass breaks an invariant.
pub fn optimize_traced(
    f: &mut FuncIr,
    max_iterations: usize,
    verify_each_pass: bool,
    trace: &Trace,
    track: TrackId,
) -> Result<OptStats, VerifyError> {
    type Pass = fn(&mut FuncIr) -> OptStats;
    const PASSES: [(&str, Pass); 5] = [
        ("fold_constants", fold_constants),
        ("local_value_numbering", local_value_numbering),
        ("dead_code_elimination", dead_code_elimination),
        ("remove_unreachable_blocks", remove_unreachable_blocks),
        ("merge_straightline_blocks", merge_straightline_blocks),
    ];
    if verify_each_pass {
        verify_after(f, "input")?;
    }
    let mut total = OptStats::default();
    for _ in 0..max_iterations {
        total.iterations += 1;
        let mut round = OptStats::default();
        for (name, pass) in PASSES {
            {
                let mut span = trace.span("pass", name, track);
                let stats = pass(f);
                span.arg("insts_visited", stats.insts_visited as f64);
                round.absorb(stats);
            }
            if verify_each_pass {
                let _span = trace.span("verify", format!("ir:{name}"), track);
                verify_after(f, name)?;
            }
        }
        let changed = round.changed();
        total.absorb(round);
        if !changed {
            break;
        }
    }
    Ok(total)
}

// --------------------------------------------------------------------
// Constant folding and algebraic simplification
// --------------------------------------------------------------------

fn fold_bin(op: IrBinOp, ty: IrType, a: Val, b: Val) -> Option<Val> {
    match (a, b) {
        (Val::ConstI(x), Val::ConstI(y)) => Some(match op {
            IrBinOp::Add => Val::ConstI(x.wrapping_add(y)),
            IrBinOp::Sub => Val::ConstI(x.wrapping_sub(y)),
            IrBinOp::Mul => Val::ConstI(x.wrapping_mul(y)),
            IrBinOp::Div => Val::ConstF(x as f32 / y as f32),
            IrBinOp::IDiv => {
                if y == 0 {
                    return None;
                }
                Val::ConstI(x.wrapping_div(y))
            }
            IrBinOp::Mod => {
                if y == 0 {
                    return None;
                }
                Val::ConstI(x.wrapping_rem(y))
            }
            IrBinOp::Min => Val::ConstI(x.min(y)),
            IrBinOp::Max => Val::ConstI(x.max(y)),
            IrBinOp::And => Val::ConstI(((x != 0) && (y != 0)) as i32),
            IrBinOp::Or => Val::ConstI(((x != 0) || (y != 0)) as i32),
        }),
        (Val::ConstF(x), Val::ConstF(y)) => Some(match op {
            IrBinOp::Add => Val::ConstF(x + y),
            IrBinOp::Sub => Val::ConstF(x - y),
            IrBinOp::Mul => Val::ConstF(x * y),
            IrBinOp::Div => Val::ConstF(x / y),
            IrBinOp::Min => Val::ConstF(x.min(y)),
            IrBinOp::Max => Val::ConstF(x.max(y)),
            _ => return None,
        }),
        // Algebraic identities. Only exact ones: x*1, x+0, x-0, 0+x,
        // 1*x, x*0 (int only — float 0*NaN differs), x div 1.
        (x, Val::ConstI(1)) if op == IrBinOp::Mul || op == IrBinOp::IDiv => Some(x),
        (x, Val::ConstI(0)) if op == IrBinOp::Add || op == IrBinOp::Sub => Some(x),
        (Val::ConstI(0), x) if op == IrBinOp::Add => Some(x),
        (Val::ConstI(1), x) if op == IrBinOp::Mul => Some(x),
        (_, Val::ConstI(0)) if op == IrBinOp::Mul && ty == IrType::Int => Some(Val::ConstI(0)),
        (Val::ConstI(0), _) if op == IrBinOp::Mul && ty == IrType::Int => Some(Val::ConstI(0)),
        (x, Val::ConstF(c)) if op == IrBinOp::Mul && c == 1.0 => Some(x),
        (Val::ConstF(c), x) if op == IrBinOp::Mul && c == 1.0 => Some(x),
        (x, Val::ConstF(c)) if (op == IrBinOp::Add || op == IrBinOp::Sub) && c == 0.0 => Some(x),
        _ => None,
    }
}

fn fold_un(op: IrUnOp, a: Val) -> Option<Val> {
    Some(match (op, a) {
        (IrUnOp::Neg, Val::ConstI(x)) => Val::ConstI(x.wrapping_neg()),
        (IrUnOp::Neg, Val::ConstF(x)) => Val::ConstF(-x),
        (IrUnOp::Not, Val::ConstI(x)) => Val::ConstI((x == 0) as i32),
        (IrUnOp::ItoF, Val::ConstI(x)) => Val::ConstF(x as f32),
        (IrUnOp::FtoI, Val::ConstF(x)) => Val::ConstI(x as i32),
        (IrUnOp::Abs, Val::ConstI(x)) => Val::ConstI(x.wrapping_abs()),
        (IrUnOp::Abs, Val::ConstF(x)) => Val::ConstF(x.abs()),
        (IrUnOp::Floor, Val::ConstF(x)) => Val::ConstI(x.floor() as i32),
        (IrUnOp::Sqrt, Val::ConstF(x)) => Val::ConstF(x.sqrt()),
        _ => return None,
    })
}

fn fold_cmp(kind: CmpKind, a: Val, b: Val) -> Option<Val> {
    let res = match (a, b) {
        (Val::ConstI(x), Val::ConstI(y)) => kind.eval(x.cmp(&y)),
        (Val::ConstF(x), Val::ConstF(y)) => match x.partial_cmp(&y) {
            Some(ord) => kind.eval(ord),
            None => matches!(kind, CmpKind::Ne),
        },
        _ => return None,
    };
    Some(Val::ConstI(res as i32))
}

/// Folds constant expressions into `Copy` instructions and resolves
/// constant branches into jumps.
pub fn fold_constants(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            stats.insts_visited += 1;
            let replacement = match inst {
                Inst::Bin { op, ty, dst, a, b } => {
                    fold_bin(*op, *ty, *a, *b).map(|v| Inst::Copy { dst: *dst, src: v })
                }
                Inst::Un { op, dst, a, .. } => {
                    fold_un(*op, *a).map(|v| Inst::Copy { dst: *dst, src: v })
                }
                Inst::Cmp { kind, dst, a, b, .. } => {
                    fold_cmp(*kind, *a, *b).map(|v| Inst::Copy { dst: *dst, src: v })
                }
                Inst::Select { dst, cond: Val::ConstI(c), then_v, .. } => Some(if *c != 0 {
                    Inst::Copy { dst: *dst, src: *then_v }
                } else {
                    // Condition statically false: the select keeps the
                    // old value — an identity copy DCE can drop.
                    Inst::Copy { dst: *dst, src: Val::Reg(*dst) }
                }),
                _ => None,
            };
            if let Some(rep) = replacement {
                *inst = rep;
                stats.folded += 1;
            }
        }
        // Constant branches become jumps.
        if let Term::Branch { cond: Val::ConstI(c), then_blk, else_blk } = block.term {
            block.term = Term::Jump(if c != 0 { then_blk } else { else_blk });
            stats.folded += 1;
        }
    }
    stats
}

// --------------------------------------------------------------------
// Local value numbering
// --------------------------------------------------------------------

type Vn = u32;

#[derive(Debug, Clone, Copy, PartialEq)]
enum VnConst {
    I(i32),
    F(u32), // bit pattern, so it is Eq/Hash-able
}

#[derive(Debug, Clone, PartialEq)]
enum ExprKey {
    Bin(IrBinOp, IrType, Vn, Vn),
    Un(IrUnOp, IrType, Vn),
    Cmp(CmpKind, IrType, Vn, Vn),
    Load(ArrayId, Vn),
}

/// Performs local value numbering on every block: CSE plus copy and
/// constant propagation.
pub fn local_value_numbering(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    let nblocks = f.blocks.len();
    for b in 0..nblocks {
        lvn_block(f, b, &mut stats);
    }
    stats
}

fn lvn_block(f: &mut FuncIr, b: usize, stats: &mut OptStats) {
    let mut next_vn: Vn = 0;
    let mut fresh = || {
        let v = next_vn;
        next_vn += 1;
        v
    };
    // Current value number held by each register.
    let mut reg_vn: HashMap<VirtReg, Vn> = HashMap::new();
    // Constant values by VN.
    let mut vn_const: HashMap<Vn, VnConst> = HashMap::new();
    let mut const_vn: Vec<(VnConst, Vn)> = Vec::new();
    // Expression table: key → VN.
    let mut exprs: Vec<(ExprKey, Vn)> = Vec::new();
    // Leader: a register currently holding each VN.
    let mut leader: HashMap<Vn, VirtReg> = HashMap::new();

    // Take the instruction list to appease the borrow checker.
    let mut insts = std::mem::take(&mut f.blocks[b].insts);

    let vn_of_val = |v: Val,
                         reg_vn: &mut HashMap<VirtReg, Vn>,
                         vn_const: &mut HashMap<Vn, VnConst>,
                         const_vn: &mut Vec<(VnConst, Vn)>,
                         leader: &mut HashMap<Vn, VirtReg>,
                         fresh: &mut dyn FnMut() -> Vn|
     -> Vn {
        match v {
            Val::Reg(r) => *reg_vn.entry(r).or_insert_with(|| {
                // First sighting of an incoming value: the register
                // itself represents it from here on.
                let vn = fresh();
                leader.insert(vn, r);
                vn
            }),
            Val::ConstI(c) => {
                let key = VnConst::I(c);
                if let Some((_, vn)) = const_vn.iter().find(|(k, _)| *k == key) {
                    *vn
                } else {
                    let vn = fresh();
                    const_vn.push((key, vn));
                    vn_const.insert(vn, key);
                    vn
                }
            }
            Val::ConstF(c) => {
                let key = VnConst::F(c.to_bits());
                if let Some((_, vn)) = const_vn.iter().find(|(k, _)| *k == key) {
                    *vn
                } else {
                    let vn = fresh();
                    const_vn.push((key, vn));
                    vn_const.insert(vn, key);
                    vn
                }
            }
        }
    };

    // Rewrites a use: constants win, then leaders (copy propagation).
    let rewrite = |v: &mut Val,
                   reg_vn: &mut HashMap<VirtReg, Vn>,
                   vn_const: &mut HashMap<Vn, VnConst>,
                   const_vn: &mut Vec<(VnConst, Vn)>,
                   leader: &mut HashMap<Vn, VirtReg>,
                   fresh: &mut dyn FnMut() -> Vn,
                   stats: &mut OptStats| {
        if let Val::Reg(r) = *v {
            let vn = *reg_vn.entry(r).or_insert_with(&mut *fresh);
            leader.entry(vn).or_insert(r);
            if let Some(c) = vn_const.get(&vn) {
                *v = match *c {
                    VnConst::I(x) => Val::ConstI(x),
                    VnConst::F(bits) => Val::ConstF(f32::from_bits(bits)),
                };
                stats.propagated += 1;
            } else if let Some(l) = leader.get(&vn) {
                if *l != r {
                    *v = Val::Reg(*l);
                    stats.propagated += 1;
                }
            }
        }
        let _ = const_vn;
    };

    // A definition of `dst` with value number `vn`.
    let define = |dst: VirtReg,
                  vn: Vn,
                  reg_vn: &mut HashMap<VirtReg, Vn>,
                  leader: &mut HashMap<Vn, VirtReg>| {
        // If dst was the leader of its old VN, retire that leadership.
        if let Some(old) = reg_vn.get(&dst) {
            if leader.get(old) == Some(&dst) {
                leader.remove(old);
            }
        }
        reg_vn.insert(dst, vn);
        leader.entry(vn).or_insert(dst);
    };

    for inst in &mut insts {
        stats.insts_visited += 1;
        // Rewrite uses first.
        match inst {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                rewrite(a, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats);
                rewrite(b, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats);
            }
            Inst::Un { a, .. } => {
                rewrite(a, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats)
            }
            Inst::Copy { src, .. } => {
                rewrite(src, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats)
            }
            Inst::Load { index, .. } => {
                rewrite(index, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats)
            }
            Inst::Store { index, value, .. } => {
                rewrite(index, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats);
                rewrite(value, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    rewrite(a, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats);
                }
            }
            Inst::Send { value, .. } => {
                rewrite(value, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats)
            }
            Inst::Recv { .. } => {}
            Inst::Select { cond, then_v, .. } => {
                rewrite(cond, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats);
                rewrite(then_v, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh, stats);
            }
        }

        // Number the definition / find redundancies.
        match inst {
            Inst::Copy { dst, src } => {
                let vn =
                    vn_of_val(*src, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh);
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Bin { op, ty, dst, a, b } => {
                let mut va =
                    vn_of_val(*a, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh);
                let mut vb =
                    vn_of_val(*b, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh);
                if op.is_commutative() && va > vb {
                    std::mem::swap(&mut va, &mut vb);
                }
                let key = ExprKey::Bin(*op, *ty, va, vb);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy { dst: d, src: Val::Reg(l) };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Un { op, ty, dst, a } => {
                let va = vn_of_val(*a, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh);
                let key = ExprKey::Un(*op, *ty, va);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy { dst: d, src: Val::Reg(l) };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Cmp { kind, ty, dst, a, b } => {
                let va = vn_of_val(*a, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh);
                let vb = vn_of_val(*b, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh);
                let key = ExprKey::Cmp(*kind, *ty, va, vb);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy { dst: d, src: Val::Reg(l) };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Load { dst, arr, index, .. } => {
                let vi = vn_of_val(*index, &mut reg_vn, &mut vn_const, &mut const_vn, &mut leader, &mut fresh);
                let key = ExprKey::Load(*arr, vi);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy { dst: d, src: Val::Reg(l) };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Store { arr, .. } => {
                // A store invalidates cached loads of the same array.
                let a = *arr;
                exprs.retain(|(k, _)| !matches!(k, ExprKey::Load(ar, _) if *ar == a));
            }
            Inst::Call { dst, .. } => {
                // Arrays are function-local, so calls cannot write our
                // arrays — cached loads survive. The result is opaque.
                if let Some(d) = *dst {
                    let vn = fresh();
                    define(d, vn, &mut reg_vn, &mut leader);
                }
            }
            Inst::Recv { dst, .. } => {
                let vn = fresh();
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Select { dst, .. } => {
                // The result depends on the run-time condition: a fresh
                // value number, never CSE'd.
                let vn = fresh();
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Send { .. } => {}
        }
    }

    // Rewrite terminator uses.
    let term = &mut f.blocks[b].term;
    match term {
        Term::Branch { cond, .. } => {
            if let Val::Reg(r) = *cond {
                if let Some(vn) = reg_vn.get(&r) {
                    if let Some(c) = vn_const.get(vn) {
                        *cond = match *c {
                            VnConst::I(x) => Val::ConstI(x),
                            VnConst::F(bits) => Val::ConstF(f32::from_bits(bits)),
                        };
                        stats.propagated += 1;
                    } else if let Some(l) = leader.get(vn) {
                        if *l != r {
                            *cond = Val::Reg(*l);
                            stats.propagated += 1;
                        }
                    }
                }
            }
        }
        Term::Return(Some(v)) => {
            if let Val::Reg(r) = *v {
                if let Some(vn) = reg_vn.get(&r) {
                    if let Some(c) = vn_const.get(vn) {
                        *v = match *c {
                            VnConst::I(x) => Val::ConstI(x),
                            VnConst::F(bits) => Val::ConstF(f32::from_bits(bits)),
                        };
                        stats.propagated += 1;
                    } else if let Some(l) = leader.get(vn) {
                        if *l != r {
                            *v = Val::Reg(*l);
                            stats.propagated += 1;
                        }
                    }
                }
            }
        }
        _ => {}
    }

    f.blocks[b].insts = insts;
}

// --------------------------------------------------------------------
// Dead code elimination
// --------------------------------------------------------------------

/// Removes instructions whose results are never used (and which have
/// no side effects), using global liveness.
pub fn dead_code_elimination(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    let lv = liveness(f);
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut live = lv.live_out[bi].clone();
        // The terminator's own uses are live at the end of the block.
        match &block.term {
            Term::Branch { cond, .. } => {
                if let Some(r) = cond.as_reg() {
                    live.insert(r);
                }
            }
            Term::Return(Some(v)) => {
                if let Some(r) = v.as_reg() {
                    live.insert(r);
                }
            }
            _ => {}
        }
        // Walk backwards deciding per instruction.
        let mut keep = vec![true; block.insts.len()];
        for (ii, inst) in block.insts.iter().enumerate().rev() {
            stats.insts_visited += 1;
            let dead = match inst.def() {
                Some(d) => !live.contains(d) && inst.is_removable_if_dead(),
                None => false,
            };
            if dead {
                keep[ii] = false;
                stats.dead_removed += 1;
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            for u in inst.used_regs() {
                live.insert(u);
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().unwrap());
    }
    stats
}

// --------------------------------------------------------------------
// Unreachable block removal
// --------------------------------------------------------------------

/// Removes blocks unreachable from the entry and compacts block ids.
pub fn remove_unreachable_blocks(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for s in f.blocks[b].term.successors() {
            stack.push(s.index());
        }
    }
    if reachable.iter().all(|&r| r) {
        return stats;
    }
    // Compact.
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap[i] = next;
            next += 1;
        }
    }
    let old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut b) in old_blocks.into_iter().enumerate() {
        if !reachable[i] {
            stats.unreachable_removed += 1;
            continue;
        }
        match &mut b.term {
            Term::Jump(t) => *t = BlockId(remap[t.index()]),
            Term::Branch { then_blk, else_blk, .. } => {
                *then_blk = BlockId(remap[then_blk.index()]);
                *else_blk = BlockId(remap[else_blk.index()]);
            }
            Term::Return(_) => {}
        }
        f.blocks.push(b);
    }
    stats
}

// --------------------------------------------------------------------
// Block straightening
// --------------------------------------------------------------------

/// Merges `a -> b` when `a` ends in an unconditional jump to `b` and
/// `b` has no other predecessor. This turns diamond joins produced by
/// folded branches back into straight-line code, which re-enables the
/// (local) value numbering across the former block boundary.
pub fn merge_straightline_blocks(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for a in 0..f.blocks.len() {
            let Term::Jump(b) = f.blocks[a].term else { continue };
            if b.index() == a {
                continue; // self-loop
            }
            if preds[b.index()].len() != 1 {
                continue;
            }
            // Merge b into a.
            let b_block = f.blocks[b.index()].clone();
            f.blocks[a].insts.extend(b_block.insts);
            f.blocks[a].term = b_block.term;
            // b becomes unreachable; compact.
            f.blocks[b.index()].insts.clear();
            f.blocks[b.index()].term = Term::Return(None);
            // Detach: nothing jumps to b anymore (a was its only pred).
            stats.unreachable_removed += remove_unreachable_blocks(f).unreachable_removed;
            merged = true;
            break;
        }
        if !merged {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use warp_lang::phase1;

    fn lowered(body: &str) -> FuncIr {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[8]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        lower_module(&checked).expect("lower").remove(0).1
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = lowered("t := 2.0 * 3.0 + 1.0; return t;");
        let stats = optimize(&mut f, 10);
        assert!(stats.folded >= 2, "{stats:?}");
        match f.blocks[0].term {
            Term::Return(Some(Val::ConstF(v))) => assert_eq!(v, 7.0),
            ref t => panic!("expected folded return, got {t:?}\n{}", f.dump()),
        }
    }

    #[test]
    fn folds_integer_identities() {
        let mut f = lowered("i := n * 1 + 0; return float(i);");
        optimize(&mut f, 10);
        // n*1+0 should reduce to just the parameter register feeding ItoF.
        let insts: Vec<_> = f.blocks[0].insts.iter().collect();
        assert!(
            !insts.iter().any(|i| matches!(i, Inst::Bin { op: IrBinOp::Mul, .. })),
            "{}",
            f.dump()
        );
    }

    #[test]
    fn cse_removes_redundant_expression() {
        let mut f = lowered("t := x * x + 1.0; u := x * x + 1.0; return t + u;");
        let stats = optimize(&mut f, 10);
        assert!(stats.cse_hits >= 1, "{stats:?}\n{}", f.dump());
        // Only one multiply should remain.
        let muls = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: IrBinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 1, "{}", f.dump());
    }

    #[test]
    fn cse_of_loads_until_store() {
        let mut f = lowered("t := v[n] + v[n]; v[0] := t; u := v[n]; return t + u;");
        optimize(&mut f, 10);
        // First two v[n] loads fuse; the one after the store must remain.
        let loads = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 2, "{}", f.dump());
    }

    #[test]
    fn dce_removes_unused_computation() {
        let mut f = lowered("t := x * 2.0; u := x * 3.0; return u;");
        let stats = optimize(&mut f, 10);
        assert!(stats.dead_removed >= 1, "{stats:?}");
        let muls = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: IrBinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 1, "{}", f.dump());
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut f = lowered("send(right, x * 2.0); return 0.0;");
        optimize(&mut f, 10);
        assert!(
            f.blocks[0].insts.iter().any(|i| matches!(i, Inst::Send { .. })),
            "{}",
            f.dump()
        );
    }

    #[test]
    fn constant_branch_becomes_jump_and_unreachable_removed() {
        let mut f = lowered("if 1 > 2 then t := 1.0; else t := 2.0; end; return t;");
        let stats = optimize(&mut f, 10);
        assert!(stats.unreachable_removed >= 1, "{stats:?}\n{}", f.dump());
        // Result must be the constant 2.0.
        let last = f.blocks.iter().find(|b| matches!(b.term, Term::Return(_))).unwrap();
        match last.term {
            Term::Return(Some(Val::ConstF(v))) => assert_eq!(v, 2.0),
            ref t => panic!("{t:?}\n{}", f.dump()),
        }
    }

    #[test]
    fn copy_propagation_through_chain() {
        let mut f = lowered("t := x; u := t; return u;");
        optimize(&mut f, 10);
        // Should return the parameter register directly.
        match f.blocks[0].term {
            Term::Return(Some(Val::Reg(r))) => assert_eq!(r, f.params[0].0, "{}", f.dump()),
            ref t => panic!("{t:?}"),
        }
        assert!(f.blocks[0].insts.is_empty(), "{}", f.dump());
    }

    #[test]
    fn loop_body_shrinks_but_loop_survives() {
        let mut f = lowered(
            "t := 0.0; for i := 0 to 7 do t := t + v[i] * 1.0 + 0.0; end; return t;",
        );
        let before = f.inst_count();
        let stats = optimize(&mut f, 10);
        assert!(f.inst_count() < before, "{stats:?}");
        assert_eq!(f.blocks.len(), 3, "{}", f.dump());
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut f = lowered("t := x * x; u := t + t; return min(u, t);");
        optimize(&mut f, 10);
        let once = f.clone();
        let stats = optimize(&mut f, 10);
        assert_eq!(f, once);
        assert_eq!(stats.folded + stats.cse_hits + stats.dead_removed, 0, "{stats:?}");
    }

    #[test]
    fn redefinition_invalidates_leader() {
        // t is redefined between the two uses of t+1.0: the second
        // t+1.0 must NOT be CSE'd to the first.
        let mut f = lowered("t := x; u := t + 1.0; t := u; u := t + 1.0; return u;");
        optimize(&mut f, 10);
        // Semantically the result must be x + 2.0. Count adds: both remain.
        let adds = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: IrBinOp::Add, .. }))
            .count();
        assert_eq!(adds, 2, "{}", f.dump());
    }
}
