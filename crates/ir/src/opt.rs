//! Local optimization (compiler phase 2).
//!
//! The paper's phase 2 performs "construction of the flowgraph, local
//! optimization, and computation of global dependencies". This module
//! is the local-optimization part:
//!
//! * constant folding and algebraic simplification,
//! * local value numbering (common-subexpression elimination together
//!   with copy and constant propagation),
//! * global dead-code elimination (built on liveness),
//! * unreachable-block removal.
//!
//! The pass driver iterates to a fixpoint and reports counters that the
//! host simulator charges as compilation work.

use crate::dataflow::liveness;
use crate::ir::*;
use crate::verify::{verify_after, VerifyError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use warp_obs::{Trace, TrackId};
use warp_target::isa::CmpKind;

/// Counters describing the work done and the improvements found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// Constants folded (including algebraic simplifications).
    pub folded: usize,
    /// Redundant expressions replaced by an earlier result.
    pub cse_hits: usize,
    /// Uses rewritten by copy/constant propagation.
    pub propagated: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Unreachable blocks removed.
    pub unreachable_removed: usize,
    /// Fixpoint iterations of the pass pipeline.
    pub iterations: usize,
    /// Total instructions visited across all passes (work units).
    pub insts_visited: usize,
}

impl OptStats {
    fn absorb(&mut self, other: OptStats) {
        self.folded += other.folded;
        self.cse_hits += other.cse_hits;
        self.propagated += other.propagated;
        self.dead_removed += other.dead_removed;
        self.unreachable_removed += other.unreachable_removed;
        self.insts_visited += other.insts_visited;
    }

    /// `true` if any pass changed the function.
    fn changed(&self) -> bool {
        self.folded + self.cse_hits + self.propagated + self.dead_removed + self.unreachable_removed
            > 0
    }
}

/// Runs the full local-optimization pipeline to a fixpoint (bounded at
/// `max_iterations`).
pub fn optimize(f: &mut FuncIr, max_iterations: usize) -> OptStats {
    optimize_verified(f, max_iterations, false).expect("unverified optimize cannot fail")
}

/// Like [`optimize`], but when `verify_each_pass` is set the IR verifier
/// runs after every individual pass, so a miscompile is attributed to
/// the pass that introduced it.
///
/// # Errors
///
/// Returns the first [`VerifyError`] (tagged with the offending pass
/// name) when verification is enabled and a pass breaks an invariant.
pub fn optimize_verified(
    f: &mut FuncIr,
    max_iterations: usize,
    verify_each_pass: bool,
) -> Result<OptStats, VerifyError> {
    optimize_traced(
        f,
        max_iterations,
        verify_each_pass,
        &Trace::disabled(),
        TrackId(0),
    )
}

/// Like [`optimize_verified`], but records one span per individual
/// pass invocation (category `"pass"`) and one per post-pass IR
/// verification (category `"verify"`) into `trace` on `track` — the
/// per-pass timeline of the `warpcc --trace` flow. With a disabled
/// trace this is exactly [`optimize_verified`].
///
/// # Errors
///
/// Returns the first [`VerifyError`] when verification is enabled and
/// a pass breaks an invariant.
pub fn optimize_traced(
    f: &mut FuncIr,
    max_iterations: usize,
    verify_each_pass: bool,
    trace: &Trace,
    track: TrackId,
) -> Result<OptStats, VerifyError> {
    type Pass = fn(&mut FuncIr) -> OptStats;
    const PASSES: [(&str, Pass); 5] = [
        ("fold_constants", fold_constants),
        ("local_value_numbering", local_value_numbering),
        ("dead_code_elimination", dead_code_elimination),
        ("remove_unreachable_blocks", remove_unreachable_blocks),
        ("merge_straightline_blocks", merge_straightline_blocks),
    ];
    if verify_each_pass {
        verify_after(f, "input")?;
    }
    let mut total = OptStats::default();
    for _ in 0..max_iterations {
        total.iterations += 1;
        let mut round = OptStats::default();
        for (name, pass) in PASSES {
            {
                let mut span = trace.span("pass", name, track);
                let stats = pass(f);
                span.arg("insts_visited", stats.insts_visited as f64);
                round.absorb(stats);
            }
            if verify_each_pass {
                let _span = trace.span("verify", format!("ir:{name}"), track);
                verify_after(f, name)?;
            }
        }
        let changed = round.changed();
        total.absorb(round);
        if !changed {
            break;
        }
    }
    Ok(total)
}

// --------------------------------------------------------------------
// Constant folding and algebraic simplification
// --------------------------------------------------------------------

fn fold_bin(op: IrBinOp, ty: IrType, a: Val, b: Val) -> Option<Val> {
    match (a, b) {
        (Val::ConstI(x), Val::ConstI(y)) => Some(match op {
            IrBinOp::Add => Val::ConstI(x.wrapping_add(y)),
            IrBinOp::Sub => Val::ConstI(x.wrapping_sub(y)),
            IrBinOp::Mul => Val::ConstI(x.wrapping_mul(y)),
            IrBinOp::Div => Val::ConstF(x as f32 / y as f32),
            IrBinOp::IDiv => {
                if y == 0 {
                    return None;
                }
                Val::ConstI(x.wrapping_div(y))
            }
            IrBinOp::Mod => {
                if y == 0 {
                    return None;
                }
                Val::ConstI(x.wrapping_rem(y))
            }
            IrBinOp::Min => Val::ConstI(x.min(y)),
            IrBinOp::Max => Val::ConstI(x.max(y)),
            IrBinOp::And => Val::ConstI(((x != 0) && (y != 0)) as i32),
            IrBinOp::Or => Val::ConstI(((x != 0) || (y != 0)) as i32),
        }),
        (Val::ConstF(x), Val::ConstF(y)) => Some(match op {
            IrBinOp::Add => Val::ConstF(x + y),
            IrBinOp::Sub => Val::ConstF(x - y),
            IrBinOp::Mul => Val::ConstF(x * y),
            IrBinOp::Div => Val::ConstF(x / y),
            IrBinOp::Min => Val::ConstF(x.min(y)),
            IrBinOp::Max => Val::ConstF(x.max(y)),
            _ => return None,
        }),
        // Algebraic identities. Only exact ones: x*1, x+0, x-0, 0+x,
        // 1*x, x*0 (int only — float 0*NaN differs), x div 1.
        (x, Val::ConstI(1)) if op == IrBinOp::Mul || op == IrBinOp::IDiv => Some(x),
        (x, Val::ConstI(0)) if op == IrBinOp::Add || op == IrBinOp::Sub => Some(x),
        (Val::ConstI(0), x) if op == IrBinOp::Add => Some(x),
        (Val::ConstI(1), x) if op == IrBinOp::Mul => Some(x),
        (_, Val::ConstI(0)) if op == IrBinOp::Mul && ty == IrType::Int => Some(Val::ConstI(0)),
        (Val::ConstI(0), _) if op == IrBinOp::Mul && ty == IrType::Int => Some(Val::ConstI(0)),
        (x, Val::ConstF(c)) if op == IrBinOp::Mul && c == 1.0 => Some(x),
        (Val::ConstF(c), x) if op == IrBinOp::Mul && c == 1.0 => Some(x),
        // Signed zeros: x + (-0.0) = x and x - (+0.0) = x for every x
        // (including x = -0.0); the opposite zero sign is NOT an
        // identity there (-0.0 + 0.0 = +0.0), so match the exact bit
        // pattern, not `c == 0.0` which compares both zeros equal.
        (x, Val::ConstF(c)) if op == IrBinOp::Add && c.to_bits() == (-0.0f32).to_bits() => Some(x),
        (x, Val::ConstF(c)) if op == IrBinOp::Sub && c.to_bits() == 0.0f32.to_bits() => Some(x),
        _ => None,
    }
}

fn fold_un(op: IrUnOp, a: Val) -> Option<Val> {
    Some(match (op, a) {
        (IrUnOp::Neg, Val::ConstI(x)) => Val::ConstI(x.wrapping_neg()),
        (IrUnOp::Neg, Val::ConstF(x)) => Val::ConstF(-x),
        (IrUnOp::Not, Val::ConstI(x)) => Val::ConstI((x == 0) as i32),
        (IrUnOp::ItoF, Val::ConstI(x)) => Val::ConstF(x as f32),
        (IrUnOp::FtoI, Val::ConstF(x)) => Val::ConstI(x as i32),
        (IrUnOp::Abs, Val::ConstI(x)) => Val::ConstI(x.wrapping_abs()),
        (IrUnOp::Abs, Val::ConstF(x)) => Val::ConstF(x.abs()),
        (IrUnOp::Floor, Val::ConstF(x)) => Val::ConstI(x.floor() as i32),
        (IrUnOp::Sqrt, Val::ConstF(x)) => Val::ConstF(x.sqrt()),
        _ => return None,
    })
}

fn fold_cmp(kind: CmpKind, a: Val, b: Val) -> Option<Val> {
    let res = match (a, b) {
        (Val::ConstI(x), Val::ConstI(y)) => kind.eval(x.cmp(&y)),
        (Val::ConstF(x), Val::ConstF(y)) => match x.partial_cmp(&y) {
            Some(ord) => kind.eval(ord),
            None => matches!(kind, CmpKind::Ne),
        },
        _ => return None,
    };
    Some(Val::ConstI(res as i32))
}

/// Folds constant expressions into `Copy` instructions and resolves
/// constant branches into jumps.
pub fn fold_constants(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            stats.insts_visited += 1;
            let replacement = match inst {
                Inst::Bin { op, ty, dst, a, b } => {
                    fold_bin(*op, *ty, *a, *b).map(|v| Inst::Copy { dst: *dst, src: v })
                }
                Inst::Un { op, dst, a, .. } => {
                    fold_un(*op, *a).map(|v| Inst::Copy { dst: *dst, src: v })
                }
                Inst::Cmp {
                    kind, dst, a, b, ..
                } => fold_cmp(*kind, *a, *b).map(|v| Inst::Copy { dst: *dst, src: v }),
                Inst::Select {
                    dst,
                    cond: Val::ConstI(c),
                    then_v,
                    ..
                } => Some(if *c != 0 {
                    Inst::Copy {
                        dst: *dst,
                        src: *then_v,
                    }
                } else {
                    // Condition statically false: the select keeps the
                    // old value — an identity copy DCE can drop.
                    Inst::Copy {
                        dst: *dst,
                        src: Val::Reg(*dst),
                    }
                }),
                _ => None,
            };
            if let Some(rep) = replacement {
                *inst = rep;
                stats.folded += 1;
            }
        }
        // Constant branches become jumps.
        if let Term::Branch {
            cond: Val::ConstI(c),
            then_blk,
            else_blk,
        } = block.term
        {
            block.term = Term::Jump(if c != 0 { then_blk } else { else_blk });
            stats.folded += 1;
        }
    }
    stats
}

// --------------------------------------------------------------------
// Local value numbering
// --------------------------------------------------------------------

type Vn = u32;

#[derive(Debug, Clone, Copy, PartialEq)]
enum VnConst {
    I(i32),
    F(u32), // bit pattern, so it is Eq/Hash-able
}

#[derive(Debug, Clone, PartialEq)]
enum ExprKey {
    Bin(IrBinOp, IrType, Vn, Vn),
    Un(IrUnOp, IrType, Vn),
    Cmp(CmpKind, IrType, Vn, Vn),
    Load(ArrayId, Vn),
}

/// Performs local value numbering on every block: CSE plus copy and
/// constant propagation.
pub fn local_value_numbering(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    let nblocks = f.blocks.len();
    for b in 0..nblocks {
        lvn_block(f, b, &mut stats);
    }
    stats
}

fn lvn_block(f: &mut FuncIr, b: usize, stats: &mut OptStats) {
    let mut next_vn: Vn = 0;
    let mut fresh = || {
        let v = next_vn;
        next_vn += 1;
        v
    };
    // Current value number held by each register.
    let mut reg_vn: HashMap<VirtReg, Vn> = HashMap::new();
    // Constant values by VN.
    let mut vn_const: HashMap<Vn, VnConst> = HashMap::new();
    let mut const_vn: Vec<(VnConst, Vn)> = Vec::new();
    // Expression table: key → VN.
    let mut exprs: Vec<(ExprKey, Vn)> = Vec::new();
    // Leader: a register currently holding each VN.
    let mut leader: HashMap<Vn, VirtReg> = HashMap::new();

    // Take the instruction list to appease the borrow checker.
    let mut insts = std::mem::take(&mut f.blocks[b].insts);

    let vn_of_val = |v: Val,
                     reg_vn: &mut HashMap<VirtReg, Vn>,
                     vn_const: &mut HashMap<Vn, VnConst>,
                     const_vn: &mut Vec<(VnConst, Vn)>,
                     leader: &mut HashMap<Vn, VirtReg>,
                     fresh: &mut dyn FnMut() -> Vn|
     -> Vn {
        match v {
            Val::Reg(r) => *reg_vn.entry(r).or_insert_with(|| {
                // First sighting of an incoming value: the register
                // itself represents it from here on.
                let vn = fresh();
                leader.insert(vn, r);
                vn
            }),
            Val::ConstI(c) => {
                let key = VnConst::I(c);
                if let Some((_, vn)) = const_vn.iter().find(|(k, _)| *k == key) {
                    *vn
                } else {
                    let vn = fresh();
                    const_vn.push((key, vn));
                    vn_const.insert(vn, key);
                    vn
                }
            }
            Val::ConstF(c) => {
                let key = VnConst::F(c.to_bits());
                if let Some((_, vn)) = const_vn.iter().find(|(k, _)| *k == key) {
                    *vn
                } else {
                    let vn = fresh();
                    const_vn.push((key, vn));
                    vn_const.insert(vn, key);
                    vn
                }
            }
        }
    };

    // Rewrites a use: constants win, then leaders (copy propagation).
    let rewrite = |v: &mut Val,
                   reg_vn: &mut HashMap<VirtReg, Vn>,
                   vn_const: &mut HashMap<Vn, VnConst>,
                   const_vn: &mut Vec<(VnConst, Vn)>,
                   leader: &mut HashMap<Vn, VirtReg>,
                   fresh: &mut dyn FnMut() -> Vn,
                   stats: &mut OptStats| {
        if let Val::Reg(r) = *v {
            let vn = *reg_vn.entry(r).or_insert_with(&mut *fresh);
            leader.entry(vn).or_insert(r);
            if let Some(c) = vn_const.get(&vn) {
                *v = match *c {
                    VnConst::I(x) => Val::ConstI(x),
                    VnConst::F(bits) => Val::ConstF(f32::from_bits(bits)),
                };
                stats.propagated += 1;
            } else if let Some(l) = leader.get(&vn) {
                if *l != r {
                    *v = Val::Reg(*l);
                    stats.propagated += 1;
                }
            }
        }
        let _ = const_vn;
    };

    // A definition of `dst` with value number `vn`.
    let define = |dst: VirtReg,
                  vn: Vn,
                  reg_vn: &mut HashMap<VirtReg, Vn>,
                  leader: &mut HashMap<Vn, VirtReg>| {
        // If dst was the leader of its old VN, retire that leadership.
        if let Some(old) = reg_vn.get(&dst) {
            if leader.get(old) == Some(&dst) {
                leader.remove(old);
            }
        }
        reg_vn.insert(dst, vn);
        leader.entry(vn).or_insert(dst);
    };

    for inst in &mut insts {
        stats.insts_visited += 1;
        // Rewrite uses first.
        match inst {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                rewrite(
                    a,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                    stats,
                );
                rewrite(
                    b,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                    stats,
                );
            }
            Inst::Un { a, .. } => rewrite(
                a,
                &mut reg_vn,
                &mut vn_const,
                &mut const_vn,
                &mut leader,
                &mut fresh,
                stats,
            ),
            Inst::Copy { src, .. } => rewrite(
                src,
                &mut reg_vn,
                &mut vn_const,
                &mut const_vn,
                &mut leader,
                &mut fresh,
                stats,
            ),
            Inst::Load { index, .. } => rewrite(
                index,
                &mut reg_vn,
                &mut vn_const,
                &mut const_vn,
                &mut leader,
                &mut fresh,
                stats,
            ),
            Inst::Store { index, value, .. } => {
                rewrite(
                    index,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                    stats,
                );
                rewrite(
                    value,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                    stats,
                );
            }
            Inst::Call { args, .. } => {
                for a in args {
                    rewrite(
                        a,
                        &mut reg_vn,
                        &mut vn_const,
                        &mut const_vn,
                        &mut leader,
                        &mut fresh,
                        stats,
                    );
                }
            }
            Inst::Send { value, .. } => rewrite(
                value,
                &mut reg_vn,
                &mut vn_const,
                &mut const_vn,
                &mut leader,
                &mut fresh,
                stats,
            ),
            Inst::Recv { .. } => {}
            Inst::Select { cond, then_v, .. } => {
                rewrite(
                    cond,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                    stats,
                );
                rewrite(
                    then_v,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                    stats,
                );
            }
        }

        // Number the definition / find redundancies.
        match inst {
            Inst::Copy { dst, src } => {
                let vn = vn_of_val(
                    *src,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                );
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Bin { op, ty, dst, a, b } => {
                let mut va = vn_of_val(
                    *a,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                );
                let mut vb = vn_of_val(
                    *b,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                );
                if op.is_commutative() && va > vb {
                    std::mem::swap(&mut va, &mut vb);
                }
                let key = ExprKey::Bin(*op, *ty, va, vb);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy {
                            dst: d,
                            src: Val::Reg(l),
                        };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Un { op, ty, dst, a } => {
                let va = vn_of_val(
                    *a,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                );
                let key = ExprKey::Un(*op, *ty, va);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy {
                            dst: d,
                            src: Val::Reg(l),
                        };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Cmp {
                kind,
                ty,
                dst,
                a,
                b,
            } => {
                let va = vn_of_val(
                    *a,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                );
                let vb = vn_of_val(
                    *b,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                );
                let key = ExprKey::Cmp(*kind, *ty, va, vb);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy {
                            dst: d,
                            src: Val::Reg(l),
                        };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Load {
                dst, arr, index, ..
            } => {
                let vi = vn_of_val(
                    *index,
                    &mut reg_vn,
                    &mut vn_const,
                    &mut const_vn,
                    &mut leader,
                    &mut fresh,
                );
                let key = ExprKey::Load(*arr, vi);
                if let Some((_, vn)) = exprs.iter().find(|(k, _)| *k == key) {
                    if let Some(l) = leader.get(vn).copied() {
                        let d = *dst;
                        *inst = Inst::Copy {
                            dst: d,
                            src: Val::Reg(l),
                        };
                        stats.cse_hits += 1;
                        define(d, *vn, &mut reg_vn, &mut leader);
                        continue;
                    }
                }
                let vn = fresh();
                exprs.push((key, vn));
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Store { arr, .. } => {
                // A store invalidates cached loads of the same array.
                let a = *arr;
                exprs.retain(|(k, _)| !matches!(k, ExprKey::Load(ar, _) if *ar == a));
            }
            Inst::Call { dst, .. } => {
                // Arrays are function-local, so calls cannot write our
                // arrays — cached loads survive. The result is opaque.
                if let Some(d) = *dst {
                    let vn = fresh();
                    define(d, vn, &mut reg_vn, &mut leader);
                }
            }
            Inst::Recv { dst, .. } => {
                let vn = fresh();
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Select { dst, .. } => {
                // The result depends on the run-time condition: a fresh
                // value number, never CSE'd.
                let vn = fresh();
                define(*dst, vn, &mut reg_vn, &mut leader);
            }
            Inst::Send { .. } => {}
        }
    }

    // Rewrite terminator uses.
    let term = &mut f.blocks[b].term;
    match term {
        Term::Branch { cond, .. } => {
            if let Val::Reg(r) = *cond {
                if let Some(vn) = reg_vn.get(&r) {
                    if let Some(c) = vn_const.get(vn) {
                        *cond = match *c {
                            VnConst::I(x) => Val::ConstI(x),
                            VnConst::F(bits) => Val::ConstF(f32::from_bits(bits)),
                        };
                        stats.propagated += 1;
                    } else if let Some(l) = leader.get(vn) {
                        if *l != r {
                            *cond = Val::Reg(*l);
                            stats.propagated += 1;
                        }
                    }
                }
            }
        }
        Term::Return(Some(v)) => {
            if let Val::Reg(r) = *v {
                if let Some(vn) = reg_vn.get(&r) {
                    if let Some(c) = vn_const.get(vn) {
                        *v = match *c {
                            VnConst::I(x) => Val::ConstI(x),
                            VnConst::F(bits) => Val::ConstF(f32::from_bits(bits)),
                        };
                        stats.propagated += 1;
                    } else if let Some(l) = leader.get(vn) {
                        if *l != r {
                            *v = Val::Reg(*l);
                            stats.propagated += 1;
                        }
                    }
                }
            }
        }
        _ => {}
    }

    f.blocks[b].insts = insts;
}

// --------------------------------------------------------------------
// Dead code elimination
// --------------------------------------------------------------------

/// Removes instructions whose results are never used (and which have
/// no side effects), using global liveness.
pub fn dead_code_elimination(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    let lv = liveness(f);
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut live = lv.live_out[bi].clone();
        // The terminator's own uses are live at the end of the block.
        match &block.term {
            Term::Branch { cond, .. } => {
                if let Some(r) = cond.as_reg() {
                    live.insert(r);
                }
            }
            Term::Return(Some(v)) => {
                if let Some(r) = v.as_reg() {
                    live.insert(r);
                }
            }
            _ => {}
        }
        // Walk backwards deciding per instruction.
        let mut keep = vec![true; block.insts.len()];
        for (ii, inst) in block.insts.iter().enumerate().rev() {
            stats.insts_visited += 1;
            let dead = match inst.def() {
                Some(d) => !live.contains(d) && inst.is_removable_if_dead(),
                None => false,
            };
            if dead {
                keep[ii] = false;
                stats.dead_removed += 1;
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            for u in inst.used_regs() {
                live.insert(u);
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().unwrap());
    }
    stats
}

// --------------------------------------------------------------------
// Unreachable block removal
// --------------------------------------------------------------------

/// Removes blocks unreachable from the entry and compacts block ids.
pub fn remove_unreachable_blocks(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for s in f.blocks[b].term.successors() {
            stack.push(s.index());
        }
    }
    if reachable.iter().all(|&r| r) {
        return stats;
    }
    // Compact.
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap[i] = next;
            next += 1;
        }
    }
    let old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut b) in old_blocks.into_iter().enumerate() {
        if !reachable[i] {
            stats.unreachable_removed += 1;
            continue;
        }
        match &mut b.term {
            Term::Jump(t) => *t = BlockId(remap[t.index()]),
            Term::Branch {
                then_blk, else_blk, ..
            } => {
                *then_blk = BlockId(remap[then_blk.index()]);
                *else_blk = BlockId(remap[else_blk.index()]);
            }
            Term::Return(_) => {}
        }
        f.blocks.push(b);
    }
    stats
}

// --------------------------------------------------------------------
// Block straightening
// --------------------------------------------------------------------

/// Merges `a -> b` when `a` ends in an unconditional jump to `b` and
/// `b` has no other predecessor. This turns diamond joins produced by
/// folded branches back into straight-line code, which re-enables the
/// (local) value numbering across the former block boundary.
pub fn merge_straightline_blocks(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for a in 0..f.blocks.len() {
            let Term::Jump(b) = f.blocks[a].term else {
                continue;
            };
            if b.index() == a {
                continue; // self-loop
            }
            if preds[b.index()].len() != 1 {
                continue;
            }
            // Merge b into a.
            let b_block = f.blocks[b.index()].clone();
            f.blocks[a].insts.extend(b_block.insts);
            f.blocks[a].term = b_block.term;
            // b becomes unreachable; compact.
            f.blocks[b.index()].insts.clear();
            f.blocks[b.index()].term = Term::Return(None);
            // Detach: nothing jumps to b anymore (a was its only pred).
            stats.unreachable_removed += remove_unreachable_blocks(f).unreachable_removed;
            merged = true;
            break;
        }
        if !merged {
            break;
        }
    }
    stats
}

// --------------------------------------------------------------------
// Fact-driven optimization
// --------------------------------------------------------------------

/// What [`apply_facts`] changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactOptStats {
    /// Statically-infeasible branch edges replaced by jumps.
    pub branches_pruned: usize,
    /// Trapping divisions rewritten into trap-free forms because the
    /// analysis proved the operand range (the runtime divide-by-zero
    /// check disappears with the divide).
    pub trap_checks_elided: usize,
}

impl FactOptStats {
    /// `true` if any rewrite was applied.
    pub fn changed(&self) -> bool {
        self.branches_pruned + self.trap_checks_elided > 0
    }
}

/// Applies the rewrites proven sound by [`crate::absint::analyze`].
///
/// Every rewrite re-checks the instruction shape it was derived from,
/// so a stale rewrite list (the function changed since the analysis
/// ran) degrades to a no-op instead of a miscompile:
///
/// * [`Rewrite::PruneThen`](crate::absint::Rewrite::PruneThen) / [`Rewrite::PruneElse`](crate::absint::Rewrite::PruneElse) — the branch
///   condition is a proven constant; the infeasible edge is removed by
///   turning the branch into a jump.
/// * [`Rewrite::ModIdentity`](crate::absint::Rewrite::ModIdentity) — `a mod c` with `a` proven in
///   `[0, c-1]` is `a` itself; the divide (and its divide-by-zero trap
///   check) is replaced by a copy.
/// * [`Rewrite::DivToZero`](crate::absint::Rewrite::DivToZero) — `a idiv c` with `a` proven in
///   `[0, c-1]` is `0`.
pub fn apply_facts(f: &mut FuncIr, rewrites: &[crate::absint::Rewrite]) -> FactOptStats {
    use crate::absint::Rewrite;
    let mut stats = FactOptStats::default();
    for rw in rewrites {
        match *rw {
            Rewrite::PruneElse { block } => {
                let Some(b) = f.blocks.get_mut(block as usize) else {
                    continue;
                };
                if let Term::Branch { then_blk, .. } = b.term {
                    b.term = Term::Jump(then_blk);
                    stats.branches_pruned += 1;
                }
            }
            Rewrite::PruneThen { block } => {
                let Some(b) = f.blocks.get_mut(block as usize) else {
                    continue;
                };
                if let Term::Branch { else_blk, .. } = b.term {
                    b.term = Term::Jump(else_blk);
                    stats.branches_pruned += 1;
                }
            }
            Rewrite::ModIdentity { block, inst } => {
                let Some(i) = f
                    .blocks
                    .get_mut(block as usize)
                    .and_then(|b| b.insts.get_mut(inst as usize))
                else {
                    continue;
                };
                if let Inst::Bin {
                    op: IrBinOp::Mod,
                    ty: IrType::Int,
                    dst,
                    a,
                    b: Val::ConstI(c),
                } = *i
                {
                    if c > 0 {
                        *i = Inst::Copy { dst, src: a };
                        stats.trap_checks_elided += 1;
                    }
                }
            }
            Rewrite::DivToZero { block, inst } => {
                let Some(i) = f
                    .blocks
                    .get_mut(block as usize)
                    .and_then(|b| b.insts.get_mut(inst as usize))
                else {
                    continue;
                };
                if let Inst::Bin {
                    op: IrBinOp::IDiv,
                    ty: IrType::Int,
                    dst,
                    b: Val::ConstI(c),
                    ..
                } = *i
                {
                    if c > 0 {
                        *i = Inst::Copy {
                            dst,
                            src: Val::ConstI(0),
                        };
                        stats.trap_checks_elided += 1;
                    }
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use warp_lang::phase1;

    fn lowered(body: &str) -> FuncIr {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[8]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        lower_module(&checked).expect("lower").remove(0).1
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = lowered("t := 2.0 * 3.0 + 1.0; return t;");
        let stats = optimize(&mut f, 10);
        assert!(stats.folded >= 2, "{stats:?}");
        match f.blocks[0].term {
            Term::Return(Some(Val::ConstF(v))) => assert_eq!(v, 7.0),
            ref t => panic!("expected folded return, got {t:?}\n{}", f.dump()),
        }
    }

    #[test]
    fn folds_integer_identities() {
        let mut f = lowered("i := n * 1 + 0; return float(i);");
        optimize(&mut f, 10);
        // n*1+0 should reduce to just the parameter register feeding ItoF.
        let insts: Vec<_> = f.blocks[0].insts.iter().collect();
        assert!(
            !insts.iter().any(|i| matches!(
                i,
                Inst::Bin {
                    op: IrBinOp::Mul,
                    ..
                }
            )),
            "{}",
            f.dump()
        );
    }

    #[test]
    fn cse_removes_redundant_expression() {
        let mut f = lowered("t := x * x + 1.0; u := x * x + 1.0; return t + u;");
        let stats = optimize(&mut f, 10);
        assert!(stats.cse_hits >= 1, "{stats:?}\n{}", f.dump());
        // Only one multiply should remain.
        let muls = f.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: IrBinOp::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(muls, 1, "{}", f.dump());
    }

    #[test]
    fn cse_of_loads_until_store() {
        let mut f = lowered("t := v[n] + v[n]; v[0] := t; u := v[n]; return t + u;");
        optimize(&mut f, 10);
        // First two v[n] loads fuse; the one after the store must remain.
        let loads = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 2, "{}", f.dump());
    }

    #[test]
    fn dce_removes_unused_computation() {
        let mut f = lowered("t := x * 2.0; u := x * 3.0; return u;");
        let stats = optimize(&mut f, 10);
        assert!(stats.dead_removed >= 1, "{stats:?}");
        let muls = f.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: IrBinOp::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(muls, 1, "{}", f.dump());
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut f = lowered("send(right, x * 2.0); return 0.0;");
        optimize(&mut f, 10);
        assert!(
            f.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Send { .. })),
            "{}",
            f.dump()
        );
    }

    #[test]
    fn constant_branch_becomes_jump_and_unreachable_removed() {
        let mut f = lowered("if 1 > 2 then t := 1.0; else t := 2.0; end; return t;");
        let stats = optimize(&mut f, 10);
        assert!(stats.unreachable_removed >= 1, "{stats:?}\n{}", f.dump());
        // Result must be the constant 2.0.
        let last = f
            .blocks
            .iter()
            .find(|b| matches!(b.term, Term::Return(_)))
            .unwrap();
        match last.term {
            Term::Return(Some(Val::ConstF(v))) => assert_eq!(v, 2.0),
            ref t => panic!("{t:?}\n{}", f.dump()),
        }
    }

    #[test]
    fn copy_propagation_through_chain() {
        let mut f = lowered("t := x; u := t; return u;");
        optimize(&mut f, 10);
        // Should return the parameter register directly.
        match f.blocks[0].term {
            Term::Return(Some(Val::Reg(r))) => assert_eq!(r, f.params[0].0, "{}", f.dump()),
            ref t => panic!("{t:?}"),
        }
        assert!(f.blocks[0].insts.is_empty(), "{}", f.dump());
    }

    #[test]
    fn loop_body_shrinks_but_loop_survives() {
        let mut f =
            lowered("t := 0.0; for i := 0 to 7 do t := t + v[i] * 1.0 + 0.0; end; return t;");
        let before = f.inst_count();
        let stats = optimize(&mut f, 10);
        assert!(f.inst_count() < before, "{stats:?}");
        assert_eq!(f.blocks.len(), 3, "{}", f.dump());
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut f = lowered("t := x * x; u := t + t; return min(u, t);");
        optimize(&mut f, 10);
        let once = f.clone();
        let stats = optimize(&mut f, 10);
        assert_eq!(f, once);
        assert_eq!(
            stats.folded + stats.cse_hits + stats.dead_removed,
            0,
            "{stats:?}"
        );
    }

    /// Satellite audit of `fold_bin`: every constant fold (and every
    /// algebraic-identity fold with a runtime operand) must produce a
    /// value bit-identical to what the strict interpreter computes at
    /// runtime for the same operation, over boundary operands —
    /// `i32::MIN`, `-1`, `0`, subnormals, signed zeros, infinities and
    /// NaN.
    #[test]
    fn fold_bin_bit_identical_to_strict_interpreter() {
        use warp_target::decode::decode_op;
        use warp_target::exec::compute;
        use warp_target::fu::FuKind;
        use warp_target::interp::Value;
        use warp_target::isa::{Op, Opcode, Operand, Reg};

        fn opcode_for(op: IrBinOp, ty: IrType) -> Opcode {
            match (op, ty) {
                (IrBinOp::Add, IrType::Int) => Opcode::IAdd,
                (IrBinOp::Sub, IrType::Int) => Opcode::ISub,
                (IrBinOp::Mul, IrType::Int) => Opcode::IMul,
                (IrBinOp::Min, IrType::Int) => Opcode::IMin,
                (IrBinOp::Max, IrType::Int) => Opcode::IMax,
                (IrBinOp::Add, IrType::Float) => Opcode::FAdd,
                (IrBinOp::Sub, IrType::Float) => Opcode::FSub,
                (IrBinOp::Mul, IrType::Float) => Opcode::FMul,
                (IrBinOp::Min, IrType::Float) => Opcode::FMin,
                (IrBinOp::Max, IrType::Float) => Opcode::FMax,
                (IrBinOp::Div, _) => Opcode::FDiv,
                (IrBinOp::IDiv, _) => Opcode::IDiv,
                (IrBinOp::Mod, _) => Opcode::IMod,
                (IrBinOp::And, _) => Opcode::BAnd,
                (IrBinOp::Or, _) => Opcode::BOr,
            }
        }

        // Runs one op on the strict interpreter core. `regs[0]` backs
        // `Val::Reg(VirtReg(0))` operands.
        fn machine(op: IrBinOp, ty: IrType, a: Val, b: Val, reg0: Value) -> Option<Value> {
            let to_operand = |v: Val| match v {
                Val::ConstI(k) => Operand::ImmI(k),
                Val::ConstF(c) => Operand::ImmF(c),
                Val::Reg(_) => Operand::Reg(Reg(0)),
            };
            let decoded = decode_op(
                FuKind::Alu,
                &Op {
                    opcode: opcode_for(op, ty),
                    dst: Some(Reg(1)),
                    a: Some(to_operand(a)),
                    b: Some(to_operand(b)),
                },
            );
            let regs = [reg0, Value::I(0)];
            let defs = [true, true];
            compute(true, &regs, &defs, &[], &[], &decoded)
                .ok()
                .map(|(v, _)| v)
        }

        let fold_result = |v: Val, reg0: Value| match v {
            Val::ConstI(k) => Value::I(k),
            Val::ConstF(c) => Value::F(c),
            Val::Reg(_) => reg0,
        };

        let ints = [
            i32::MIN,
            i32::MIN + 1,
            -7,
            -1,
            0,
            1,
            2,
            7,
            i32::MAX - 1,
            i32::MAX,
        ];
        let subnormal = f32::from_bits(1); // smallest positive subnormal
        let floats = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            subnormal,
            -subnormal,
            f32::MIN_POSITIVE,
            2.5,
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
        ];
        let int_ops = [
            IrBinOp::Add,
            IrBinOp::Sub,
            IrBinOp::Mul,
            IrBinOp::Div,
            IrBinOp::IDiv,
            IrBinOp::Mod,
            IrBinOp::Min,
            IrBinOp::Max,
            IrBinOp::And,
            IrBinOp::Or,
        ];
        let flt_ops = [
            IrBinOp::Add,
            IrBinOp::Sub,
            IrBinOp::Mul,
            IrBinOp::Div,
            IrBinOp::Min,
            IrBinOp::Max,
        ];

        let mut checked = 0usize;
        let mut case = |op: IrBinOp, ty: IrType, a: Val, b: Val, reg0: Value| {
            let Some(folded) = fold_bin(op, ty, a, b) else {
                return; // no fold: runtime semantics untouched
            };
            let got = fold_result(folded, reg0);
            let want = machine(op, ty, a, b, reg0)
                .unwrap_or_else(|| panic!("fold {op:?}/{ty:?} {a:?} {b:?} but machine traps"));
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "fold {op:?}/{ty:?} {a:?} {b:?}: folded {got:?}, machine {want:?}"
            );
            checked += 1;
        };

        // Constant-constant folds.
        for &op in &int_ops {
            let ty = if op == IrBinOp::Div {
                IrType::Float
            } else {
                IrType::Int
            };
            for &x in &ints {
                for &y in &ints {
                    case(op, ty, Val::ConstI(x), Val::ConstI(y), Value::I(0));
                }
            }
        }
        for &op in &flt_ops {
            for &x in &floats {
                for &y in &floats {
                    case(
                        op,
                        IrType::Float,
                        Val::ConstF(x),
                        Val::ConstF(y),
                        Value::F(0.0),
                    );
                }
            }
        }
        // Identity folds with a runtime register operand: the folded
        // `Val::Reg` must match the machine result for every concrete
        // register value, including -0.0 and NaN.
        let r = Val::Reg(VirtReg(0));
        for &x in &ints {
            for &c in &ints {
                for &op in &int_ops {
                    let ty = if op == IrBinOp::Div {
                        IrType::Float
                    } else {
                        IrType::Int
                    };
                    case(op, ty, r, Val::ConstI(c), Value::I(x));
                    case(op, ty, Val::ConstI(c), r, Value::I(x));
                }
            }
        }
        for &x in &floats {
            for &c in &floats {
                for &op in &flt_ops {
                    case(op, IrType::Float, r, Val::ConstF(c), Value::F(x));
                    case(op, IrType::Float, Val::ConstF(c), r, Value::F(x));
                }
            }
        }
        assert!(checked > 500, "only {checked} folds exercised");
    }

    #[test]
    fn fold_preserves_signed_zero_identities() {
        // x + 0.0 with x = -0.0 yields +0.0 at runtime, so it must NOT
        // fold to x; x + (-0.0) and x - 0.0 are true identities.
        let r = Val::Reg(VirtReg(0));
        assert_eq!(
            fold_bin(IrBinOp::Add, IrType::Float, r, Val::ConstF(0.0)),
            None
        );
        assert_eq!(
            fold_bin(IrBinOp::Sub, IrType::Float, r, Val::ConstF(-0.0)),
            None
        );
        assert_eq!(
            fold_bin(IrBinOp::Add, IrType::Float, r, Val::ConstF(-0.0)),
            Some(r)
        );
        assert_eq!(
            fold_bin(IrBinOp::Sub, IrType::Float, r, Val::ConstF(0.0)),
            Some(r)
        );
    }

    #[test]
    fn apply_facts_rewrites_and_is_shape_defensive() {
        use crate::absint::Rewrite;
        let mut f = lowered("i := n mod 8; if i < 99 then t := 1.0; else t := 2.0; end; return t;");
        // Find the mod instruction and the branch block.
        let (mb, mi) = f
            .blocks
            .iter()
            .enumerate()
            .find_map(|(bi, b)| {
                b.insts
                    .iter()
                    .position(|i| {
                        matches!(
                            i,
                            Inst::Bin {
                                op: IrBinOp::Mod,
                                ..
                            }
                        )
                    })
                    .map(|ii| (bi as u32, ii as u32))
            })
            .expect("mod lowered");
        let bb = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, Term::Branch { .. }))
            .expect("branch lowered") as u32;
        let stats = apply_facts(
            &mut f,
            &[
                Rewrite::ModIdentity {
                    block: mb,
                    inst: mi,
                },
                Rewrite::PruneElse { block: bb },
                // Stale rewrites aimed at wrong shapes: all no-ops.
                Rewrite::DivToZero {
                    block: mb,
                    inst: mi,
                },
                Rewrite::PruneThen { block: bb },
                Rewrite::ModIdentity { block: 99, inst: 0 },
            ],
        );
        assert_eq!(stats.branches_pruned, 1);
        assert_eq!(stats.trap_checks_elided, 1);
        assert!(matches!(
            f.blocks[mb as usize].insts[mi as usize],
            Inst::Copy { .. }
        ));
        assert!(matches!(f.blocks[bb as usize].term, Term::Jump(_)));
    }

    #[test]
    fn redefinition_invalidates_leader() {
        // t is redefined between the two uses of t+1.0: the second
        // t+1.0 must NOT be CSE'd to the first.
        let mut f = lowered("t := x; u := t + 1.0; t := u; u := t + 1.0; return u;");
        optimize(&mut f, 10);
        // Semantically the result must be x + 2.0. Count adds: both remain.
        let adds = f.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: IrBinOp::Add,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(adds, 2, "{}", f.dump());
    }
}
