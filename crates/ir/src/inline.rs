//! Procedure inlining (paper §5.1).
//!
//! The paper observes that "parallel compilation is of marginal value
//! when compiling small functions" and concludes that *procedure
//! inlining* "should be included in the compiler if the source programs
//! consist of many small functions. Not only will procedure inlining
//! allow the code generator to perform a better job, the increase in
//! size of each function operated upon will also improve the speedup
//! obtained by the parallel compiler."
//!
//! This pass implements that extension at the AST level, where the
//! master process could run it right after the setup parse and before
//! distributing functions. A call is inlined when the callee:
//!
//! * is in the same section (the language already requires this),
//! * is small enough ([`InlinePolicy::max_callee_stmts`] body
//!   statements),
//! * is not (mutually) recursive, and
//! * has *simple return structure*: `return` appears only as the last
//!   statement of the body (so the body can be spliced in place; early
//!   returns would need control-flow surgery).
//!
//! Callee parameters and locals are renamed with a unique prefix and
//! the body is spliced before the call site; a call in expression
//! position becomes a fresh result variable.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use warp_lang::ast::*;
use warp_lang::span::Span;

/// Inlining policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InlinePolicy {
    /// Inline callees with at most this many statements (counted
    /// recursively).
    pub max_callee_stmts: usize,
    /// Maximum rounds (bounds growth through chains of calls).
    pub max_rounds: usize,
    /// After inlining, remove helper functions that were inlined
    /// somewhere and have no remaining call sites — they no longer
    /// need their own function master.
    pub drop_subsumed: bool,
}

impl Default for InlinePolicy {
    fn default() -> Self {
        InlinePolicy {
            max_callee_stmts: 40,
            max_rounds: 3,
            drop_subsumed: false,
        }
    }
}

/// What the pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InlineStats {
    /// Call sites replaced by callee bodies.
    pub inlined_calls: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Functions whose bodies grew.
    pub functions_changed: usize,
    /// Subsumed helper functions removed (`drop_subsumed`).
    pub functions_dropped: usize,
    /// Names of callees that were inlined at least once (in order of
    /// first inlining).
    pub inlined_names: Vec<String>,
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| {
            1 + match s {
                Stmt::If {
                    arms, else_body, ..
                } => {
                    arms.iter().map(|a| count_stmts(&a.body)).sum::<usize>()
                        + count_stmts(else_body)
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => count_stmts(body),
                _ => 0,
            }
        })
        .sum()
}

/// `true` if `return` appears only as the final statement (or not at
/// all): the body can be spliced without control-flow surgery.
fn simple_return_structure(body: &[Stmt]) -> bool {
    fn no_returns(stmts: &[Stmt]) -> bool {
        stmts.iter().all(|s| match s {
            Stmt::Return { .. } => false,
            Stmt::If {
                arms, else_body, ..
            } => arms.iter().all(|a| no_returns(&a.body)) && no_returns(else_body),
            Stmt::While { body, .. } | Stmt::For { body, .. } => no_returns(body),
            _ => true,
        })
    }
    match body.split_last() {
        None => true,
        Some((last, init)) => {
            no_returns(init)
                && match last {
                    Stmt::Return { .. } => true,
                    other => no_returns(std::slice::from_ref(other)),
                }
        }
    }
}

/// `true` if `f` calls (transitively reaches) itself within `fns`.
fn is_recursive(name: &str, fns: &HashMap<String, &Function>) -> bool {
    fn callees(stmts: &[Stmt], out: &mut Vec<String>) {
        fn in_expr(e: &Expr, out: &mut Vec<String>) {
            match &e.kind {
                ExprKind::Call { name, args } => {
                    out.push(name.clone());
                    args.iter().for_each(|a| in_expr(a, out));
                }
                ExprKind::Binary { lhs, rhs, .. } => {
                    in_expr(lhs, out);
                    in_expr(rhs, out);
                }
                ExprKind::Unary { expr, .. } => in_expr(expr, out),
                ExprKind::LValue(lv) => lv.indices.iter().for_each(|i| in_expr(i, out)),
                _ => {}
            }
        }
        for s in stmts {
            match s {
                Stmt::Assign { target, value, .. } => {
                    target.indices.iter().for_each(|i| in_expr(i, out));
                    in_expr(value, out);
                }
                Stmt::If {
                    arms, else_body, ..
                } => {
                    for a in arms {
                        in_expr(&a.cond, out);
                        callees(&a.body, out);
                    }
                    callees(else_body, out);
                }
                Stmt::While { cond, body, .. } => {
                    in_expr(cond, out);
                    callees(body, out);
                }
                Stmt::For {
                    from, to, by, body, ..
                } => {
                    in_expr(from, out);
                    in_expr(to, out);
                    if let Some(b) = by {
                        in_expr(b, out);
                    }
                    callees(body, out);
                }
                Stmt::Call { name, args, .. } => {
                    out.push(name.clone());
                    args.iter().for_each(|a| in_expr(a, out));
                }
                Stmt::Send { value, .. } => in_expr(value, out),
                Stmt::Receive { target, .. } => target.indices.iter().for_each(|i| in_expr(i, out)),
                Stmt::Return { value: Some(v), .. } => in_expr(v, out),
                Stmt::Return { value: None, .. } => {}
            }
        }
    }
    // DFS over the call graph.
    let mut stack = vec![name.to_string()];
    let mut seen = std::collections::HashSet::new();
    while let Some(cur) = stack.pop() {
        let Some(f) = fns.get(&cur) else { continue };
        let mut cs = Vec::new();
        callees(&f.body, &mut cs);
        for c in cs {
            if c == name {
                return true;
            }
            if seen.insert(c.clone()) {
                stack.push(c);
            }
        }
    }
    false
}

/// Runs the inliner over a module, returning the transformed module.
///
/// The result should be re-checked (`warp_lang::sema::check`) before
/// further compilation; the transformation preserves well-typedness by
/// construction, so re-checking a previously clean module succeeds.
pub fn inline_module(module: &Module, policy: &InlinePolicy) -> (Module, InlineStats) {
    let mut module = module.clone();
    let mut stats = InlineStats::default();
    let mut ever_inlined: std::collections::HashSet<(usize, String)> =
        std::collections::HashSet::new();
    for _ in 0..policy.max_rounds {
        stats.rounds += 1;
        let mut changed = false;
        for (si, section) in module.sections.iter_mut().enumerate() {
            let before = stats.inlined_names.len();
            changed |= inline_section(section, policy, &mut stats);
            for name in stats.inlined_names[before..].iter() {
                ever_inlined.insert((si, name.clone()));
            }
        }
        if !changed {
            break;
        }
    }
    if policy.drop_subsumed {
        for (si, section) in module.sections.iter_mut().enumerate() {
            // Remaining call targets anywhere in the section.
            let mut called: Vec<String> = Vec::new();
            for f in &section.functions {
                collect_callees(&f.body, &mut called);
            }
            let keep_at_least_one = section.functions.len();
            section.functions.retain(|f| {
                let subsumed =
                    ever_inlined.contains(&(si, f.name.clone())) && !called.contains(&f.name);
                if subsumed {
                    stats.functions_dropped += 1;
                }
                !subsumed
            });
            // A section must keep at least one function.
            assert!(
                !section.functions.is_empty(),
                "drop_subsumed removed every function of a section ({keep_at_least_one} before)"
            );
        }
    }
    (module, stats)
}

fn collect_callees(stmts: &[Stmt], out: &mut Vec<String>) {
    fn in_expr(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Call { name, args } => {
                out.push(name.clone());
                args.iter().for_each(|a| in_expr(a, out));
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                in_expr(lhs, out);
                in_expr(rhs, out);
            }
            ExprKind::Unary { expr, .. } => in_expr(expr, out),
            ExprKind::LValue(lv) => lv.indices.iter().for_each(|i| in_expr(i, out)),
            _ => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Assign { target, value, .. } => {
                target.indices.iter().for_each(|i| in_expr(i, out));
                in_expr(value, out);
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for a in arms {
                    in_expr(&a.cond, out);
                    collect_callees(&a.body, out);
                }
                collect_callees(else_body, out);
            }
            Stmt::While { cond, body, .. } => {
                in_expr(cond, out);
                collect_callees(body, out);
            }
            Stmt::For {
                from, to, by, body, ..
            } => {
                in_expr(from, out);
                in_expr(to, out);
                if let Some(b) = by {
                    in_expr(b, out);
                }
                collect_callees(body, out);
            }
            Stmt::Call { name, args, .. } => {
                out.push(name.clone());
                args.iter().for_each(|a| in_expr(a, out));
            }
            Stmt::Send { value, .. } => in_expr(value, out),
            Stmt::Receive { target, .. } => target.indices.iter().for_each(|i| in_expr(i, out)),
            Stmt::Return { value: Some(v), .. } => in_expr(v, out),
            Stmt::Return { value: None, .. } => {}
        }
    }
}

fn inline_section(section: &mut Section, policy: &InlinePolicy, stats: &mut InlineStats) -> bool {
    // Snapshot callees (cloned) that qualify for inlining.
    let originals: HashMap<String, Function> = section
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.clone()))
        .collect();
    let by_ref: HashMap<String, &Function> =
        originals.iter().map(|(k, v)| (k.clone(), v)).collect();
    let inlinable: HashMap<String, Function> = originals
        .iter()
        .filter(|(name, f)| {
            count_stmts(&f.body) <= policy.max_callee_stmts
                && simple_return_structure(&f.body)
                && !is_recursive(name, &by_ref)
        })
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    if inlinable.is_empty() {
        return false;
    }
    let mut changed = false;
    for f in &mut section.functions {
        let mut ctx = Inliner {
            inlinable: &inlinable,
            self_name: f.name.clone(),
            // Seed from the variable count so prefixes stay unique
            // across rounds (each round appends variables).
            counter: f.vars.len(),
            new_vars: Vec::new(),
            inlined: 0,
            inlined_names: Vec::new(),
        };
        let body = std::mem::take(&mut f.body);
        f.body = ctx.stmts(body);
        f.vars.extend(ctx.new_vars);
        if ctx.inlined > 0 {
            stats.inlined_calls += ctx.inlined;
            stats.functions_changed += 1;
            stats.inlined_names.extend(ctx.inlined_names);
            changed = true;
        }
    }
    changed
}

struct Inliner<'a> {
    inlinable: &'a HashMap<String, Function>,
    self_name: String,
    counter: usize,
    new_vars: Vec<VarDecl>,
    inlined: usize,
    inlined_names: Vec<String>,
}

impl Inliner<'_> {
    fn fresh_prefix(&mut self) -> String {
        self.counter += 1;
        format!("inl{}_{}_", self.counter, self.self_name)
    }

    fn stmts(&mut self, stmts: Vec<Stmt>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.stmt(s, &mut out);
        }
        out
    }

    fn stmt(&mut self, s: Stmt, out: &mut Vec<Stmt>) {
        match s {
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let value = self.expr(value, out);
                let target = self.lvalue(target, out);
                out.push(Stmt::Assign {
                    target,
                    value,
                    span,
                });
            }
            Stmt::If {
                arms,
                else_body,
                span,
            } => {
                // Conditions are hoisted before the `if` (they are
                // evaluated exactly once on entry in either form).
                let arms = arms
                    .into_iter()
                    .map(|a| IfArm {
                        cond: self.expr(a.cond, out),
                        body: self.stmts(a.body),
                    })
                    .collect();
                let else_body = self.stmts(else_body);
                out.push(Stmt::If {
                    arms,
                    else_body,
                    span,
                });
            }
            Stmt::While { cond, body, span } => {
                // A call in a while condition would need re-evaluation
                // per iteration; leave such conditions untouched.
                let body = self.stmts(body);
                out.push(Stmt::While { cond, body, span });
            }
            Stmt::For {
                var,
                from,
                to,
                downto,
                by,
                body,
                span,
            } => {
                let from = self.expr(from, out);
                let to = self.expr(to, out);
                let by = by.map(|b| self.expr(b, out));
                let body = self.stmts(body);
                out.push(Stmt::For {
                    var,
                    from,
                    to,
                    downto,
                    by,
                    body,
                    span,
                });
            }
            Stmt::Call { name, args, span } => {
                if let Some(callee) = self.inlinable.get(&name).cloned() {
                    let args = args
                        .into_iter()
                        .map(|a| self.expr(a, out))
                        .collect::<Vec<_>>();
                    self.splice(&callee, args, out);
                } else {
                    let args = args.into_iter().map(|a| self.expr(a, out)).collect();
                    out.push(Stmt::Call { name, args, span });
                }
            }
            Stmt::Send { dir, value, span } => {
                let value = self.expr(value, out);
                out.push(Stmt::Send { dir, value, span });
            }
            Stmt::Receive { dir, target, span } => {
                let target = self.lvalue(target, out);
                out.push(Stmt::Receive { dir, target, span });
            }
            Stmt::Return { value, span } => {
                let value = value.map(|v| self.expr(v, out));
                out.push(Stmt::Return { value, span });
            }
        }
    }

    fn lvalue(&mut self, lv: LValue, out: &mut Vec<Stmt>) -> LValue {
        LValue {
            name: lv.name,
            indices: lv.indices.into_iter().map(|i| self.expr(i, out)).collect(),
            span: lv.span,
        }
    }

    /// Rewrites an expression, hoisting inlinable calls into `out` and
    /// replacing them with result variables.
    fn expr(&mut self, e: Expr, out: &mut Vec<Stmt>) -> Expr {
        let span = e.span;
        match e.kind {
            ExprKind::Call { name, args } => {
                let args: Vec<Expr> = args.into_iter().map(|a| self.expr(a, out)).collect();
                if let Some(callee) = self.inlinable.get(&name).cloned() {
                    if let Some(ret_ty) = callee.ret.clone() {
                        let result = self.splice_with_result(&callee, args, ret_ty, out);
                        return Expr {
                            kind: ExprKind::LValue(LValue {
                                name: result,
                                indices: vec![],
                                span,
                            }),
                            span,
                        };
                    }
                }
                Expr {
                    kind: ExprKind::Call { name, args },
                    span,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(self.expr(*lhs, out)),
                    rhs: Box::new(self.expr(*rhs, out)),
                },
                span,
            },
            ExprKind::Unary { op, expr } => Expr {
                kind: ExprKind::Unary {
                    op,
                    expr: Box::new(self.expr(*expr, out)),
                },
                span,
            },
            ExprKind::LValue(lv) => {
                let lv = self.lvalue(lv, out);
                Expr {
                    kind: ExprKind::LValue(lv),
                    span,
                }
            }
            other => Expr { kind: other, span },
        }
    }

    /// Splices a procedure call (no result).
    fn splice(&mut self, callee: &Function, args: Vec<Expr>, out: &mut Vec<Stmt>) {
        let prefix = self.fresh_prefix();
        self.emit_body(callee, args, &prefix, out);
        self.inlined += 1;
        self.inlined_names.push(callee.name.clone());
    }

    /// Splices a function call, returning the result variable's name.
    fn splice_with_result(
        &mut self,
        callee: &Function,
        args: Vec<Expr>,
        ret_ty: Type,
        out: &mut Vec<Stmt>,
    ) -> String {
        let prefix = self.fresh_prefix();
        let result = format!("{prefix}ret");
        self.new_vars.push(VarDecl {
            name: result.clone(),
            ty: ret_ty,
            span: Span::point(0),
        });
        let ret_expr = self.emit_body(callee, args, &prefix, out);
        let value = ret_expr.unwrap_or(Expr {
            kind: ExprKind::IntLit(0),
            span: Span::point(0),
        });
        out.push(Stmt::Assign {
            target: LValue {
                name: result.clone(),
                indices: vec![],
                span: Span::point(0),
            },
            value,
            span: Span::point(0),
        });
        self.inlined += 1;
        self.inlined_names.push(callee.name.clone());
        result
    }

    /// Emits the renamed callee body (minus a trailing return); returns
    /// the renamed return expression if there was one.
    fn emit_body(
        &mut self,
        callee: &Function,
        args: Vec<Expr>,
        prefix: &str,
        out: &mut Vec<Stmt>,
    ) -> Option<Expr> {
        // Parameters become locals initialized from the arguments.
        let mut rename: HashMap<String, String> = HashMap::new();
        for (p, arg) in callee.params.iter().zip(args) {
            let new = format!("{prefix}{}", p.name);
            rename.insert(p.name.clone(), new.clone());
            self.new_vars.push(VarDecl {
                name: new.clone(),
                ty: p.ty.clone(),
                span: p.span,
            });
            out.push(Stmt::Assign {
                target: LValue {
                    name: new,
                    indices: vec![],
                    span: p.span,
                },
                value: arg,
                span: p.span,
            });
        }
        for v in &callee.vars {
            let new = format!("{prefix}{}", v.name);
            rename.insert(v.name.clone(), new.clone());
            self.new_vars.push(VarDecl {
                name: new,
                ty: v.ty.clone(),
                span: v.span,
            });
        }
        // Split a trailing return off the body.
        let mut body = callee.body.clone();
        let trailing_ret = match body.last() {
            Some(Stmt::Return { .. }) => match body.pop() {
                Some(Stmt::Return { value, .. }) => value,
                _ => unreachable!(),
            },
            _ => None,
        };
        for s in body {
            out.push(rename_stmt(s, &rename));
        }
        trailing_ret.map(|e| rename_expr(e, &rename))
    }
}

fn rename_stmt(s: Stmt, map: &HashMap<String, String>) -> Stmt {
    let rl = |lv: LValue| LValue {
        name: map.get(&lv.name).cloned().unwrap_or(lv.name),
        indices: lv
            .indices
            .into_iter()
            .map(|i| rename_expr(i, map))
            .collect(),
        span: lv.span,
    };
    match s {
        Stmt::Assign {
            target,
            value,
            span,
        } => Stmt::Assign {
            target: rl(target),
            value: rename_expr(value, map),
            span,
        },
        Stmt::If {
            arms,
            else_body,
            span,
        } => Stmt::If {
            arms: arms
                .into_iter()
                .map(|a| IfArm {
                    cond: rename_expr(a.cond, map),
                    body: a.body.into_iter().map(|s| rename_stmt(s, map)).collect(),
                })
                .collect(),
            else_body: else_body.into_iter().map(|s| rename_stmt(s, map)).collect(),
            span,
        },
        Stmt::While { cond, body, span } => Stmt::While {
            cond: rename_expr(cond, map),
            body: body.into_iter().map(|s| rename_stmt(s, map)).collect(),
            span,
        },
        Stmt::For {
            var,
            from,
            to,
            downto,
            by,
            body,
            span,
        } => Stmt::For {
            var: map.get(&var).cloned().unwrap_or(var),
            from: rename_expr(from, map),
            to: rename_expr(to, map),
            downto,
            by: by.map(|b| rename_expr(b, map)),
            body: body.into_iter().map(|s| rename_stmt(s, map)).collect(),
            span,
        },
        Stmt::Call { name, args, span } => Stmt::Call {
            name,
            args: args.into_iter().map(|a| rename_expr(a, map)).collect(),
            span,
        },
        Stmt::Send { dir, value, span } => Stmt::Send {
            dir,
            value: rename_expr(value, map),
            span,
        },
        Stmt::Receive { dir, target, span } => Stmt::Receive {
            dir,
            target: rl(target),
            span,
        },
        Stmt::Return { value, span } => Stmt::Return {
            value: value.map(|v| rename_expr(v, map)),
            span,
        },
    }
}

fn rename_expr(e: Expr, map: &HashMap<String, String>) -> Expr {
    let span = e.span;
    match e.kind {
        ExprKind::LValue(lv) => Expr {
            kind: ExprKind::LValue(LValue {
                name: map.get(&lv.name).cloned().unwrap_or(lv.name),
                indices: lv
                    .indices
                    .into_iter()
                    .map(|i| rename_expr(i, map))
                    .collect(),
                span: lv.span,
            }),
            span,
        },
        ExprKind::Binary { op, lhs, rhs } => Expr {
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(rename_expr(*lhs, map)),
                rhs: Box::new(rename_expr(*rhs, map)),
            },
            span,
        },
        ExprKind::Unary { op, expr } => Expr {
            kind: ExprKind::Unary {
                op,
                expr: Box::new(rename_expr(*expr, map)),
            },
            span,
        },
        ExprKind::Call { name, args } => Expr {
            kind: ExprKind::Call {
                name,
                args: args.into_iter().map(|a| rename_expr(a, map)).collect(),
            },
            span,
        },
        other => Expr { kind: other, span },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_lang::interp::{AstInterp, RtValue};
    use warp_lang::{phase1, sema};

    fn inline_src(src: &str) -> (Module, InlineStats) {
        let checked = phase1(src).expect("phase1");
        let (m, stats) = inline_module(&checked.module, &InlinePolicy::default());
        // The transformed module must still check.
        let (_, diags) = sema::check(m.clone());
        assert!(!diags.has_errors(), "inlined module fails check: {diags:?}");
        (m, stats)
    }

    const CALLER: &str = "module m; section a on cells 0..0;\n\
        function sq(y: float): float begin return y * y; end;\n\
        function f(x: float): float var t: float; begin t := sq(x) + sq(x + 1.0); return t; end;\n\
        end;";

    #[test]
    fn expression_calls_inlined() {
        let (m, stats) = inline_src(CALLER);
        assert_eq!(stats.inlined_calls, 2);
        let f = m.sections[0]
            .functions
            .iter()
            .find(|f| f.name == "f")
            .unwrap();
        // No calls remain in f.
        let has_call = format!("{:?}", f.body).contains("Call");
        assert!(!has_call, "{:#?}", f.body);
        // Fresh locals were added.
        assert!(f.vars.len() > 1);
    }

    #[test]
    fn inlined_module_is_semantically_identical() {
        let checked = phase1(CALLER).unwrap();
        let (inlined, _) = inline_module(&checked.module, &InlinePolicy::default());
        let (chk2, d) = sema::check(inlined);
        assert!(!d.has_errors());
        for x in [-3.0f32, 0.0, 1.5, 7.25] {
            let mut a = AstInterp::new(&checked, 0, 1_000_000);
            let mut b = AstInterp::new(&chk2, 0, 1_000_000);
            let ra = a.call("f", &[RtValue::F(x)]).unwrap();
            let rb = b.call("f", &[RtValue::F(x)]).unwrap();
            assert_eq!(ra, rb, "x={x}");
        }
    }

    #[test]
    fn procedure_call_statement_inlined() {
        let src = "module m; section a on cells 0..0;\n\
            function ping() begin send(right, 1.0); end;\n\
            function f() begin ping(); ping(); return; end;\n\
            end;";
        let (m, stats) = inline_src(src);
        assert_eq!(stats.inlined_calls, 2);
        let f = m.sections[0]
            .functions
            .iter()
            .find(|f| f.name == "f")
            .unwrap();
        let sends = format!("{:?}", f.body).matches("Send").count();
        assert_eq!(sends, 2);
    }

    #[test]
    fn recursion_not_inlined() {
        let src = "module m; section a on cells 0..0;\n\
            function odd(k: int): int var r: int; begin \
              if k = 0 then r := 0; else r := even(k - 1); end; return r; end;\n\
            function even(k: int): int var r: int; begin \
              if k = 0 then r := 1; else r := odd(k - 1); end; return r; end;\n\
            function f(): int begin return even(4); end;\n\
            end;";
        let checked = phase1(src).expect("phase1");
        let (_, stats) = inline_module(&checked.module, &InlinePolicy::default());
        assert_eq!(stats.inlined_calls, 0, "mutual recursion must not inline");
    }

    #[test]
    fn early_returns_block_inlining() {
        let src = "module m; section a on cells 0..0;\n\
            function pick(y: float): float begin \
              if y > 0.0 then return y; end; return 0.0 - y; end;\n\
            function f(x: float): float begin return pick(x); end;\n\
            end;";
        let checked = phase1(src).expect("phase1");
        let (_, stats) = inline_module(&checked.module, &InlinePolicy::default());
        assert_eq!(stats.inlined_calls, 0);
    }

    #[test]
    fn large_callees_respect_policy() {
        let mut body = String::new();
        for _ in 0..60 {
            body.push_str("u := u + 1.0; ");
        }
        let src = format!(
            "module m; section a on cells 0..0;\n\
             function big(y: float): float var u: float; begin u := y; {body} return u; end;\n\
             function f(x: float): float begin return big(x); end;\n\
             end;"
        );
        let checked = phase1(&src).expect("phase1");
        let (_, stats) = inline_module(
            &checked.module,
            &InlinePolicy {
                max_callee_stmts: 40,
                max_rounds: 3,
                drop_subsumed: false,
            },
        );
        assert_eq!(stats.inlined_calls, 0);
        let (_, stats) = inline_module(
            &checked.module,
            &InlinePolicy {
                max_callee_stmts: 100,
                max_rounds: 3,
                drop_subsumed: false,
            },
        );
        assert_eq!(stats.inlined_calls, 1);
    }

    #[test]
    fn chains_inline_through_rounds() {
        let src = "module m; section a on cells 0..0;\n\
            function one(): float begin return 1.0; end;\n\
            function two(): float begin return one() + one(); end;\n\
            function f(): float begin return two(); end;\n\
            end;";
        let (m, stats) = inline_src(src);
        assert!(stats.rounds >= 2);
        let f = m.sections[0]
            .functions
            .iter()
            .find(|f| f.name == "f")
            .unwrap();
        assert!(!format!("{:?}", f.body).contains("Call"), "{stats:?}");
        // Verify semantics end to end.
        let (chk, d) = sema::check(m);
        assert!(!d.has_errors());
        let mut it = AstInterp::new(&chk, 0, 100_000);
        assert_eq!(it.call("f", &[]).unwrap(), Some(RtValue::F(2.0)));
    }

    #[test]
    fn call_in_loop_bound_inlined_outside() {
        let src = "module m; section a on cells 0..0;\n\
            function lim(): int begin return 7; end;\n\
            function f(): float var t: float; i: int; begin \
              t := 0.0; for i := 0 to lim() do t := t + 1.0; end; return t; end;\n\
            end;";
        let (m, stats) = inline_src(src);
        assert_eq!(stats.inlined_calls, 1);
        let (chk, d) = sema::check(m);
        assert!(!d.has_errors());
        let mut it = AstInterp::new(&chk, 0, 100_000);
        assert_eq!(it.call("f", &[]).unwrap(), Some(RtValue::F(8.0)));
    }
}
