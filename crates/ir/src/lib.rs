//! # warp-ir
//!
//! Compiler **phase 2** for the Warp parallel compiler: "construction
//! of the flowgraph, local optimization, and computation of global
//! dependencies" (paper §3.2).
//!
//! * [`ir`] — the three-address IR over virtual registers and abstract
//!   arrays, organized as a CFG of basic blocks;
//! * [`lower`] — AST → IR lowering (one function at a time — the unit
//!   of parallel compilation);
//! * [`opt`] — constant folding, local value numbering (CSE + copy and
//!   constant propagation), dead-code elimination, unreachable-block
//!   removal, iterated to a fixpoint;
//! * [`dataflow`] — bitsets and iterative liveness analysis;
//! * [`loops`] — dominators, natural loops, loop nesting depth;
//! * [`deps`] — data-dependence graphs with ZIV/SIV subscript tests and
//!   the RecMII bound used by the software pipeliner;
//! * [`inline`] — procedure inlining, the paper's §5.1 extension for
//!   programs of many small functions;
//! * [`phase2`](mod@phase2) — the driver a function master runs, with deterministic
//!   work counters for the host simulator;
//! * [`verify`] — the IR verifier (CFG well-formedness, types,
//!   def-before-use) run at every pass boundary under
//!   `verify_each_pass`.
//!
//! # Example
//!
//! ```
//! use warp_lang::phase1;
//! use warp_ir::phase2::phase2;
//!
//! let src = "module m; section a on cells 0..0;\n\
//!            function f(x: float): float\n\
//!            var t: float; v: float[8]; i: int;\n\
//!            begin t := 0.0; for i := 0 to 7 do t := t + v[i] * x; end; return t; end; end;";
//! let checked = phase1(src)?;
//! let f = &checked.module.sections[0].functions[0];
//! let result = phase2(f, &checked.sections[0].symbol_tables[0],
//!                     &checked.sections[0].signatures)?;
//! assert_eq!(result.loops.loops.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod dataflow;
pub mod deps;
pub mod eval;
pub mod ifconv;
pub mod inline;
pub mod ir;
pub mod loops;
pub mod lower;
pub mod opt;
pub mod phase2;
pub mod unroll;
pub mod verify;

pub use absint::{analyze, Analysis, DeadEdge, FactSet, LoopBound, Rewrite, Site};
pub use deps::{DepEdge, DepGraph, DepKind};
pub use eval::{eval_ir, EvalOutcome, EvalTrap};
pub use ifconv::{if_convert, IfConvPolicy, IfConvStats};
pub use inline::{inline_module, InlinePolicy, InlineStats};
pub use ir::{ArrayId, Block, BlockId, FuncIr, Inst, IrBinOp, IrType, IrUnOp, Term, Val, VirtReg};
pub use loops::{Loop, LoopInfo};
pub use lower::{lower_function, lower_module, LowerError};
pub use opt::{apply_facts, optimize, optimize_traced, optimize_verified, FactOptStats, OptStats};
pub use phase2::{
    phase2, phase2_opts, phase2_traced, phase2_verified, phase2_with_unroll, Phase2Error,
    Phase2Result, Phase2Work,
};
pub use unroll::{unroll_loops, UnrollPolicy, UnrollStats};
pub use verify::{verify_after, verify_func, VerifyError};
