//! Simulated processes and their activity scripts.
//!
//! A process is a straight-line script of [`Step`]s; `Fork` starts
//! children and `Join` waits for all of them — exactly the
//! parent/child-only communication discipline of the paper's process
//! hierarchy (§3.2: "processes on the same level of the hierarchy
//! operate completely independent of each other").
//!
//! Scripts carry no wall-clock quantities: CPU work is in abstract
//! units and transfers in bytes, both scaled by the engine's cost
//! model at run time. The process *name* given to
//! [`ProcessSpec::new`] is load-bearing downstream — it is the key
//! `SimReport::cpu_with_prefix` selects on, and the name of every
//! span the process produces in a trace (see the naming constants in
//! `parcc::simspec`).

use serde::{Deserialize, Serialize};

/// The flavor of a process, which determines startup and CPU cost
/// modeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcKind {
    /// A heavy-weight UNIX C process (master, section masters): fast
    /// startup, no GC.
    C,
    /// A Common Lisp process (function masters, the sequential
    /// compiler): core-image download at startup, GC overhead on every
    /// burst.
    Lisp,
}

/// One activity in a process script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Execute `units` of compiler work on the process's workstation.
    /// Lisp processes pay GC and paging multipliers.
    Cpu {
        /// Abstract work units.
        units: u64,
    },
    /// Transfer `bytes` over the shared Ethernet (messages between
    /// master processes, diagnostics, result collection).
    Net {
        /// Payload size.
        bytes: u64,
    },
    /// Read or write `bytes` on the file server: crosses the Ethernet,
    /// then occupies the file-server disk.
    Disk {
        /// Payload size.
        bytes: u64,
    },
    /// Set the process's live heap to `words` (affects GC and the
    /// workstation's paging pressure from now on).
    SetHeap {
        /// Live heap words.
        words: u64,
    },
    /// Start child processes and continue immediately.
    Fork {
        /// Children to start.
        children: Vec<ProcessSpec>,
    },
    /// Block until every child forked so far has finished.
    Join,
}

/// A process to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessSpec {
    /// Name for reporting (e.g. `"fn-master f_large.3"`).
    pub name: String,
    /// Workstation index the process runs on.
    pub workstation: usize,
    /// C or Lisp.
    pub kind: ProcKind,
    /// The script.
    pub steps: Vec<Step>,
}

impl ProcessSpec {
    /// Creates a process with an empty script.
    pub fn new(name: impl Into<String>, workstation: usize, kind: ProcKind) -> Self {
        ProcessSpec {
            name: name.into(),
            workstation,
            kind,
            steps: Vec::new(),
        }
    }

    /// Appends a CPU burst.
    pub fn cpu(mut self, units: u64) -> Self {
        self.steps.push(Step::Cpu { units });
        self
    }

    /// Appends a network transfer.
    pub fn net(mut self, bytes: u64) -> Self {
        self.steps.push(Step::Net { bytes });
        self
    }

    /// Appends a file-server transfer.
    pub fn disk(mut self, bytes: u64) -> Self {
        self.steps.push(Step::Disk { bytes });
        self
    }

    /// Appends a heap-size change.
    pub fn heap(mut self, words: u64) -> Self {
        self.steps.push(Step::SetHeap { words });
        self
    }

    /// Appends a fork of `children`.
    pub fn fork(mut self, children: Vec<ProcessSpec>) -> Self {
        self.steps.push(Step::Fork { children });
        self
    }

    /// Appends a join.
    pub fn join(mut self) -> Self {
        self.steps.push(Step::Join);
        self
    }

    /// Total processes in this spec tree (self + descendants).
    pub fn process_count(&self) -> usize {
        1 + self
            .steps
            .iter()
            .map(|s| match s {
                Step::Fork { children } => children.iter().map(ProcessSpec::process_count).sum(),
                _ => 0,
            })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = ProcessSpec::new("m", 0, ProcKind::C)
            .cpu(10)
            .net(100)
            .fork(vec![ProcessSpec::new("c1", 1, ProcKind::Lisp).cpu(5)])
            .join();
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.process_count(), 2);
    }

    #[test]
    fn nested_process_count() {
        let leaf = ProcessSpec::new("leaf", 2, ProcKind::Lisp);
        let mid = ProcessSpec::new("mid", 1, ProcKind::C)
            .fork(vec![leaf.clone(), leaf.clone(), leaf])
            .join();
        let root = ProcessSpec::new("root", 0, ProcKind::C)
            .fork(vec![mid])
            .join();
        assert_eq!(root.process_count(), 5);
    }
}
