//! Host-system configuration: the knobs of the 1989 environment.
//!
//! The paper's host is an Ethernet-based network of about 40 diskless
//! SUN workstations sharing one file server (§3.3). All constants that
//! determine the simulated timings live here, so the calibration that
//! matches the paper's figures is explicit and in one place.

use serde::{Deserialize, Serialize};

/// Configuration of the simulated host system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Number of workstations available to the compiler. The paper
    /// notes 10–15 of the ~40 machines are usually free (§3.3).
    pub workstations: usize,
    /// Abstract compiler work units one workstation executes per
    /// second when nothing else interferes (the compiler phases report
    /// deterministic work-unit counts; this converts them to 1989
    /// seconds).
    pub cpu_units_per_sec: f64,
    /// Real memory per workstation, in abstract heap words.
    pub mem_words: u64,
    /// Shared Ethernet bandwidth in bytes per second (10 Mbit/s ≈
    /// 1.25 MB/s, minus protocol overhead).
    pub ethernet_bytes_per_sec: f64,
    /// Fixed per-transfer network latency in seconds (connection setup,
    /// protocol handshake).
    pub net_latency_s: f64,
    /// File-server disk throughput in bytes per second.
    pub disk_bytes_per_sec: f64,
    /// Fixed per-request disk service latency in seconds.
    pub disk_latency_s: f64,
    /// Size of the Common Lisp core image a diskless workstation
    /// downloads to start a Lisp process, in bytes.
    pub lisp_image_bytes: u64,
    /// CPU work units a fresh Lisp process spends interpreting its
    /// initialization forms.
    pub lisp_init_units: u64,
    /// CPU work units to start a C process (master, section masters —
    /// "these processes start up much faster", §3.2).
    pub c_startup_units: u64,
    /// GC overhead: multiplier is `1 + gc_coeff · (heap / gc_scale)^gc_power`
    /// applied to Lisp CPU bursts.
    pub gc_coeff: f64,
    /// Heap scale at which GC overhead reaches `gc_coeff`.
    pub gc_scale: f64,
    /// Superlinearity of GC in heap size.
    pub gc_power: f64,
    /// Paging slowdown: when the heap resident on a workstation exceeds
    /// its memory, CPU bursts are multiplied by
    /// `1 + page_coeff · (excess / mem)^page_power`.
    pub page_coeff: f64,
    /// Superlinearity of paging in the excess ratio.
    pub page_power: f64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            workstations: 15,
            cpu_units_per_sec: 14_000.0,
            mem_words: 1_100_000,
            ethernet_bytes_per_sec: 1_000_000.0,
            net_latency_s: 0.010,
            disk_bytes_per_sec: 600_000.0,
            disk_latency_s: 0.030,
            lisp_image_bytes: 7_000_000,
            lisp_init_units: 28_000,
            c_startup_units: 700,
            gc_coeff: 0.9,
            gc_scale: 700_000.0,
            gc_power: 1.6,
            page_coeff: 4.0,
            page_power: 1.3,
        }
    }
}

impl HostConfig {
    /// Combined CPU multiplier for a Lisp burst given the process heap
    /// and the total heap resident on its workstation.
    pub fn lisp_burst_factor(&self, own_heap: u64, resident_heap: u64) -> f64 {
        self.gc_factor(own_heap) * self.page_factor(resident_heap)
    }

    /// GC overhead multiplier for a Lisp process with `heap` live words.
    pub fn gc_factor(&self, heap: u64) -> f64 {
        1.0 + self.gc_coeff * (heap as f64 / self.gc_scale).powf(self.gc_power)
    }

    /// Paging multiplier for `resident` total heap words on one
    /// workstation.
    pub fn page_factor(&self, resident: u64) -> f64 {
        if resident <= self.mem_words {
            1.0
        } else {
            let excess = (resident - self.mem_words) as f64 / self.mem_words as f64;
            1.0 + self.page_coeff * excess.powf(self.page_power)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_factor_grows_superlinearly() {
        let c = HostConfig::default();
        let f1 = c.gc_factor(200_000);
        let f2 = c.gc_factor(400_000);
        let f4 = c.gc_factor(800_000);
        assert!(f1 < f2 && f2 < f4);
        // Superlinear: doubling heap more than doubles the overhead part.
        assert!((f4 - 1.0) > 2.0 * (f2 - 1.0));
    }

    #[test]
    fn page_factor_is_one_within_memory() {
        let c = HostConfig::default();
        assert_eq!(c.page_factor(c.mem_words / 2), 1.0);
        assert_eq!(c.page_factor(c.mem_words), 1.0);
        assert!(c.page_factor(c.mem_words * 2) > 2.0);
    }

    #[test]
    fn burst_factor_combines_both() {
        let c = HostConfig::default();
        let f = c.lisp_burst_factor(c.mem_words, c.mem_words * 2);
        assert!(f > c.gc_factor(c.mem_words));
        assert!(f > c.page_factor(c.mem_words * 2));
    }
}
