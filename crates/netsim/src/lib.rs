//! # warp-netsim
//!
//! Deterministic discrete-event simulation of the paper's host system:
//! an Ethernet network of diskless SUN workstations sharing one file
//! server (paper §3.3). The parallel compiler in `parcc` replays its
//! real compilations through this simulator to obtain 1989-scale
//! measurements — elapsed times in minutes, Lisp core-image downloads,
//! garbage collection, and the swapping that makes the *sequential*
//! compiler slower than the sum of its parts (the negative system
//! overhead of Figure 9).
//!
//! * [`config`] — every cost constant of the simulated era, in one
//!   place ([`config::HostConfig`]);
//! * [`process`] — process scripts: CPU bursts, network and file-server
//!   transfers, heap changes, fork/join;
//! * [`engine`] — the event-driven core with FIFO resources;
//! * [`fault`] — seeded fault injection: crashes, degraded CPUs,
//!   partitions and file-server stalls scripted onto the virtual
//!   timeline ([`fault::FaultPlan`]);
//! * [`report`] — per-process and per-resource accounting.
//!
//! # Example
//!
//! ```
//! use warp_netsim::{simulate, HostConfig, ProcKind, ProcessSpec};
//!
//! // A master forks two workers on different workstations.
//! let root = ProcessSpec::new("master", 0, ProcKind::C)
//!     .cpu(1_000)
//!     .fork(vec![
//!         ProcessSpec::new("w1", 1, ProcKind::Lisp).heap(100_000).cpu(50_000),
//!         ProcessSpec::new("w2", 2, ProcKind::Lisp).heap(100_000).cpu(50_000),
//!     ])
//!     .join();
//! let report = simulate(HostConfig::default(), root);
//! assert!(report.elapsed_s > 0.0);
//! assert_eq!(report.processes.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod fault;
pub mod process;
pub mod report;

pub use config::HostConfig;
pub use engine::{
    simulate, simulate_faulted, simulate_faulted_traced, simulate_traced, Simulation,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use process::{ProcKind, ProcessSpec, Step};
pub use report::{FaultSummary, ProcessReport, SimReport};
