//! The discrete-event engine.
//!
//! Deterministic: integer-nanosecond timestamps, FIFO resource queues,
//! and a monotone sequence number breaking event ties. Resources are
//! the per-workstation CPU, the shared Ethernet, and the file-server
//! disk; contention emerges from queueing rather than analytic
//! approximation — when eight Lisp images download at once, each one
//! really waits for the others' packets (paper §4.2.3: "multiple lisp
//! images are downloaded and multiple processes swap off the same file
//! server").
//!
//! Every run can optionally record a virtual-time trace
//! ([`simulate_traced`], [`Simulation::new_traced`]): service
//! intervals become spans on their resource's track, process
//! lifetimes become spans on per-process tracks, and scheduling
//! decisions become instant events — all on the same
//! integer-nanosecond clock as the report, so a trace of a
//! deterministic run is itself bit-for-bit deterministic. The schema
//! is documented in `docs/TRACING.md`; the untraced entry points cost
//! nothing (every recording call is a no-op on a disabled
//! [`Trace`]).
//!
//! # Fault injection
//!
//! A [`FaultPlan`] ([`simulate_faulted`], [`Simulation::with_faults`])
//! scripts host failures onto the same deterministic timeline:
//! workstation crashes kill every process hosted there (plus their
//! orphaned descendants), and the master's per-job timeout later
//! re-dispatches a clone of each lost process tree onto a surviving
//! workstation with exponential backoff; degraded CPUs stretch
//! service intervals; Ethernet partitions and file-server stalls park
//! requesters until the fault heals. Faults never target workstation
//! 0 (the master's machine), so every run still terminates. The
//! fault model and recovery policy are documented in `docs/FAULTS.md`.

use crate::config::HostConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::process::{ProcKind, ProcessSpec, Step};
use crate::report::{FaultSummary, ProcessReport, SimReport};
use std::collections::{BinaryHeap, VecDeque};
use warp_obs::{Trace, TrackId};

type Ns = u64;

fn secs_to_ns(s: f64) -> Ns {
    (s * 1e9).round() as Ns
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResourceId {
    Cpu(usize),
    Ethernet,
    Disk,
}

#[derive(Debug, Default)]
struct Server {
    busy: bool,
    /// Crashed and not yet rebooted (CPUs only; the shared Ethernet
    /// and disk degrade through windows, they never disappear).
    down: bool,
    queue: VecDeque<usize>,
    busy_ns: Ns,
    last_acquire: Ns,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Ready to start step `step`.
    Ready,
    /// Waiting in some resource queue.
    Queued(ResourceId),
    /// Holding a resource until the scheduled completion event.
    Serving(ResourceId),
    /// Blocked in `Join` until children finish.
    Joining,
    /// Blocked on a fault window (partition / server stall) until it
    /// heals.
    Parked,
    /// Killed by a workstation crash; a re-dispatched clone carries
    /// the work on.
    Lost,
    /// Finished.
    Done,
}

struct Proc {
    name: String,
    kind: ProcKind,
    workstation: usize,
    steps: Vec<Step>,
    step: usize,
    /// For `Disk` steps: 0 = network phase pending, 1 = disk phase.
    disk_phase: u8,
    state: ProcState,
    parent: Option<usize>,
    live_children: usize,
    heap: u64,
    start_ns: Ns,
    end_ns: Ns,
    cpu_ns: Ns,
    overhead_ns: Ns,
    net_ns: Ns,
    disk_ns: Ns,
    wait_ns: Ns,
    queued_since: Ns,
    /// Trace track this process's lifetime span lands on.
    track: TrackId,
    /// Virtual time the current service grant started.
    serving_since: Ns,
    /// GC/paging overhead inside the current CPU service interval.
    serving_overhead: Ns,
    /// The original spec this process was spawned from (pre-startup
    /// steps), kept so a crash victim can be re-dispatched.
    spec: ProcessSpec,
    /// Which retry generation this incarnation is (0 = original).
    retry: usize,
    /// Bumped when the process is killed, so stale completion/unpark
    /// events in the heap are ignored.
    epoch: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A resource service interval finished.
    Complete { pid: usize, epoch: u32 },
    /// A scripted fault strikes (index into the plan's crash list).
    Crash {
        workstation: usize,
        reboot_after_ns: Ns,
    },
    /// A crashed workstation comes back.
    Reboot { workstation: usize },
    /// The master's per-job timeout fired for a lost process: clone
    /// and re-dispatch it.
    Redispatch { pid: usize },
    /// A fault window blocking a parked process has healed.
    Unpark { pid: usize, epoch: u32 },
}

#[derive(PartialEq, Eq)]
struct Event {
    time: Ns,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversal.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A half-open fault window `[start_ns, end_ns)` on one resource.
#[derive(Debug, Clone, Copy)]
struct Window {
    workstation: usize,
    start_ns: Ns,
    end_ns: Ns,
    factor: f64,
}

impl Window {
    fn covers(&self, t: Ns) -> bool {
        self.start_ns <= t && t < self.end_ns
    }
}

/// The simulator.
pub struct Simulation {
    config: HostConfig,
    plan: FaultPlan,
    procs: Vec<Proc>,
    cpus: Vec<Server>,
    ethernet: Server,
    disk: Server,
    events: BinaryHeap<Event>,
    time: Ns,
    seq: u64,
    /// Degraded-CPU windows, per workstation.
    slowdowns: Vec<Window>,
    /// Ethernet-partition windows, per workstation.
    partitions: Vec<Window>,
    /// File-server stall windows (global).
    stalls: Vec<Window>,
    summary: FaultSummary,
    trace: Trace,
    cpu_tracks: Vec<TrackId>,
    eth_track: TrackId,
    disk_track: TrackId,
    sim_track: TrackId,
}

impl Simulation {
    /// Creates a simulator for `config`.
    pub fn new(config: HostConfig) -> Self {
        Simulation::new_traced(config, Trace::disabled())
    }

    /// Creates a simulator that records every dispatch, block and
    /// service interval into `trace` on the virtual clock. Resource
    /// tracks (`workstation N`, `ethernet`, `disk`) are interned up
    /// front; each process gets its own track when it is spawned.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is enabled but not in the
    /// [`warp_obs::ClockDomain::Virtual`] domain — mixing the netsim
    /// timeline into a wall-clock trace would silently misalign every
    /// timestamp.
    pub fn new_traced(config: HostConfig, trace: Trace) -> Self {
        Simulation::with_faults_traced(config, FaultPlan::none(), trace)
    }

    /// Creates a simulator that injects `plan`'s faults.
    pub fn with_faults(config: HostConfig, plan: FaultPlan) -> Self {
        Simulation::with_faults_traced(config, plan, Trace::disabled())
    }

    /// [`Simulation::with_faults`] with virtual-time tracing (see
    /// [`Simulation::new_traced`] for the tracing contract).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is enabled but not in the virtual clock
    /// domain.
    pub fn with_faults_traced(config: HostConfig, plan: FaultPlan, trace: Trace) -> Self {
        assert!(
            !trace.is_enabled() || trace.domain() == Some(warp_obs::ClockDomain::Virtual),
            "netsim traces must use ClockDomain::Virtual"
        );
        let cpu_tracks = (0..config.workstations.max(1))
            .map(|w| trace.track(&format!("workstation {w}")))
            .collect();
        Simulation {
            cpus: (0..config.workstations.max(1))
                .map(|_| Server::default())
                .collect(),
            ethernet: Server::default(),
            disk: Server::default(),
            procs: Vec::new(),
            events: BinaryHeap::new(),
            time: 0,
            seq: 0,
            slowdowns: Vec::new(),
            partitions: Vec::new(),
            stalls: Vec::new(),
            summary: FaultSummary::default(),
            cpu_tracks,
            eth_track: trace.track("ethernet"),
            disk_track: trace.track("disk"),
            sim_track: trace.track("sim"),
            trace,
            plan,
            config,
        }
    }

    fn res_track(&self, r: ResourceId) -> TrackId {
        match r {
            ResourceId::Cpu(w) => self.cpu_tracks[w],
            ResourceId::Ethernet => self.eth_track,
            ResourceId::Disk => self.disk_track,
        }
    }

    fn res_label(r: ResourceId) -> String {
        match r {
            ResourceId::Cpu(w) => format!("cpu {w}"),
            ResourceId::Ethernet => "ethernet".to_string(),
            ResourceId::Disk => "disk".to_string(),
        }
    }

    fn push_event(&mut self, time: Ns, kind: EventKind) {
        self.seq += 1;
        self.events.push(Event {
            time,
            seq: self.seq,
            kind,
        });
    }

    /// Turns the fault plan into windows and scheduled events. Faults
    /// targeting workstation 0 (the master's machine, assumed
    /// reliable) or out-of-range stations are ignored.
    fn arm_faults(&mut self) {
        let n_ws = self.cpus.len();
        let valid = |ws: usize| ws >= 1 && ws < n_ws;
        for ev in self.plan.events.clone() {
            let at = secs_to_ns(ev.at_s.max(0.0));
            match ev.kind {
                FaultKind::Crash {
                    workstation,
                    reboot_after_s,
                } => {
                    if valid(workstation) {
                        let reboot_after_ns = if reboot_after_s > 0.0 {
                            secs_to_ns(reboot_after_s)
                        } else {
                            0
                        };
                        self.push_event(
                            at,
                            EventKind::Crash {
                                workstation,
                                reboot_after_ns,
                            },
                        );
                    }
                }
                FaultKind::Slowdown {
                    workstation,
                    factor,
                    dur_s,
                } => {
                    if valid(workstation) && factor > 1.0 && dur_s > 0.0 {
                        let w = Window {
                            workstation,
                            start_ns: at,
                            end_ns: at + secs_to_ns(dur_s),
                            factor,
                        };
                        self.trace.record_span(
                            "fault",
                            format!("slowdown ws {workstation}"),
                            self.cpu_tracks[workstation],
                            w.start_ns,
                            w.end_ns - w.start_ns,
                            vec![("factor", factor)],
                        );
                        self.slowdowns.push(w);
                        self.summary.slowdowns += 1;
                    }
                }
                FaultKind::Partition { workstation, dur_s } => {
                    if valid(workstation) && dur_s > 0.0 {
                        let w = Window {
                            workstation,
                            start_ns: at,
                            end_ns: at + secs_to_ns(dur_s),
                            factor: 1.0,
                        };
                        self.trace.record_span(
                            "fault",
                            format!("partition ws {workstation}"),
                            self.eth_track,
                            w.start_ns,
                            w.end_ns - w.start_ns,
                            vec![("ws", workstation as f64)],
                        );
                        self.partitions.push(w);
                        self.summary.partitions += 1;
                    }
                }
                FaultKind::ServerStall { dur_s } => {
                    if dur_s > 0.0 {
                        let w = Window {
                            workstation: 0,
                            start_ns: at,
                            end_ns: at + secs_to_ns(dur_s),
                            factor: 1.0,
                        };
                        self.trace.record_span(
                            "fault",
                            "stall",
                            self.disk_track,
                            w.start_ns,
                            w.end_ns - w.start_ns,
                            vec![],
                        );
                        self.stalls.push(w);
                        self.summary.stalls += 1;
                    }
                }
            }
        }
    }

    /// Runs `root` (plus everything it forks) to completion and returns
    /// the report. Lost processes are re-dispatched per the fault
    /// plan's recovery policy, so the run terminates even under
    /// crashes (workstation 0 is never faulted and serves as the
    /// ultimate fallback).
    ///
    /// # Panics
    ///
    /// Panics if a process references a workstation index out of range,
    /// or if the simulation deadlocks (a bug in the spec: `Join` with a
    /// child that never terminates is impossible by construction).
    pub fn run(&mut self, root: ProcessSpec) -> SimReport {
        if self.trace.is_enabled() {
            self.trace
                .counter("workstations", self.sim_track, 0, self.cpus.len() as f64);
        }
        self.arm_faults();
        self.spawn(root, None, 0, true);
        // Drive: repeatedly dispatch ready processes, then pop events.
        loop {
            self.dispatch_all_ready();
            let Some(ev) = self.events.pop() else { break };
            self.time = ev.time;
            match ev.kind {
                EventKind::Complete { pid, epoch } => {
                    // A killed process's completion is stale; ignore.
                    if self.procs[pid].epoch == epoch {
                        self.complete(pid);
                    }
                }
                EventKind::Crash {
                    workstation,
                    reboot_after_ns,
                } => {
                    self.strike_crash(workstation, reboot_after_ns);
                }
                EventKind::Reboot { workstation } => {
                    if self.cpus[workstation].down {
                        self.cpus[workstation].down = false;
                        self.summary.reboots += 1;
                        self.trace.instant(
                            "fault",
                            format!("reboot ws {workstation}"),
                            self.cpu_tracks[workstation],
                            self.time,
                        );
                    }
                }
                EventKind::Redispatch { pid } => self.redispatch(pid),
                EventKind::Unpark { pid, epoch } => {
                    if self.procs[pid].epoch == epoch && self.procs[pid].state == ProcState::Parked
                    {
                        let waited = self.time - self.procs[pid].queued_since;
                        self.procs[pid].wait_ns += waited;
                        self.procs[pid].state = ProcState::Ready;
                    }
                }
            }
        }
        assert!(
            self.procs
                .iter()
                .all(|p| matches!(p.state, ProcState::Done | ProcState::Lost)),
            "simulation ended with live processes (deadlock in spec?)"
        );
        self.report()
    }

    fn spawn(
        &mut self,
        spec: ProcessSpec,
        parent: Option<usize>,
        retry: usize,
        count_child: bool,
    ) -> usize {
        assert!(
            spec.workstation < self.cpus.len(),
            "workstation {} out of range ({} exist)",
            spec.workstation,
            self.cpus.len()
        );
        let original = spec.clone();
        // Prepend startup activities.
        let mut steps = Vec::with_capacity(spec.steps.len() + 2);
        match spec.kind {
            ProcKind::C => steps.push(Step::Cpu {
                units: self.config.c_startup_units,
            }),
            ProcKind::Lisp => {
                steps.push(Step::Disk {
                    bytes: self.config.lisp_image_bytes,
                });
                steps.push(Step::Cpu {
                    units: self.config.lisp_init_units,
                });
            }
        }
        steps.extend(spec.steps);
        let id = self.procs.len();
        let name = if retry == 0 {
            spec.name
        } else {
            format!("{} [retry {retry}]", spec.name)
        };
        let track = self.trace.track(&name);
        self.procs.push(Proc {
            name,
            kind: spec.kind,
            workstation: spec.workstation,
            steps,
            step: 0,
            disk_phase: 0,
            state: ProcState::Ready,
            parent,
            live_children: 0,
            heap: 0,
            start_ns: self.time,
            end_ns: 0,
            cpu_ns: 0,
            overhead_ns: 0,
            net_ns: 0,
            disk_ns: 0,
            wait_ns: 0,
            queued_since: 0,
            track,
            serving_since: 0,
            serving_overhead: 0,
            spec: original,
            retry,
            epoch: 0,
        });
        if count_child {
            if let Some(p) = parent {
                self.procs[p].live_children += 1;
            }
        }
        id
    }

    fn dispatch_all_ready(&mut self) {
        loop {
            let Some(pid) = self.procs.iter().position(|p| p.state == ProcState::Ready) else {
                return;
            };
            self.advance(pid);
        }
    }

    /// Executes instantaneous steps and issues the next resource
    /// request for process `pid` (which must be `Ready`).
    fn advance(&mut self, pid: usize) {
        loop {
            if self.procs[pid].step >= self.procs[pid].steps.len() {
                self.finish(pid);
                return;
            }
            let step = self.procs[pid].steps[self.procs[pid].step].clone();
            match step {
                Step::SetHeap { words } => {
                    self.procs[pid].heap = words;
                    self.procs[pid].step += 1;
                }
                Step::Fork { children } => {
                    self.procs[pid].step += 1;
                    for child in children {
                        self.spawn(child, Some(pid), 0, true);
                    }
                    // Children are now Ready; the dispatch loop will
                    // pick them up.
                }
                Step::Join => {
                    if self.procs[pid].live_children == 0 {
                        self.procs[pid].step += 1;
                    } else {
                        self.procs[pid].state = ProcState::Joining;
                        return;
                    }
                }
                Step::Cpu { .. } => {
                    let ws = self.procs[pid].workstation;
                    self.request(pid, ResourceId::Cpu(ws));
                    return;
                }
                Step::Net { .. } => {
                    self.request(pid, ResourceId::Ethernet);
                    return;
                }
                Step::Disk { .. } => {
                    // Phase 0: cross the network; phase 1: disk.
                    if self.procs[pid].disk_phase == 0 {
                        self.request(pid, ResourceId::Ethernet);
                    } else {
                        self.request(pid, ResourceId::Disk);
                    }
                    return;
                }
            }
        }
    }

    fn server_mut(&mut self, r: ResourceId) -> &mut Server {
        match r {
            ResourceId::Cpu(w) => &mut self.cpus[w],
            ResourceId::Ethernet => &mut self.ethernet,
            ResourceId::Disk => &mut self.disk,
        }
    }

    /// If a fault window currently blocks `pid` from being served on
    /// `r`, returns the virtual time the last covering window heals.
    fn fault_block_until(&self, pid: usize, r: ResourceId) -> Option<Ns> {
        let now = self.time;
        let ws = self.procs[pid].workstation;
        let windows: &[Window] = match r {
            ResourceId::Ethernet => &self.partitions,
            ResourceId::Disk => &self.stalls,
            ResourceId::Cpu(_) => return None,
        };
        windows
            .iter()
            .filter(|w| w.covers(now) && (r == ResourceId::Disk || w.workstation == ws))
            .map(|w| w.end_ns)
            .max()
    }

    /// Parks `pid` until `heal_ns` (a fault window blocks its request).
    fn park(&mut self, pid: usize, r: ResourceId, heal_ns: Ns) {
        self.procs[pid].state = ProcState::Parked;
        self.procs[pid].queued_since = self.time;
        self.summary.parked += 1;
        self.trace.instant(
            "fault",
            format!("park {}", Self::res_label(r)),
            self.procs[pid].track,
            self.time,
        );
        let epoch = self.procs[pid].epoch;
        self.push_event(heal_ns, EventKind::Unpark { pid, epoch });
    }

    fn request(&mut self, pid: usize, r: ResourceId) {
        if let Some(heal) = self.fault_block_until(pid, r) {
            self.park(pid, r, heal);
            return;
        }
        if let ResourceId::Cpu(w) = r {
            assert!(
                !self.cpus[w].down,
                "process `{}` requested crashed workstation {w}",
                self.procs[pid].name
            );
        }
        let now = self.time;
        let server = self.server_mut(r);
        if server.busy {
            server.queue.push_back(pid);
            self.procs[pid].state = ProcState::Queued(r);
            self.procs[pid].queued_since = now;
            self.trace.instant(
                "sched",
                format!("block {}", Self::res_label(r)),
                self.procs[pid].track,
                now,
            );
        } else {
            self.grant(pid, r);
        }
    }

    fn grant(&mut self, pid: usize, r: ResourceId) {
        self.procs[pid].serving_overhead = 0;
        let duration = self.service_duration(pid, r);
        {
            let now = self.time;
            let server = self.server_mut(r);
            server.busy = true;
            server.last_acquire = now;
        }
        self.procs[pid].state = ProcState::Serving(r);
        self.procs[pid].serving_since = self.time;
        self.trace.instant(
            "sched",
            format!("dispatch {}", Self::res_label(r)),
            self.procs[pid].track,
            self.time,
        );
        let epoch = self.procs[pid].epoch;
        self.push_event(self.time + duration, EventKind::Complete { pid, epoch });
    }

    /// Combined degraded-CPU multiplier for workstation `ws` at the
    /// current virtual time (1.0 when no slowdown window covers it).
    fn slowdown_factor(&self, ws: usize) -> f64 {
        self.slowdowns
            .iter()
            .filter(|w| w.workstation == ws && w.covers(self.time))
            .map(|w| w.factor)
            .product()
    }

    /// Service time of `pid`'s current step on resource `r`.
    fn service_duration(&mut self, pid: usize, r: ResourceId) -> Ns {
        let cfg = self.config;
        let p = &self.procs[pid];
        let step = &p.steps[p.step];
        match (step, r) {
            (Step::Cpu { units }, ResourceId::Cpu(ws)) => {
                let base = *units as f64 / cfg.cpu_units_per_sec;
                let factor = match p.kind {
                    ProcKind::C => 1.0,
                    ProcKind::Lisp => {
                        // Run-to-completion: only the running process's
                        // working set is resident (a queued process is
                        // swapped out; its swap traffic is part of the
                        // paging multiplier when *it* runs).
                        cfg.lisp_burst_factor(p.heap, p.heap)
                    }
                };
                // A degraded CPU stretches the whole burst; the stretch
                // counts as overhead (it is system time lost to the
                // fault, not compiler work).
                let slow = self.slowdown_factor(ws);
                let total = secs_to_ns(base * factor * slow);
                let overhead = total.saturating_sub(secs_to_ns(base));
                let p = &mut self.procs[pid];
                p.cpu_ns += total;
                p.overhead_ns += overhead;
                p.serving_overhead = overhead;
                total
            }
            (Step::Net { bytes }, ResourceId::Ethernet) => {
                let d = secs_to_ns(cfg.net_latency_s + *bytes as f64 / cfg.ethernet_bytes_per_sec);
                self.procs[pid].net_ns += d;
                d
            }
            (Step::Disk { bytes }, ResourceId::Ethernet) => {
                let d = secs_to_ns(cfg.net_latency_s + *bytes as f64 / cfg.ethernet_bytes_per_sec);
                self.procs[pid].net_ns += d;
                d
            }
            (Step::Disk { bytes }, ResourceId::Disk) => {
                let d = secs_to_ns(cfg.disk_latency_s + *bytes as f64 / cfg.disk_bytes_per_sec);
                self.procs[pid].disk_ns += d;
                d
            }
            (s, r) => unreachable!("step {s:?} serving on {r:?}"),
        }
    }

    /// Releases `r` (bookkeeping its busy time) and grants it to the
    /// next queued process that is not fault-blocked; blocked ones are
    /// parked instead.
    fn release_and_grant_next(&mut self, r: ResourceId) {
        {
            let now = self.time;
            let server = self.server_mut(r);
            server.busy = false;
            server.busy_ns += now - server.last_acquire;
        }
        while let Some(next) = self.server_mut(r).queue.pop_front() {
            let waited = self.time - self.procs[next].queued_since;
            self.procs[next].wait_ns += waited;
            if let Some(heal) = self.fault_block_until(next, r) {
                // The fault window opened while it was queued.
                self.park(next, r, heal);
                continue;
            }
            self.grant(next, r);
            return;
        }
    }

    /// Handles a service-completion event for `pid`.
    fn complete(&mut self, pid: usize) {
        let ProcState::Serving(r) = self.procs[pid].state else {
            unreachable!("completion event for non-serving process");
        };
        if self.trace.is_enabled() {
            let p = &self.procs[pid];
            let (cat, args) = match r {
                ResourceId::Cpu(ws) => (
                    "cpu",
                    vec![
                        ("ws", ws as f64),
                        ("overhead_ns", p.serving_overhead as f64),
                    ],
                ),
                ResourceId::Ethernet => ("net", vec![("ws", p.workstation as f64)]),
                ResourceId::Disk => ("disk", vec![("ws", p.workstation as f64)]),
            };
            self.trace.record_span(
                cat,
                p.name.clone(),
                self.res_track(r),
                p.serving_since,
                self.time - p.serving_since,
                args,
            );
        }
        // Release the resource and grant the next in line.
        self.release_and_grant_next(r);

        // Advance the step (Disk has two phases).
        let p = &mut self.procs[pid];
        let is_disk = matches!(p.steps[p.step], Step::Disk { .. });
        if is_disk && p.disk_phase == 0 {
            p.disk_phase = 1;
        } else {
            p.disk_phase = 0;
            p.step += 1;
        }
        p.state = ProcState::Ready;
    }

    /// A workstation crash: take the CPU down, kill every process
    /// hosted there plus their orphaned descendants, and schedule the
    /// master's timeout-driven re-dispatch for each lost subtree root.
    fn strike_crash(&mut self, ws: usize, reboot_after_ns: Ns) {
        if ws == 0 || ws >= self.cpus.len() || self.cpus[ws].down {
            return;
        }
        self.summary.crashes += 1;
        self.cpus[ws].down = true;
        self.trace.instant(
            "fault",
            format!("crash ws {ws}"),
            self.cpu_tracks[ws],
            self.time,
        );
        if reboot_after_ns > 0 {
            self.push_event(
                self.time + reboot_after_ns,
                EventKind::Reboot { workstation: ws },
            );
        }
        // Victims: every live process hosted on the dead machine, plus
        // (transitively) the children of any victim — a dead section
        // master orphans its whole subtree.
        let alive = |p: &Proc| !matches!(p.state, ProcState::Done | ProcState::Lost);
        let mut killed = vec![false; self.procs.len()];
        loop {
            let mut grew = false;
            for pid in 0..self.procs.len() {
                if killed[pid] || !alive(&self.procs[pid]) {
                    continue;
                }
                let orphaned = self.procs[pid].parent.is_some_and(|pp| killed[pp]);
                if self.procs[pid].workstation == ws || orphaned {
                    killed[pid] = true;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        for pid in 0..self.procs.len() {
            if !killed[pid] {
                continue;
            }
            self.kill(pid);
            // Subtree roots (parent survived) are the master's lost
            // jobs: its per-job timeout fires detect_timeout_s later,
            // then it re-dispatches with exponential backoff.
            if self.procs[pid].parent.is_some_and(|pp| !killed[pp]) {
                let backoff = self.plan.backoff_s * (1u64 << self.procs[pid].retry.min(16)) as f64;
                let delay = secs_to_ns(self.plan.detect_timeout_s + backoff);
                self.push_event(self.time + delay, EventKind::Redispatch { pid });
            }
        }
    }

    /// Marks `pid` lost: frees whatever resource it held or queued
    /// for, truncates its lifetime, and invalidates its in-flight
    /// events.
    fn kill(&mut self, pid: usize) {
        match self.procs[pid].state {
            ProcState::Serving(r) => self.release_and_grant_next(r),
            ProcState::Queued(r) => {
                self.server_mut(r).queue.retain(|&q| q != pid);
            }
            _ => {}
        }
        let now = self.time;
        let p = &mut self.procs[pid];
        p.state = ProcState::Lost;
        p.end_ns = now;
        p.epoch += 1;
        self.summary.killed += 1;
        self.trace.instant(
            "fault",
            format!("kill {}", self.procs[pid].name),
            self.procs[pid].track,
            now,
        );
        if self.trace.is_enabled() {
            let p = &self.procs[pid];
            self.trace.record_span(
                "process",
                p.name.clone(),
                p.track,
                p.start_ns,
                p.end_ns - p.start_ns,
                vec![
                    ("ws", p.workstation as f64),
                    ("cpu_ns", p.cpu_ns as f64),
                    ("wait_ns", p.wait_ns as f64),
                    ("lost", 1.0),
                ],
            );
        }
    }

    /// The deterministic choice of where a lost job restarts: the
    /// up workstation (other than 0) hosting the fewest live
    /// processes, lowest index breaking ties; workstation 0 — the
    /// master's machine, never faulted — once retries are exhausted
    /// or nothing else survives.
    fn respawn_workstation(&self, retries_exhausted: bool) -> usize {
        if retries_exhausted {
            return 0;
        }
        let live_on = |w: usize| {
            self.procs
                .iter()
                .filter(|p| {
                    p.workstation == w && !matches!(p.state, ProcState::Done | ProcState::Lost)
                })
                .count()
        };
        (1..self.cpus.len())
            .filter(|&w| !self.cpus[w].down)
            .min_by_key(|&w| (live_on(w), w))
            .unwrap_or(0)
    }

    /// Re-dispatches lost process `pid` as a fresh clone of its
    /// original spec on a surviving workstation.
    fn redispatch(&mut self, pid: usize) {
        debug_assert_eq!(self.procs[pid].state, ProcState::Lost);
        let retry = self.procs[pid].retry + 1;
        let target = self.respawn_workstation(retry > self.plan.max_retries);
        let mut spec = self.procs[pid].spec.clone();
        // Remap the clone (and any descendants scripted onto machines
        // that are currently down) onto live stations.
        spec.workstation = target;
        remap_down_workstations(&mut spec.steps, &|w| self.cpus[w].down, target);
        self.summary.redispatches += 1;
        self.trace.instant(
            "retry",
            format!("redispatch {} -> ws {target}", self.procs[pid].name),
            self.sim_track,
            self.time,
        );
        // The clone inherits the parent's child slot — the count was
        // deliberately not decremented at kill time, so a Join can
        // never slip through while the work is in flight.
        let parent = self.procs[pid].parent;
        self.spawn(spec, parent, retry, false);
    }

    fn finish(&mut self, pid: usize) {
        self.procs[pid].state = ProcState::Done;
        self.procs[pid].end_ns = self.time;
        if self.trace.is_enabled() {
            let p = &self.procs[pid];
            self.trace.record_span(
                "process",
                p.name.clone(),
                p.track,
                p.start_ns,
                p.end_ns - p.start_ns,
                vec![
                    ("ws", p.workstation as f64),
                    ("cpu_ns", p.cpu_ns as f64),
                    ("wait_ns", p.wait_ns as f64),
                ],
            );
        }
        if let Some(parent) = self.procs[pid].parent {
            self.procs[parent].live_children -= 1;
            if self.procs[parent].live_children == 0
                && self.procs[parent].state == ProcState::Joining
            {
                self.procs[parent].step += 1;
                self.procs[parent].state = ProcState::Ready;
            }
        }
    }

    fn report(&self) -> SimReport {
        let processes: Vec<ProcessReport> = self
            .procs
            .iter()
            .map(|p| ProcessReport {
                name: p.name.clone(),
                kind: p.kind,
                workstation: p.workstation,
                start_s: p.start_ns as f64 / 1e9,
                end_s: p.end_ns as f64 / 1e9,
                cpu_s: p.cpu_ns as f64 / 1e9,
                overhead_s: p.overhead_ns as f64 / 1e9,
                net_s: p.net_ns as f64 / 1e9,
                disk_s: p.disk_ns as f64 / 1e9,
                wait_s: p.wait_ns as f64 / 1e9,
                lost: p.state == ProcState::Lost,
            })
            .collect();
        SimReport {
            elapsed_s: self.time as f64 / 1e9,
            ethernet_busy_s: self.ethernet.busy_ns as f64 / 1e9,
            disk_busy_s: self.disk.busy_ns as f64 / 1e9,
            cpu_busy_s: self.cpus.iter().map(|c| c.busy_ns as f64 / 1e9).collect(),
            faults: self.summary,
            processes,
        }
    }
}

/// Rewrites every workstation in `steps`' forked subtrees for which
/// `down` holds to `target`.
fn remap_down_workstations(steps: &mut [Step], down: &dyn Fn(usize) -> bool, target: usize) {
    for step in steps {
        if let Step::Fork { children } = step {
            for child in children {
                if down(child.workstation) {
                    child.workstation = target;
                }
                remap_down_workstations(&mut child.steps, down, target);
            }
        }
    }
}

/// Convenience: run one spec under `config`.
pub fn simulate(config: HostConfig, root: ProcessSpec) -> SimReport {
    Simulation::new(config).run(root)
}

/// [`simulate`] with virtual-time tracing: every service interval
/// becomes a span on its resource's track (categories `cpu`, `net`,
/// `disk`), every process lifetime a span on its own track (category
/// `process`), and every dispatch/block decision an instant event
/// (category `sched`). See `docs/TRACING.md` for the schema.
pub fn simulate_traced(config: HostConfig, root: ProcessSpec, trace: &Trace) -> SimReport {
    Simulation::new_traced(config, trace.clone()).run(root)
}

/// [`simulate`] under an injected [`FaultPlan`]: workstation crashes,
/// degraded CPUs, Ethernet partitions and file-server stalls strike
/// on the deterministic virtual timeline; lost work is re-dispatched
/// by the master's timeout/backoff policy. See `docs/FAULTS.md`.
pub fn simulate_faulted(config: HostConfig, plan: FaultPlan, root: ProcessSpec) -> SimReport {
    Simulation::with_faults(config, plan).run(root)
}

/// [`simulate_faulted`] with virtual-time tracing; fault strikes,
/// kills, reboots and re-dispatches appear under the `fault` and
/// `retry` categories (`docs/TRACING.md`).
pub fn simulate_faulted_traced(
    config: HostConfig,
    plan: FaultPlan,
    root: ProcessSpec,
    trace: &Trace,
) -> SimReport {
    Simulation::with_faults_traced(config, plan, trace.clone()).run(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;

    fn cfg() -> HostConfig {
        HostConfig {
            workstations: 4,
            cpu_units_per_sec: 1000.0,
            mem_words: 1000,
            ethernet_bytes_per_sec: 1000.0,
            net_latency_s: 0.0,
            disk_bytes_per_sec: 1000.0,
            disk_latency_s: 0.0,
            lisp_image_bytes: 0,
            lisp_init_units: 0,
            c_startup_units: 0,
            gc_coeff: 0.0,
            gc_scale: 1000.0,
            gc_power: 1.0,
            page_coeff: 1.0,
            page_power: 1.0,
        }
    }

    #[test]
    fn single_cpu_burst_time() {
        let r = simulate(cfg(), ProcessSpec::new("p", 0, ProcKind::C).cpu(500));
        assert!((r.elapsed_s - 0.5).abs() < 1e-9, "{}", r.elapsed_s);
        assert!((r.processes[0].cpu_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_children_on_distinct_workstations_overlap() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).cpu(1000),
                ProcessSpec::new("b", 2, ProcKind::C).cpu(1000),
            ])
            .join();
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 1.0).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn same_workstation_serializes() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).cpu(1000),
                ProcessSpec::new("b", 1, ProcKind::C).cpu(1000),
            ])
            .join();
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        // The second process records queueing delay.
        let total_wait: f64 = r.processes.iter().map(|p| p.wait_s).sum();
        assert!(total_wait > 0.9);
    }

    #[test]
    fn ethernet_contention_serializes_transfers() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).net(1000),
                ProcessSpec::new("b", 2, ProcKind::C).net(1000),
            ])
            .join();
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert!((r.ethernet_busy_s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn disk_crosses_network_then_disk() {
        let r = simulate(cfg(), ProcessSpec::new("p", 0, ProcKind::C).disk(1000));
        // 1s network + 1s disk.
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert!((r.disk_busy_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lisp_startup_costs_applied() {
        let mut c = cfg();
        c.lisp_image_bytes = 2000; // 2s network + 2s disk
        c.lisp_init_units = 500; // 0.5s
        let r = simulate(c, ProcessSpec::new("l", 0, ProcKind::Lisp).cpu(0));
        assert!((r.elapsed_s - 4.5).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn paging_slows_big_heaps() {
        let mut c = cfg();
        c.page_coeff = 1.0;
        // heap = 2×memory → factor 1 + (1000/1000)^1 = 2.
        let r = simulate(
            c,
            ProcessSpec::new("l", 0, ProcKind::Lisp)
                .heap(2000)
                .cpu(1000),
        );
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert!((r.processes[0].overhead_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn queued_processes_do_not_add_pressure() {
        let mut c = cfg();
        c.page_coeff = 1.0;
        // Two Lisp processes, 800 words each, same workstation: under
        // run-to-completion scheduling each runs with only its own
        // working set resident — no paging (each fits alone).
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::Lisp).heap(800).cpu(1000),
                ProcessSpec::new("b", 1, ProcKind::Lisp).heap(800).cpu(1000),
            ])
            .join();
        let r = simulate(c, root);
        let total_overhead: f64 = r.processes.iter().map(|p| p.overhead_s).sum();
        assert_eq!(total_overhead, 0.0, "{:?}", r.processes);
    }

    #[test]
    fn gc_overhead_counted() {
        let mut c = cfg();
        c.gc_coeff = 0.5;
        c.gc_scale = 1000.0;
        let r = simulate(
            c,
            ProcessSpec::new("l", 0, ProcKind::Lisp)
                .heap(1000)
                .cpu(1000),
        );
        // factor = 1.5 → 1.5 s.
        assert!((r.elapsed_s - 1.5).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            ProcessSpec::new("m", 0, ProcKind::C)
                .fork(vec![
                    ProcessSpec::new("a", 1, ProcKind::Lisp)
                        .heap(500)
                        .cpu(700)
                        .disk(300),
                    ProcessSpec::new("b", 2, ProcKind::Lisp)
                        .heap(600)
                        .cpu(900)
                        .disk(400),
                    ProcessSpec::new("c", 3, ProcKind::Lisp)
                        .heap(700)
                        .cpu(1100)
                        .disk(500),
                ])
                .join()
                .cpu(100)
        };
        let r1 = simulate(cfg(), build());
        let r2 = simulate(cfg(), build());
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn traced_run_records_service_and_process_spans() {
        let trace = Trace::new(warp_obs::ClockDomain::Virtual);
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).cpu(1000),
                ProcessSpec::new("b", 1, ProcKind::C).cpu(1000),
            ])
            .join();
        let r = simulate_traced(cfg(), root, &trace);
        let snap = trace.snapshot();
        // One cpu span per service interval, durations matching the report.
        let cpu_total_ns: u64 = snap.spans_in("cpu").map(|s| s.dur_ns).sum();
        let report_cpu: f64 = r.processes.iter().map(|p| p.cpu_s).sum();
        assert!((cpu_total_ns as f64 / 1e9 - report_cpu).abs() < 1e-9);
        // One process-lifetime span per process, ending at the horizon.
        assert_eq!(snap.spans_in("process").count(), 3);
        assert_eq!(snap.end_ns() as f64 / 1e9, r.elapsed_s);
        // `b` contended for workstation 1 → at least one block instant.
        assert!(snap
            .instants
            .iter()
            .any(|i| i.name.starts_with("block cpu")));
        // Spans carry the workstation tag (children ran on ws 1).
        assert!(snap
            .spans_in("cpu")
            .filter(|s| s.name != "m")
            .all(|s| s.arg("ws") == Some(1.0)));
    }

    #[test]
    fn untraced_run_matches_traced_report() {
        let build = || {
            ProcessSpec::new("m", 0, ProcKind::C)
                .fork(vec![
                    ProcessSpec::new("a", 1, ProcKind::Lisp)
                        .heap(500)
                        .cpu(700)
                        .disk(300),
                    ProcessSpec::new("b", 2, ProcKind::Lisp)
                        .heap(600)
                        .cpu(900)
                        .disk(400),
                ])
                .join()
                .cpu(100)
        };
        let plain = simulate(cfg(), build());
        let traced = simulate_traced(cfg(), build(), &Trace::new(warp_obs::ClockDomain::Virtual));
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
    }

    #[test]
    fn join_waits_for_all_children() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("fast", 1, ProcKind::C).cpu(100),
                ProcessSpec::new("slow", 2, ProcKind::C).cpu(2000),
            ])
            .join()
            .cpu(100);
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 2.1).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn grandchildren_joined_transitively() {
        let leaf = ProcessSpec::new("leaf", 2, ProcKind::C).cpu(1000);
        let mid = ProcessSpec::new("mid", 1, ProcKind::C)
            .fork(vec![leaf])
            .join();
        let root = ProcessSpec::new("root", 0, ProcKind::C)
            .fork(vec![mid])
            .join();
        let r = simulate(cfg(), root);
        assert!(r.elapsed_s >= 1.0);
        assert!(r.processes.iter().all(|p| p.end_s > 0.0 || p.cpu_s == 0.0));
    }

    // ---- fault injection ----

    fn forked_pair() -> ProcessSpec {
        ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).cpu(1000),
                ProcessSpec::new("b", 2, ProcKind::C).cpu(1000),
            ])
            .join()
    }

    #[test]
    fn crash_kills_and_redispatches() {
        // `a` dies at 0.5 s; the master's 5 s timeout + 1 s backoff
        // re-dispatches it. With ws 1 down forever, the retry lands on
        // the emptier surviving station.
        let plan = FaultPlan::single(
            0.5,
            FaultKind::Crash {
                workstation: 1,
                reboot_after_s: 0.0,
            },
        );
        let r = simulate_faulted(cfg(), plan, forked_pair());
        assert_eq!(r.faults.crashes, 1);
        assert_eq!(r.faults.killed, 1);
        assert_eq!(r.faults.redispatches, 1);
        // Retry starts at 0.5 + 5 + 1 = 6.5 s and runs 1 s.
        assert!((r.elapsed_s - 7.5).abs() < 1e-6, "{}", r.elapsed_s);
        let retry = r
            .processes
            .iter()
            .find(|p| p.name == "a [retry 1]")
            .expect("retry proc");
        assert!(!retry.lost);
        assert_ne!(retry.workstation, 1, "must not respawn on the dead machine");
        // The victim's truncated record is still in the report.
        let victim = r.processes.iter().find(|p| p.name == "a").unwrap();
        assert!(victim.lost);
        assert!((victim.end_s - 0.5).abs() < 1e-6);
    }

    #[test]
    fn reboot_brings_workstation_back() {
        let plan = FaultPlan::single(
            0.5,
            FaultKind::Crash {
                workstation: 1,
                reboot_after_s: 2.0,
            },
        );
        let r = simulate_faulted(cfg(), plan, forked_pair());
        assert_eq!(r.faults.reboots, 1);
        assert_eq!(r.faults.redispatches, 1);
        assert!(r.processes.iter().any(|p| p.name == "a [retry 1]"));
    }

    #[test]
    fn crash_on_idle_workstation_changes_nothing_but_counters() {
        let plan = FaultPlan::single(
            0.5,
            FaultKind::Crash {
                workstation: 3,
                reboot_after_s: 0.0,
            },
        );
        let r = simulate_faulted(cfg(), plan, forked_pair());
        assert_eq!(r.faults.crashes, 1);
        assert_eq!(r.faults.killed, 0);
        assert!((r.elapsed_s - 1.0).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn faults_on_workstation_zero_are_ignored() {
        let plan = FaultPlan::single(
            0.1,
            FaultKind::Crash {
                workstation: 0,
                reboot_after_s: 0.0,
            },
        );
        let r = simulate_faulted(cfg(), plan, forked_pair());
        assert_eq!(r.faults.crashes, 0);
        assert!((r.elapsed_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn slowdown_stretches_bursts_as_overhead() {
        // Factor 3 for the whole run on ws 1: `a` takes 3 s, 2 of it
        // overhead.
        let plan = FaultPlan::single(
            0.0,
            FaultKind::Slowdown {
                workstation: 1,
                factor: 3.0,
                dur_s: 100.0,
            },
        );
        let r = simulate_faulted(cfg(), plan, forked_pair());
        assert!((r.elapsed_s - 3.0).abs() < 1e-6, "{}", r.elapsed_s);
        let a = r.processes.iter().find(|p| p.name == "a").unwrap();
        assert!((a.cpu_s - 3.0).abs() < 1e-6);
        assert!((a.overhead_s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn partition_parks_transfers_until_heal() {
        // `a` on ws 1 wants the Ethernet at t=0 but is partitioned for
        // 2 s; its 1 s transfer lands afterwards.
        let plan = FaultPlan::single(
            0.0,
            FaultKind::Partition {
                workstation: 1,
                dur_s: 2.0,
            },
        );
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![ProcessSpec::new("a", 1, ProcKind::C).net(1000)])
            .join();
        let r = simulate_faulted(cfg(), plan, root);
        assert!((r.elapsed_s - 3.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert_eq!(r.faults.parked, 1);
        let a = r.processes.iter().find(|p| p.name == "a").unwrap();
        assert!((a.wait_s - 2.0).abs() < 1e-6, "{}", a.wait_s);
    }

    #[test]
    fn partition_does_not_touch_other_workstations() {
        let plan = FaultPlan::single(
            0.0,
            FaultKind::Partition {
                workstation: 1,
                dur_s: 2.0,
            },
        );
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![ProcessSpec::new("b", 2, ProcKind::C).net(1000)])
            .join();
        let r = simulate_faulted(cfg(), plan, root);
        assert!((r.elapsed_s - 1.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert_eq!(r.faults.parked, 0);
    }

    #[test]
    fn server_stall_parks_disk_requests() {
        // Disk step: 1 s network (unaffected), then the disk phase
        // parks until the stall window [0, 3) heals.
        let plan = FaultPlan::single(0.0, FaultKind::ServerStall { dur_s: 3.0 });
        let r = simulate_faulted(
            cfg(),
            plan,
            ProcessSpec::new("p", 0, ProcKind::C).disk(1000),
        );
        assert!((r.elapsed_s - 4.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert_eq!(r.faults.parked, 1);
    }

    #[test]
    fn faulted_run_is_deterministic_and_matches_traced() {
        let build = || {
            ProcessSpec::new("m", 0, ProcKind::C)
                .fork(vec![
                    ProcessSpec::new("a", 1, ProcKind::Lisp)
                        .heap(500)
                        .cpu(700)
                        .disk(300),
                    ProcessSpec::new("b", 2, ProcKind::Lisp)
                        .heap(600)
                        .cpu(900)
                        .disk(400),
                    ProcessSpec::new("c", 3, ProcKind::Lisp)
                        .heap(700)
                        .cpu(1100)
                        .disk(500),
                ])
                .join()
                .cpu(100)
        };
        let plan = FaultPlan::generate(7, 4, 4, 3.0);
        let r1 = simulate_faulted(cfg(), plan.clone(), build());
        let r2 = simulate_faulted(cfg(), plan.clone(), build());
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
        let traced = simulate_faulted_traced(
            cfg(),
            plan,
            build(),
            &Trace::new(warp_obs::ClockDomain::Virtual),
        );
        assert_eq!(format!("{r1:?}"), format!("{traced:?}"));
    }

    #[test]
    fn dead_section_master_orphans_and_retries_whole_subtree() {
        // A section master on ws 1 forks a leaf on ws 2 at 0.5 s; the
        // crash on ws 1 at 0.7 s kills both (the leaf, though on a
        // healthy machine, is orphaned), and the re-dispatch respawns
        // the subtree with the dead station remapped.
        let leaf = ProcessSpec::new("leaf", 2, ProcKind::C).cpu(1000);
        let mid = ProcessSpec::new("mid", 1, ProcKind::C)
            .cpu(500)
            .fork(vec![leaf])
            .join();
        let root = ProcessSpec::new("root", 0, ProcKind::C)
            .fork(vec![mid])
            .join();
        let plan = FaultPlan::single(
            0.7,
            FaultKind::Crash {
                workstation: 1,
                reboot_after_s: 0.0,
            },
        );
        let r = simulate_faulted(cfg(), plan, root);
        assert_eq!(r.faults.killed, 2, "{:?}", r.faults);
        assert_eq!(r.faults.redispatches, 1, "one subtree root re-dispatched");
        let retry = r
            .processes
            .iter()
            .find(|p| p.name == "mid [retry 1]")
            .unwrap();
        assert_ne!(retry.workstation, 1);
        assert!(
            r.processes.iter().any(|p| p.name == "leaf" && !p.lost),
            "respawned leaf completes: {:?}",
            r.processes
        );
    }

    #[test]
    fn repeated_crashes_eventually_fall_back_to_master_station() {
        // Both worker stations die and never reboot: after the retries
        // exhaust the spares, the job lands on workstation 0 and
        // completes there.
        let mut c = cfg();
        c.workstations = 3;
        let plan = FaultPlan {
            detect_timeout_s: 0.5,
            backoff_s: 0.1,
            max_retries: 1,
            events: vec![
                FaultEvent {
                    at_s: 0.2,
                    kind: FaultKind::Crash {
                        workstation: 1,
                        reboot_after_s: 0.0,
                    },
                },
                FaultEvent {
                    at_s: 0.4,
                    kind: FaultKind::Crash {
                        workstation: 2,
                        reboot_after_s: 0.0,
                    },
                },
            ],
            ..FaultPlan::default()
        };
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![ProcessSpec::new("job", 1, ProcKind::C).cpu(1000)])
            .join();
        let r = simulate_faulted(c, plan, root);
        let done: Vec<_> = r
            .processes
            .iter()
            .filter(|p| !p.lost && p.name.contains("job"))
            .collect();
        assert_eq!(done.len(), 1, "{:?}", r.processes);
        assert_eq!(done[0].workstation, 0, "fell back to the master's machine");
    }

    #[test]
    fn empty_plan_matches_plain_simulation() {
        let plain = simulate(cfg(), forked_pair());
        let faulted = simulate_faulted(cfg(), FaultPlan::none(), forked_pair());
        assert_eq!(format!("{plain:?}"), format!("{faulted:?}"));
    }
}
