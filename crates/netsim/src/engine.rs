//! The discrete-event engine.
//!
//! Deterministic: integer-nanosecond timestamps, FIFO resource queues,
//! and a monotone sequence number breaking event ties. Resources are
//! the per-workstation CPU, the shared Ethernet, and the file-server
//! disk; contention emerges from queueing rather than analytic
//! approximation — when eight Lisp images download at once, each one
//! really waits for the others' packets (paper §4.2.3: "multiple lisp
//! images are downloaded and multiple processes swap off the same file
//! server").
//!
//! Every run can optionally record a virtual-time trace
//! ([`simulate_traced`], [`Simulation::new_traced`]): service
//! intervals become spans on their resource's track, process
//! lifetimes become spans on per-process tracks, and scheduling
//! decisions become instant events — all on the same
//! integer-nanosecond clock as the report, so a trace of a
//! deterministic run is itself bit-for-bit deterministic. The schema
//! is documented in `docs/TRACING.md`; the untraced entry points cost
//! nothing (every recording call is a no-op on a disabled
//! [`Trace`]).

use crate::config::HostConfig;
use crate::process::{ProcKind, ProcessSpec, Step};
use crate::report::{ProcessReport, SimReport};
use std::collections::{BinaryHeap, VecDeque};
use warp_obs::{Trace, TrackId};

type Ns = u64;

fn secs_to_ns(s: f64) -> Ns {
    (s * 1e9).round() as Ns
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResourceId {
    Cpu(usize),
    Ethernet,
    Disk,
}

#[derive(Debug, Default)]
struct Server {
    busy: bool,
    queue: VecDeque<usize>,
    busy_ns: Ns,
    last_acquire: Ns,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Ready to start step `step`.
    Ready,
    /// Waiting in some resource queue.
    Queued(ResourceId),
    /// Holding a resource until the scheduled completion event.
    Serving(ResourceId),
    /// Blocked in `Join` until children finish.
    Joining,
    /// Finished.
    Done,
}

struct Proc {
    name: String,
    kind: ProcKind,
    workstation: usize,
    steps: Vec<Step>,
    step: usize,
    /// For `Disk` steps: 0 = network phase pending, 1 = disk phase.
    disk_phase: u8,
    state: ProcState,
    parent: Option<usize>,
    live_children: usize,
    heap: u64,
    start_ns: Ns,
    end_ns: Ns,
    cpu_ns: Ns,
    overhead_ns: Ns,
    net_ns: Ns,
    disk_ns: Ns,
    wait_ns: Ns,
    queued_since: Ns,
    /// Trace track this process's lifetime span lands on.
    track: TrackId,
    /// Virtual time the current service grant started.
    serving_since: Ns,
    /// GC/paging overhead inside the current CPU service interval.
    serving_overhead: Ns,
}

#[derive(PartialEq, Eq)]
struct Event {
    time: Ns,
    seq: u64,
    proc: usize,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversal.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator.
pub struct Simulation {
    config: HostConfig,
    procs: Vec<Proc>,
    cpus: Vec<Server>,
    ethernet: Server,
    disk: Server,
    events: BinaryHeap<Event>,
    time: Ns,
    seq: u64,
    trace: Trace,
    cpu_tracks: Vec<TrackId>,
    eth_track: TrackId,
    disk_track: TrackId,
}

impl Simulation {
    /// Creates a simulator for `config`.
    pub fn new(config: HostConfig) -> Self {
        Simulation::new_traced(config, Trace::disabled())
    }

    /// Creates a simulator that records every dispatch, block and
    /// service interval into `trace` on the virtual clock. Resource
    /// tracks (`workstation N`, `ethernet`, `disk`) are interned up
    /// front; each process gets its own track when it is spawned.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is enabled but not in the
    /// [`warp_obs::ClockDomain::Virtual`] domain — mixing the netsim
    /// timeline into a wall-clock trace would silently misalign every
    /// timestamp.
    pub fn new_traced(config: HostConfig, trace: Trace) -> Self {
        assert!(
            !trace.is_enabled() || trace.domain() == Some(warp_obs::ClockDomain::Virtual),
            "netsim traces must use ClockDomain::Virtual"
        );
        let cpu_tracks = (0..config.workstations.max(1))
            .map(|w| trace.track(&format!("workstation {w}")))
            .collect();
        Simulation {
            cpus: (0..config.workstations.max(1)).map(|_| Server::default()).collect(),
            ethernet: Server::default(),
            disk: Server::default(),
            procs: Vec::new(),
            events: BinaryHeap::new(),
            time: 0,
            seq: 0,
            cpu_tracks,
            eth_track: trace.track("ethernet"),
            disk_track: trace.track("disk"),
            trace,
            config,
        }
    }

    fn res_track(&self, r: ResourceId) -> TrackId {
        match r {
            ResourceId::Cpu(w) => self.cpu_tracks[w],
            ResourceId::Ethernet => self.eth_track,
            ResourceId::Disk => self.disk_track,
        }
    }

    fn res_label(r: ResourceId) -> String {
        match r {
            ResourceId::Cpu(w) => format!("cpu {w}"),
            ResourceId::Ethernet => "ethernet".to_string(),
            ResourceId::Disk => "disk".to_string(),
        }
    }

    /// Runs `root` (plus everything it forks) to completion and returns
    /// the report.
    ///
    /// # Panics
    ///
    /// Panics if a process references a workstation index out of range,
    /// or if the simulation deadlocks (a bug in the spec: `Join` with a
    /// child that never terminates is impossible by construction).
    pub fn run(&mut self, root: ProcessSpec) -> SimReport {
        if self.trace.is_enabled() {
            let sim_track = self.trace.track("sim");
            self.trace.counter("workstations", sim_track, 0, self.cpus.len() as f64);
        }
        self.spawn(root, None);
        // Drive: repeatedly dispatch ready processes, then pop events.
        loop {
            self.dispatch_all_ready();
            let Some(ev) = self.events.pop() else { break };
            self.time = ev.time;
            self.complete(ev.proc);
        }
        assert!(
            self.procs.iter().all(|p| p.state == ProcState::Done),
            "simulation ended with live processes (deadlock in spec?)"
        );
        self.report()
    }

    fn spawn(&mut self, spec: ProcessSpec, parent: Option<usize>) -> usize {
        assert!(
            spec.workstation < self.cpus.len(),
            "workstation {} out of range ({} exist)",
            spec.workstation,
            self.cpus.len()
        );
        // Prepend startup activities.
        let mut steps = Vec::with_capacity(spec.steps.len() + 2);
        match spec.kind {
            ProcKind::C => steps.push(Step::Cpu { units: self.config.c_startup_units }),
            ProcKind::Lisp => {
                steps.push(Step::Disk { bytes: self.config.lisp_image_bytes });
                steps.push(Step::Cpu { units: self.config.lisp_init_units });
            }
        }
        steps.extend(spec.steps);
        let id = self.procs.len();
        let track = self.trace.track(&spec.name);
        self.procs.push(Proc {
            name: spec.name,
            kind: spec.kind,
            workstation: spec.workstation,
            steps,
            step: 0,
            disk_phase: 0,
            state: ProcState::Ready,
            parent,
            live_children: 0,
            heap: 0,
            start_ns: self.time,
            end_ns: 0,
            cpu_ns: 0,
            overhead_ns: 0,
            net_ns: 0,
            disk_ns: 0,
            wait_ns: 0,
            queued_since: 0,
            track,
            serving_since: 0,
            serving_overhead: 0,
        });
        if let Some(p) = parent {
            self.procs[p].live_children += 1;
        }
        id
    }

    fn dispatch_all_ready(&mut self) {
        loop {
            let Some(pid) = self
                .procs
                .iter()
                .position(|p| p.state == ProcState::Ready)
            else {
                return;
            };
            self.advance(pid);
        }
    }

    /// Executes instantaneous steps and issues the next resource
    /// request for process `pid` (which must be `Ready`).
    fn advance(&mut self, pid: usize) {
        loop {
            if self.procs[pid].step >= self.procs[pid].steps.len() {
                self.finish(pid);
                return;
            }
            let step = self.procs[pid].steps[self.procs[pid].step].clone();
            match step {
                Step::SetHeap { words } => {
                    self.procs[pid].heap = words;
                    self.procs[pid].step += 1;
                }
                Step::Fork { children } => {
                    self.procs[pid].step += 1;
                    for child in children {
                        self.spawn(child, Some(pid));
                    }
                    // Children are now Ready; the dispatch loop will
                    // pick them up.
                }
                Step::Join => {
                    if self.procs[pid].live_children == 0 {
                        self.procs[pid].step += 1;
                    } else {
                        self.procs[pid].state = ProcState::Joining;
                        return;
                    }
                }
                Step::Cpu { .. } => {
                    let ws = self.procs[pid].workstation;
                    self.request(pid, ResourceId::Cpu(ws));
                    return;
                }
                Step::Net { .. } => {
                    self.request(pid, ResourceId::Ethernet);
                    return;
                }
                Step::Disk { .. } => {
                    // Phase 0: cross the network; phase 1: disk.
                    if self.procs[pid].disk_phase == 0 {
                        self.request(pid, ResourceId::Ethernet);
                    } else {
                        self.request(pid, ResourceId::Disk);
                    }
                    return;
                }
            }
        }
    }

    fn server_mut(&mut self, r: ResourceId) -> &mut Server {
        match r {
            ResourceId::Cpu(w) => &mut self.cpus[w],
            ResourceId::Ethernet => &mut self.ethernet,
            ResourceId::Disk => &mut self.disk,
        }
    }

    fn request(&mut self, pid: usize, r: ResourceId) {
        let now = self.time;
        let server = self.server_mut(r);
        if server.busy {
            server.queue.push_back(pid);
            self.procs[pid].state = ProcState::Queued(r);
            self.procs[pid].queued_since = now;
            self.trace.instant(
                "sched",
                format!("block {}", Self::res_label(r)),
                self.procs[pid].track,
                now,
            );
        } else {
            self.grant(pid, r);
        }
    }

    fn grant(&mut self, pid: usize, r: ResourceId) {
        self.procs[pid].serving_overhead = 0;
        let duration = self.service_duration(pid, r);
        {
            let now = self.time;
            let server = self.server_mut(r);
            server.busy = true;
            server.last_acquire = now;
        }
        self.procs[pid].state = ProcState::Serving(r);
        self.procs[pid].serving_since = self.time;
        self.trace.instant(
            "sched",
            format!("dispatch {}", Self::res_label(r)),
            self.procs[pid].track,
            self.time,
        );
        self.seq += 1;
        self.events.push(Event { time: self.time + duration, seq: self.seq, proc: pid });
    }

    /// Service time of `pid`'s current step on resource `r`.
    fn service_duration(&mut self, pid: usize, r: ResourceId) -> Ns {
        let cfg = self.config;
        let p = &self.procs[pid];
        let step = &p.steps[p.step];
        match (step, r) {
            (Step::Cpu { units }, ResourceId::Cpu(ws)) => {
                let base = *units as f64 / cfg.cpu_units_per_sec;
                let factor = match p.kind {
                    ProcKind::C => 1.0,
                    ProcKind::Lisp => {
                        // Run-to-completion: only the running process's
                        // working set is resident (a queued process is
                        // swapped out; its swap traffic is part of the
                        // paging multiplier when *it* runs).
                        let _ = ws;
                        cfg.lisp_burst_factor(p.heap, p.heap)
                    }
                };
                let total = secs_to_ns(base * factor);
                let overhead = total.saturating_sub(secs_to_ns(base));
                let p = &mut self.procs[pid];
                p.cpu_ns += total;
                p.overhead_ns += overhead;
                p.serving_overhead = overhead;
                total
            }
            (Step::Net { bytes }, ResourceId::Ethernet) => {
                let d = secs_to_ns(cfg.net_latency_s + *bytes as f64 / cfg.ethernet_bytes_per_sec);
                self.procs[pid].net_ns += d;
                d
            }
            (Step::Disk { bytes }, ResourceId::Ethernet) => {
                let d = secs_to_ns(cfg.net_latency_s + *bytes as f64 / cfg.ethernet_bytes_per_sec);
                self.procs[pid].net_ns += d;
                d
            }
            (Step::Disk { bytes }, ResourceId::Disk) => {
                let d = secs_to_ns(cfg.disk_latency_s + *bytes as f64 / cfg.disk_bytes_per_sec);
                self.procs[pid].disk_ns += d;
                d
            }
            (s, r) => unreachable!("step {s:?} serving on {r:?}"),
        }
    }

    /// Handles a service-completion event for `pid`.
    fn complete(&mut self, pid: usize) {
        let ProcState::Serving(r) = self.procs[pid].state else {
            unreachable!("completion event for non-serving process");
        };
        if self.trace.is_enabled() {
            let p = &self.procs[pid];
            let (cat, args) = match r {
                ResourceId::Cpu(ws) => (
                    "cpu",
                    vec![("ws", ws as f64), ("overhead_ns", p.serving_overhead as f64)],
                ),
                ResourceId::Ethernet => ("net", vec![("ws", p.workstation as f64)]),
                ResourceId::Disk => ("disk", vec![("ws", p.workstation as f64)]),
            };
            self.trace.record_span(
                cat,
                p.name.clone(),
                self.res_track(r),
                p.serving_since,
                self.time - p.serving_since,
                args,
            );
        }
        // Release the resource and grant the next in line.
        {
            let now = self.time;
            let server = self.server_mut(r);
            server.busy = false;
            server.busy_ns += now - server.last_acquire;
        }
        if let Some(next) = self.server_mut(r).queue.pop_front() {
            let waited = self.time - self.procs[next].queued_since;
            self.procs[next].wait_ns += waited;
            self.grant(next, r);
        }

        // Advance the step (Disk has two phases).
        let p = &mut self.procs[pid];
        let is_disk = matches!(p.steps[p.step], Step::Disk { .. });
        if is_disk && p.disk_phase == 0 {
            p.disk_phase = 1;
        } else {
            p.disk_phase = 0;
            p.step += 1;
        }
        p.state = ProcState::Ready;
    }

    fn finish(&mut self, pid: usize) {
        self.procs[pid].state = ProcState::Done;
        self.procs[pid].end_ns = self.time;
        if self.trace.is_enabled() {
            let p = &self.procs[pid];
            self.trace.record_span(
                "process",
                p.name.clone(),
                p.track,
                p.start_ns,
                p.end_ns - p.start_ns,
                vec![
                    ("ws", p.workstation as f64),
                    ("cpu_ns", p.cpu_ns as f64),
                    ("wait_ns", p.wait_ns as f64),
                ],
            );
        }
        if let Some(parent) = self.procs[pid].parent {
            self.procs[parent].live_children -= 1;
            if self.procs[parent].live_children == 0
                && self.procs[parent].state == ProcState::Joining
            {
                self.procs[parent].step += 1;
                self.procs[parent].state = ProcState::Ready;
            }
        }
    }

    fn report(&self) -> SimReport {
        let processes: Vec<ProcessReport> = self
            .procs
            .iter()
            .map(|p| ProcessReport {
                name: p.name.clone(),
                kind: p.kind,
                workstation: p.workstation,
                start_s: p.start_ns as f64 / 1e9,
                end_s: p.end_ns as f64 / 1e9,
                cpu_s: p.cpu_ns as f64 / 1e9,
                overhead_s: p.overhead_ns as f64 / 1e9,
                net_s: p.net_ns as f64 / 1e9,
                disk_s: p.disk_ns as f64 / 1e9,
                wait_s: p.wait_ns as f64 / 1e9,
            })
            .collect();
        SimReport {
            elapsed_s: self.time as f64 / 1e9,
            ethernet_busy_s: self.ethernet.busy_ns as f64 / 1e9,
            disk_busy_s: self.disk.busy_ns as f64 / 1e9,
            cpu_busy_s: self.cpus.iter().map(|c| c.busy_ns as f64 / 1e9).collect(),
            processes,
        }
    }
}

/// Convenience: run one spec under `config`.
pub fn simulate(config: HostConfig, root: ProcessSpec) -> SimReport {
    Simulation::new(config).run(root)
}

/// [`simulate`] with virtual-time tracing: every service interval
/// becomes a span on its resource's track (categories `cpu`, `net`,
/// `disk`), every process lifetime a span on its own track (category
/// `process`), and every dispatch/block decision an instant event
/// (category `sched`). See `docs/TRACING.md` for the schema.
pub fn simulate_traced(config: HostConfig, root: ProcessSpec, trace: &Trace) -> SimReport {
    Simulation::new_traced(config, trace.clone()).run(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostConfig {
        HostConfig {
            workstations: 4,
            cpu_units_per_sec: 1000.0,
            mem_words: 1000,
            ethernet_bytes_per_sec: 1000.0,
            net_latency_s: 0.0,
            disk_bytes_per_sec: 1000.0,
            disk_latency_s: 0.0,
            lisp_image_bytes: 0,
            lisp_init_units: 0,
            c_startup_units: 0,
            gc_coeff: 0.0,
            gc_scale: 1000.0,
            gc_power: 1.0,
            page_coeff: 1.0,
            page_power: 1.0,
        }
    }

    #[test]
    fn single_cpu_burst_time() {
        let r = simulate(cfg(), ProcessSpec::new("p", 0, ProcKind::C).cpu(500));
        assert!((r.elapsed_s - 0.5).abs() < 1e-9, "{}", r.elapsed_s);
        assert!((r.processes[0].cpu_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_children_on_distinct_workstations_overlap() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).cpu(1000),
                ProcessSpec::new("b", 2, ProcKind::C).cpu(1000),
            ])
            .join();
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 1.0).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn same_workstation_serializes() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).cpu(1000),
                ProcessSpec::new("b", 1, ProcKind::C).cpu(1000),
            ])
            .join();
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        // The second process records queueing delay.
        let total_wait: f64 = r.processes.iter().map(|p| p.wait_s).sum();
        assert!(total_wait > 0.9);
    }

    #[test]
    fn ethernet_contention_serializes_transfers() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).net(1000),
                ProcessSpec::new("b", 2, ProcKind::C).net(1000),
            ])
            .join();
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert!((r.ethernet_busy_s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn disk_crosses_network_then_disk() {
        let r = simulate(cfg(), ProcessSpec::new("p", 0, ProcKind::C).disk(1000));
        // 1s network + 1s disk.
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert!((r.disk_busy_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lisp_startup_costs_applied() {
        let mut c = cfg();
        c.lisp_image_bytes = 2000; // 2s network + 2s disk
        c.lisp_init_units = 500; // 0.5s
        let r = simulate(c, ProcessSpec::new("l", 0, ProcKind::Lisp).cpu(0));
        assert!((r.elapsed_s - 4.5).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn paging_slows_big_heaps() {
        let mut c = cfg();
        c.page_coeff = 1.0;
        // heap = 2×memory → factor 1 + (1000/1000)^1 = 2.
        let r = simulate(
            c,
            ProcessSpec::new("l", 0, ProcKind::Lisp).heap(2000).cpu(1000),
        );
        assert!((r.elapsed_s - 2.0).abs() < 1e-6, "{}", r.elapsed_s);
        assert!((r.processes[0].overhead_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn queued_processes_do_not_add_pressure() {
        let mut c = cfg();
        c.page_coeff = 1.0;
        // Two Lisp processes, 800 words each, same workstation: under
        // run-to-completion scheduling each runs with only its own
        // working set resident — no paging (each fits alone).
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::Lisp).heap(800).cpu(1000),
                ProcessSpec::new("b", 1, ProcKind::Lisp).heap(800).cpu(1000),
            ])
            .join();
        let r = simulate(c, root);
        let total_overhead: f64 = r.processes.iter().map(|p| p.overhead_s).sum();
        assert_eq!(total_overhead, 0.0, "{:?}", r.processes);
    }

    #[test]
    fn gc_overhead_counted() {
        let mut c = cfg();
        c.gc_coeff = 0.5;
        c.gc_scale = 1000.0;
        let r = simulate(c, ProcessSpec::new("l", 0, ProcKind::Lisp).heap(1000).cpu(1000));
        // factor = 1.5 → 1.5 s.
        assert!((r.elapsed_s - 1.5).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            ProcessSpec::new("m", 0, ProcKind::C)
                .fork(vec![
                    ProcessSpec::new("a", 1, ProcKind::Lisp).heap(500).cpu(700).disk(300),
                    ProcessSpec::new("b", 2, ProcKind::Lisp).heap(600).cpu(900).disk(400),
                    ProcessSpec::new("c", 3, ProcKind::Lisp).heap(700).cpu(1100).disk(500),
                ])
                .join()
                .cpu(100)
        };
        let r1 = simulate(cfg(), build());
        let r2 = simulate(cfg(), build());
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn traced_run_records_service_and_process_spans() {
        let trace = Trace::new(warp_obs::ClockDomain::Virtual);
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("a", 1, ProcKind::C).cpu(1000),
                ProcessSpec::new("b", 1, ProcKind::C).cpu(1000),
            ])
            .join();
        let r = simulate_traced(cfg(), root, &trace);
        let snap = trace.snapshot();
        // One cpu span per service interval, durations matching the report.
        let cpu_total_ns: u64 = snap.spans_in("cpu").map(|s| s.dur_ns).sum();
        let report_cpu: f64 = r.processes.iter().map(|p| p.cpu_s).sum();
        assert!((cpu_total_ns as f64 / 1e9 - report_cpu).abs() < 1e-9);
        // One process-lifetime span per process, ending at the horizon.
        assert_eq!(snap.spans_in("process").count(), 3);
        assert_eq!(snap.end_ns() as f64 / 1e9, r.elapsed_s);
        // `b` contended for workstation 1 → at least one block instant.
        assert!(snap.instants.iter().any(|i| i.name.starts_with("block cpu")));
        // Spans carry the workstation tag (children ran on ws 1).
        assert!(snap
            .spans_in("cpu")
            .filter(|s| s.name != "m")
            .all(|s| s.arg("ws") == Some(1.0)));
    }

    #[test]
    fn untraced_run_matches_traced_report() {
        let build = || {
            ProcessSpec::new("m", 0, ProcKind::C)
                .fork(vec![
                    ProcessSpec::new("a", 1, ProcKind::Lisp).heap(500).cpu(700).disk(300),
                    ProcessSpec::new("b", 2, ProcKind::Lisp).heap(600).cpu(900).disk(400),
                ])
                .join()
                .cpu(100)
        };
        let plain = simulate(cfg(), build());
        let traced = simulate_traced(cfg(), build(), &Trace::new(warp_obs::ClockDomain::Virtual));
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
    }

    #[test]
    fn join_waits_for_all_children() {
        let root = ProcessSpec::new("m", 0, ProcKind::C)
            .fork(vec![
                ProcessSpec::new("fast", 1, ProcKind::C).cpu(100),
                ProcessSpec::new("slow", 2, ProcKind::C).cpu(2000),
            ])
            .join()
            .cpu(100);
        let r = simulate(cfg(), root);
        assert!((r.elapsed_s - 2.1).abs() < 1e-6, "{}", r.elapsed_s);
    }

    #[test]
    fn grandchildren_joined_transitively() {
        let leaf = ProcessSpec::new("leaf", 2, ProcKind::C).cpu(1000);
        let mid = ProcessSpec::new("mid", 1, ProcKind::C).fork(vec![leaf]).join();
        let root = ProcessSpec::new("root", 0, ProcKind::C).fork(vec![mid]).join();
        let r = simulate(cfg(), root);
        assert!(r.elapsed_s >= 1.0);
        assert!(r.processes.iter().all(|p| p.end_s > 0.0 || p.cpu_s == 0.0));
    }
}
