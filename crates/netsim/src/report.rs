//! Simulation reports: the aggregated accounting of one run.
//!
//! A [`SimReport`] is the engine's summary view — elapsed time,
//! per-workstation CPU busy time, shared-resource (Ethernet/disk)
//! occupancy, and one [`ProcessReport`] per spawned process in spawn
//! order. All times are in seconds, converted once from the engine's
//! integer-nanosecond clock, so equal inputs produce bit-equal
//! reports.
//!
//! The paper's measurements (§4.2) are projections of this data:
//! `parcc::Measurement::from_report` selects processes by name prefix
//! via [`SimReport::cpu_with_prefix`]. The same numbers are also
//! reachable from a trace recorded by
//! [`simulate_traced`](crate::simulate_traced) — the report is the
//! *summary* view and the trace the *timeline* view of one run, and
//! the two are asserted to agree.

use crate::process::ProcKind;
use serde::{Deserialize, Serialize};

/// Per-process accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessReport {
    /// Process name.
    pub name: String,
    /// C or Lisp.
    pub kind: ProcKind,
    /// Workstation it ran on.
    pub workstation: usize,
    /// Simulated start time (seconds).
    pub start_s: f64,
    /// Simulated end time (seconds).
    pub end_s: f64,
    /// CPU seconds consumed (including GC/paging overhead).
    pub cpu_s: f64,
    /// Portion of `cpu_s` attributable to GC and paging.
    pub overhead_s: f64,
    /// Seconds of Ethernet occupancy.
    pub net_s: f64,
    /// Seconds of file-server disk occupancy.
    pub disk_s: f64,
    /// Seconds spent waiting in resource queues.
    pub wait_s: f64,
    /// `true` if the process was killed by an injected workstation
    /// crash (a re-dispatched clone carries the work; this record is
    /// the truncated original).
    pub lost: bool,
}

impl ProcessReport {
    /// Wall-clock lifetime of the process.
    pub fn elapsed_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Aggregated fault-injection accounting for one run (all zeros when
/// the plan is empty).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Workstation crashes that actually struck (faults aimed at
    /// workstation 0 or out-of-range stations are ignored).
    pub crashes: usize,
    /// Crashed workstations that came back.
    pub reboots: usize,
    /// Processes killed by crashes (victims plus orphaned descendants).
    pub killed: usize,
    /// Lost subtree roots the master re-dispatched after its per-job
    /// timeout.
    pub redispatches: usize,
    /// Degraded-CPU windows armed.
    pub slowdowns: usize,
    /// Ethernet-partition windows armed.
    pub partitions: usize,
    /// File-server stall windows armed.
    pub stalls: usize,
    /// Requests parked behind a partition or stall window.
    pub parked: usize,
}

impl FaultSummary {
    /// `true` when nothing struck and nothing was armed.
    pub fn is_quiet(&self) -> bool {
        *self == FaultSummary::default()
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total simulated wall-clock time until the last process finished
    /// — the *elapsed/user time* of the paper's measurements (§4.2.1).
    pub elapsed_s: f64,
    /// Total Ethernet busy time.
    pub ethernet_busy_s: f64,
    /// Total file-server disk busy time.
    pub disk_busy_s: f64,
    /// Per-workstation CPU busy time.
    pub cpu_busy_s: Vec<f64>,
    /// Fault-injection accounting (all zeros for fault-free runs).
    pub faults: FaultSummary,
    /// Per-process detail, in spawn order (index 0 is the root).
    pub processes: Vec<ProcessReport>,
}

impl SimReport {
    /// CPU seconds of the process named `name` (0.0 if absent).
    pub fn cpu_of(&self, name: &str) -> f64 {
        self.processes
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.cpu_s)
            .sum()
    }

    /// Sum of CPU seconds over processes whose name starts with
    /// `prefix`.
    pub fn cpu_with_prefix(&self, prefix: &str) -> f64 {
        self.processes
            .iter()
            .filter(|p| p.name.starts_with(prefix))
            .map(|p| p.cpu_s)
            .sum()
    }

    /// Maximum per-workstation CPU busy time — the paper reports CPU
    /// time "on a per-processor basis" (§4.2.1).
    pub fn max_cpu_busy_s(&self) -> f64 {
        self.cpu_busy_s.iter().copied().fold(0.0, f64::max)
    }

    /// Number of workstations that actually executed anything.
    pub fn workstations_used(&self) -> usize {
        self.cpu_busy_s.iter().filter(|&&b| b > 0.0).count()
    }

    /// Processes lost to injected crashes.
    pub fn lost_processes(&self) -> impl Iterator<Item = &ProcessReport> {
        self.processes.iter().filter(|p| p.lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            elapsed_s: 10.0,
            ethernet_busy_s: 2.0,
            disk_busy_s: 1.0,
            cpu_busy_s: vec![5.0, 7.0, 0.0],
            faults: FaultSummary::default(),
            processes: vec![
                ProcessReport {
                    name: "master".into(),
                    kind: ProcKind::C,
                    workstation: 0,
                    start_s: 0.0,
                    end_s: 10.0,
                    cpu_s: 1.0,
                    overhead_s: 0.0,
                    net_s: 0.1,
                    disk_s: 0.0,
                    wait_s: 0.0,
                    lost: false,
                },
                ProcessReport {
                    name: "fn-master 1".into(),
                    kind: ProcKind::Lisp,
                    workstation: 1,
                    start_s: 1.0,
                    end_s: 9.0,
                    cpu_s: 7.0,
                    overhead_s: 1.5,
                    net_s: 0.5,
                    disk_s: 0.3,
                    wait_s: 0.2,
                    lost: false,
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let r = report();
        assert_eq!(r.cpu_of("master"), 1.0);
        assert_eq!(r.cpu_with_prefix("fn-master"), 7.0);
        assert_eq!(r.max_cpu_busy_s(), 7.0);
        assert_eq!(r.workstations_used(), 2);
        assert_eq!(r.processes[1].elapsed_s(), 8.0);
        assert_eq!(r.lost_processes().count(), 0);
        assert!(r.faults.is_quiet());
    }
}
