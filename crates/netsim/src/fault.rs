//! Deterministic fault injection: the chaos of the 1989 host, seeded.
//!
//! The paper's host is the flakiest part of the whole system — ~40
//! diskless SUNs on one shared Ethernet with an NFS file server, where
//! workstations reboot, swap themselves to death, or fall off the
//! network mid-build. A [`FaultPlan`] is a seeded, reproducible script
//! of such failures injected into the discrete-event engine:
//!
//! * [`FaultKind::Crash`] — a workstation dies at virtual time *t*
//!   (optionally rebooting later). Every process hosted on it is
//!   killed, together with its descendants; the master notices each
//!   loss after a per-job detection timeout and re-dispatches a clone
//!   of the lost process tree onto a surviving workstation, with
//!   exponential backoff per retry.
//! * [`FaultKind::Slowdown`] — a degraded CPU: bursts granted on the
//!   workstation during the window take `factor` times as long
//!   (thermal throttling, a user logging in, a runaway daemon).
//! * [`FaultKind::Partition`] — the workstation falls off the
//!   Ethernet: transfers it requests during the window park until the
//!   partition heals (retransmission after the segment recovers).
//! * [`FaultKind::ServerStall`] — the file server stops answering:
//!   every disk request during the window parks until it recovers.
//!
//! Plans never target workstation 0: that is the master's machine
//! (the user's own workstation in the paper's setup), assumed
//! reliable so the build as a whole can always complete — the same
//! role the in-master sequential fallback plays in the real threaded
//! driver (`parcc::threads`).
//!
//! Everything is integer-deterministic: the same plan against the
//! same process tree produces a bit-identical [`crate::SimReport`]
//! and a bit-identical virtual-time trace.

use serde::{Deserialize, Serialize};

/// One failure mode of the simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Workstation `workstation` crashes; all processes hosted on it
    /// die. If `reboot_after_s > 0` the machine comes back that many
    /// seconds later, otherwise it stays down for the whole run.
    Crash {
        /// The workstation that dies (never 0).
        workstation: usize,
        /// Seconds until the machine reboots; `<= 0` means never.
        reboot_after_s: f64,
    },
    /// CPU bursts granted on `workstation` during the window take
    /// `factor` times as long.
    Slowdown {
        /// The degraded workstation (never 0).
        workstation: usize,
        /// Service-time multiplier (> 1).
        factor: f64,
        /// Window length in seconds.
        dur_s: f64,
    },
    /// Ethernet transfers requested by processes on `workstation`
    /// during the window are lost; the requester parks until the
    /// partition heals, then retransmits.
    Partition {
        /// The partitioned workstation (never 0).
        workstation: usize,
        /// Window length in seconds.
        dur_s: f64,
    },
    /// The file server stops serving: disk requests during the window
    /// park until it recovers (an NFS server "not responding, still
    /// trying").
    ServerStall {
        /// Window length in seconds.
        dur_s: f64,
    },
}

/// A fault scheduled at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time the fault strikes, in seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, deterministic script of host failures plus the master's
/// recovery policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Seconds after a process is lost before the master's per-job
    /// timeout fires and it re-dispatches the work.
    pub detect_timeout_s: f64,
    /// Base re-dispatch backoff in seconds; doubles with every retry
    /// of the same process.
    pub backoff_s: f64,
    /// Retries before the master gives up on spare workstations and
    /// pulls the work onto its own machine (workstation 0).
    pub max_retries: usize,
    /// The scripted faults.
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            detect_timeout_s: 5.0,
            backoff_s: 1.0,
            max_retries: 3,
            events: Vec::new(),
        }
    }
}

/// splitmix64: the deterministic stream behind [`FaultPlan::generate`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// An empty plan: no faults, default recovery policy.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates `k` faults from `seed`, spread uniformly over
    /// `(0, horizon_s)` and over workstations `1..workstations`
    /// (workstation 0, the master's machine, is never targeted). The
    /// mix is weighted toward the failure modes the paper's host
    /// actually exhibited: crashes/reboots first, then degraded CPUs,
    /// network drop-outs and file-server stalls.
    ///
    /// The same `(seed, k, workstations, horizon_s)` always produces
    /// the same plan.
    pub fn generate(seed: u64, k: usize, workstations: usize, horizon_s: f64) -> FaultPlan {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        if workstations < 2 || horizon_s <= 0.0 {
            return plan;
        }
        let mut state = seed ^ 0xfa17_0b5e_1989_cafe;
        for _ in 0..k {
            let at_s = unit(splitmix64(&mut state)) * horizon_s;
            let ws = 1 + (splitmix64(&mut state) as usize % (workstations - 1));
            let roll = unit(splitmix64(&mut state));
            let kind = if roll < 0.40 {
                // Crash; 70% of crashed machines reboot.
                let reboots = unit(splitmix64(&mut state)) < 0.70;
                let reboot_after_s = if reboots {
                    10.0 + unit(splitmix64(&mut state)) * 0.3 * horizon_s
                } else {
                    0.0
                };
                FaultKind::Crash {
                    workstation: ws,
                    reboot_after_s,
                }
            } else if roll < 0.65 {
                FaultKind::Slowdown {
                    workstation: ws,
                    factor: 2.0 + unit(splitmix64(&mut state)) * 6.0,
                    dur_s: (0.1 + unit(splitmix64(&mut state)) * 0.4) * horizon_s,
                }
            } else if roll < 0.85 {
                FaultKind::Partition {
                    workstation: ws,
                    dur_s: (0.05 + unit(splitmix64(&mut state)) * 0.2) * horizon_s,
                }
            } else {
                FaultKind::ServerStall {
                    dur_s: (0.02 + unit(splitmix64(&mut state)) * 0.1) * horizon_s,
                }
            };
            plan.events.push(FaultEvent { at_s, kind });
        }
        // Strike order is part of the plan's identity: sort by time so
        // the engine can schedule the script directly.
        plan.events
            .sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite fault times"));
        plan
    }

    /// A plan containing exactly one fault, with the default recovery
    /// policy — convenient for targeted tests.
    pub fn single(at_s: f64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            events: vec![FaultEvent { at_s, kind }],
            ..FaultPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultPlan::generate(42, 8, 15, 300.0);
        let b = FaultPlan::generate(42, 8, 15, 300.0);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 8, 15, 300.0);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_faults_stay_in_bounds() {
        for seed in 0..32u64 {
            let plan = FaultPlan::generate(seed, 16, 10, 100.0);
            assert_eq!(plan.events.len(), 16);
            for e in &plan.events {
                assert!(e.at_s >= 0.0 && e.at_s <= 100.0, "{e:?}");
                match e.kind {
                    FaultKind::Crash { workstation, .. }
                    | FaultKind::Slowdown { workstation, .. }
                    | FaultKind::Partition { workstation, .. } => {
                        assert!((1..10).contains(&workstation), "{e:?}");
                    }
                    FaultKind::ServerStall { dur_s } => assert!(dur_s > 0.0),
                }
            }
            // Sorted by strike time.
            for w in plan.events.windows(2) {
                assert!(w[0].at_s <= w[1].at_s);
            }
        }
    }

    #[test]
    fn degenerate_hosts_get_empty_plans() {
        assert!(FaultPlan::generate(1, 8, 1, 100.0).is_empty());
        assert!(FaultPlan::generate(1, 8, 0, 100.0).is_empty());
        assert!(FaultPlan::generate(1, 8, 15, 0.0).is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn every_fault_class_appears_across_seeds() {
        let mut crash = false;
        let mut slow = false;
        let mut part = false;
        let mut stall = false;
        for seed in 0..8u64 {
            for e in FaultPlan::generate(seed, 8, 15, 200.0).events {
                match e.kind {
                    FaultKind::Crash { .. } => crash = true,
                    FaultKind::Slowdown { .. } => slow = true,
                    FaultKind::Partition { .. } => part = true,
                    FaultKind::ServerStall { .. } => stall = true,
                }
            }
        }
        assert!(crash && slow && part && stall);
    }
}
