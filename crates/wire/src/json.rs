//! A minimal JSON value — parser and writer — for the wire protocol.
//!
//! The workspace is hermetic (no `serde_json`), and the protocol needs
//! a *strict* reader anyway: a daemon must reject malformed frames
//! deterministically rather than guess. This module implements exactly
//! the JSON subset the protocol uses — objects, arrays, strings with
//! escapes, finite numbers, booleans, null — with no extensions, and a
//! writer whose output round-trips through the parser.
//!
//! Numbers are `f64`. Every integer the protocol carries (ids, counts,
//! nanosecond latencies) is well below 2^53, so the round-trip is
//! exact; byte payloads (compiled images) travel as hex strings, never
//! as number arrays.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), so the writer's output
    /// is deterministic regardless of insertion order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value of object field `key`, if this is an object that has
    /// it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Field `key` as a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field `key` as a number.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Field `key` as a `u64` (must be a non-negative integral number).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        let n = self.num_field(key)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Field `key` as a bool.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Builds an object from key/value pairs (a tidy literal syntax for
/// protocol encoders).
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// Returns [`JsonError`] with the failing byte offset on malformed
/// input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Protocol strings never need surrogate
                            // pairs; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume the whole run of unescaped bytes at once
                    // (module sources arrive as one large string; a
                    // per-character loop would be quadratic). The run
                    // ends at an ASCII delimiter, so its boundaries are
                    // char boundaries of the (valid UTF-8) input.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is a str and runs end on ASCII"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = obj(vec![
            ("id", Json::Num(7.0)),
            ("kind", Json::Str("compile".into())),
            ("module", Json::Str("module m;\n\"quoted\"\t\\".into())),
            (
                "flags",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-1.5)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "1e999",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn big_integers_are_exact() {
        // Nanosecond latencies: u64 values well below 2^53.
        let ns: u64 = 123_456_789_012_345;
        let v = obj(vec![("t", Json::Num(ns as f64))]);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.u64_field("t"), Some(ns));
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("warp → compile ∀ fns".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
