//! Length-prefixed framing and hex codecs.
//!
//! Every message on every socket in the workspace is one **frame**: a
//! 4-byte little-endian payload length followed by that many bytes of
//! UTF-8 JSON (one object). A frame whose declared length exceeds the
//! receiver's limit poisons the connection — the receiver answers once
//! (if its protocol has an answer) and closes, because the oversized
//! payload is still in the pipe.

use crate::json::{parse, Json};
use std::io::{self, Read, Write};

/// Default maximum frame payload size (16 MiB) — generous for module
/// sources and hex-encoded images, small enough that a bad length
/// prefix cannot balloon memory.
pub const MAX_FRAME_DEFAULT: usize = 16 * 1024 * 1024;

/// What went wrong while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The declared payload length exceeds the receiver's limit.
    TooLarge {
        /// The declared length.
        declared: usize,
        /// The receiver's limit.
        limit: usize,
    },
    /// The connection died mid-frame (truncation) or another I/O
    /// error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { declared, limit } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: 4-byte little-endian length, then the payload.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame over 4 GiB"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, retrying reads that time out for as long as
/// `keep_going()` returns true (the daemon polls its shutdown flag
/// between read timeouts; clients pass `|| true`).
///
/// On [`FrameError::TooLarge`] **nothing past the length prefix has
/// been consumed**: the caller must treat the connection as poisoned
/// (answer once, then close), because the oversized payload is still
/// in the pipe.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF between frames, `TooLarge` on a
/// length over `max`, `Io` on truncation or transport failure.
pub fn read_frame(
    r: &mut impl Read,
    max: usize,
    keep_going: impl Fn() -> bool,
) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    read_exact_retry(r, &mut header, true, &keep_going)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > max {
        return Err(FrameError::TooLarge {
            declared: len,
            limit: max,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_retry(r, &mut payload, false, &keep_going)?;
    Ok(payload)
}

/// `read_exact` that tolerates read-timeout errors by re-checking
/// `keep_going`. EOF before the first byte of the *header* is a clean
/// close; EOF anywhere else is a truncated frame.
fn read_exact_retry(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_is_close: bool,
    keep_going: &impl Fn() -> bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if eof_is_close && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated frame",
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) || e.kind() == io::ErrorKind::Interrupted =>
            {
                if !keep_going() {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "shutting down",
                    )));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Writes `msg` as one JSON frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_message(w: &mut impl Write, msg: &Json) -> io::Result<()> {
    write_frame(w, msg.to_string().as_bytes())
}

/// Reads one frame and parses it as JSON. A payload that is not valid
/// UTF-8 JSON yields `Ok(Err(description))` — a *protocol*-level
/// error the receiver answers in-band (the daemon says `bad-json`),
/// distinct from the transport-level [`FrameError`].
///
/// # Errors
///
/// [`FrameError`] on transport problems.
pub fn read_message(
    r: &mut impl Read,
    max: usize,
    keep_going: impl Fn() -> bool,
) -> Result<Result<Json, String>, FrameError> {
    let payload = read_frame(r, max, keep_going)?;
    let Ok(text) = std::str::from_utf8(&payload) else {
        return Ok(Err("frame payload is not UTF-8".to_string()));
    };
    Ok(parse(text).map_err(|e| e.to_string()))
}

/// Hex-encodes bytes (lowercase).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase/uppercase hex string.
///
/// # Errors
///
/// Describes the first bad digit or an odd length.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".to_string());
    }
    let digit = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("bad hex digit `{}`", c as char)),
        }
    };
    s.as_bytes()
        .chunks(2)
        .map(|pair| Ok(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024, || true).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024, || true).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut r, 1024, || true),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let mut r = Cursor::new(buf.clone());
        assert!(matches!(
            read_frame(&mut r, 99, || true),
            Err(FrameError::TooLarge {
                declared: 100,
                limit: 99
            })
        ));

        // Truncate mid-payload.
        let mut r = Cursor::new(buf[..50].to_vec());
        match read_frame(&mut r, 1024, || true) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
