//! The wire layer shared by every networked component of the
//! workspace: `warpd` (compilation as a service) and the `warp-farm`
//! multi-process build farm.
//!
//! Two modules, both dependency-free (the build is hermetic — no
//! serde, no registry access):
//!
//! * [`json`] — a strict minimal JSON value type, parser and
//!   deterministic writer covering exactly the subset the protocols
//!   use;
//! * [`frame`] — 4-byte little-endian length-prefixed frames with a
//!   hard size limit, timeout-tolerant reads, and the hex codecs used
//!   for binary payloads.
//!
//! This crate deliberately knows nothing about requests, responses or
//! compilation: `warp_service::proto` layers the daemon's
//! request/response types on top, and `parcc::farm` layers the
//! coordinator/worker job protocol on top. Keeping the substrate here
//! lets both ends of every connection agree on framing without
//! `warp-service` and `parcc` depending on each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod json;

pub use frame::{
    from_hex, read_frame, read_message, to_hex, write_frame, write_message, FrameError,
    MAX_FRAME_DEFAULT,
};
pub use json::{obj, parse, Json, JsonError};
