//! # warp-cache
//!
//! A content-addressed object cache for incremental function
//! compilation.
//!
//! The paper's parallel compiler recompiles every function of a module
//! on every build; the dominant real-world win — recompiling after a
//! small edit — needs a *function-level* cache. This crate provides the
//! storage half of that feature, kept deliberately generic so it sits
//! below the compiler driver in the crate graph:
//!
//! * [`StableHasher`] — a stable 64-bit FNV-1a hasher whose output is
//!   identical across processes, platforms and compiler versions (the
//!   standard library's `DefaultHasher` makes no such promise, and an
//!   on-disk cache outlives the process that wrote it);
//! * [`CacheKey`] — the content address: whoever builds a key is
//!   responsible for feeding *everything* the cached artifact depends
//!   on into the hasher (source text, visible interface, options,
//!   compiler version — see `parcc::fncache` for the compiler's key);
//! * [`CacheValue`] — the serialization contract a cached artifact
//!   implements (a self-validating byte codec);
//! * [`Cache`] — a thread-safe in-memory map with an optional on-disk
//!   blob store behind it, plus [`CacheStats`] hit/miss accounting;
//! * [`InFlight`] — in-flight deduplication for concurrent builders
//!   sharing one cache (the `warpd` service leases a key before
//!   probing, so N simultaneous identical requests compile once).
//!
//! Correctness contract: a cache *lookup* may only succeed for a key
//! whose artifact is bit-identical to what a fresh compilation would
//! produce. The cache itself guarantees storage fidelity (checksummed
//! blobs, decode failures degrade to misses); key completeness is the
//! caller's obligation and is what the compiler's invalidation tests
//! pin down.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inflight;
pub mod stats;
pub mod store;

pub use inflight::{InFlight, Lease};
pub use stats::CacheStats;
pub use store::{Cache, CacheValue};

/// A stable 64-bit FNV-1a hasher.
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the digest is a
/// pure function of the bytes fed in — stable across processes, Rust
/// releases and platforms — so it is safe to use as an on-disk content
/// address.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            state: FNV64_OFFSET,
        }
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV64_PRIME);
        }
        self
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[u8::from(v)])
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// Finishes into a [`CacheKey`].
    pub fn key(&self) -> CacheKey {
        CacheKey(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// A content address: the stable hash of everything a cached artifact
/// depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

impl CacheKey {
    /// The key as a fixed-width lowercase hex string (used as the
    /// on-disk file stem).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vector: "foobar" -> 0x85944171f73967e8.
        let mut h = StableHasher::new();
        h.bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut a = StableHasher::new();
        a.str("ab").str("c");
        let mut b = StableHasher::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(CacheKey(0xab).hex(), "00000000000000ab");
        assert_eq!(CacheKey(u64::MAX).hex(), "ffffffffffffffff");
    }
}
