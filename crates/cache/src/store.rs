//! The two-tier store: in-memory map in front of an optional on-disk
//! blob directory.

use crate::stats::{CacheStats, StatCounters};
use crate::CacheKey;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes opening every on-disk cache object.
pub const OBJECT_MAGIC: &[u8; 8] = b"WARPFC01";

/// The serialization contract for cached artifacts.
///
/// `from_bytes(to_bytes(v)) == Some(v)` must hold; `from_bytes` must
/// return `None` (never panic) on input it does not understand, so a
/// stale or foreign object degrades to a cache miss.
pub trait CacheValue: Clone {
    /// Serializes the artifact.
    fn to_bytes(&self) -> Vec<u8>;
    /// Deserializes, or `None` if the bytes are not a valid artifact.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
}

fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A content-addressed cache of `V` artifacts.
///
/// Thread-safe: lookups and stores may race from many worker threads
/// (the parallel driver probes it from the master and populates it
/// from every function master).
#[derive(Debug)]
pub struct Cache<V> {
    map: Mutex<HashMap<CacheKey, V>>,
    dir: Option<PathBuf>,
    stats: StatCounters,
}

impl<V: CacheValue> Cache<V> {
    /// A purely in-memory cache (lives as long as the process; what
    /// `compile_parallel_cached` uses within one build, and what tests
    /// use for warm-rebuild scenarios).
    pub fn in_memory() -> Cache<V> {
        Cache {
            map: Mutex::new(HashMap::new()),
            dir: None,
            stats: StatCounters::default(),
        }
    }

    /// A cache backed by an on-disk object directory (`warpcc
    /// --cache-dir`): misses fall through to `dir`, stores write
    /// through to it, so the cache survives the process.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Cache<V>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Cache {
            map: Mutex::new(HashMap::new()),
            dir: Some(dir),
            stats: StatCounters::default(),
        })
    }

    /// The on-disk directory, if this cache has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Path of the object file for `key` (even if it does not exist).
    fn object_path(dir: &Path, key: CacheKey) -> PathBuf {
        dir.join(format!("{}.wco", key.hex()))
    }

    /// Looks up `key`: first the in-memory map, then the disk store.
    /// A disk hit is decoded, validated and promoted into memory.
    pub fn lookup(&self, key: CacheKey) -> Option<V> {
        if let Some(v) = self.map.lock().expect("cache lock").get(&key) {
            StatCounters::bump(&self.stats.memory_hits);
            return Some(v.clone());
        }
        if let Some(dir) = &self.dir {
            match std::fs::read(Self::object_path(dir, key)) {
                Ok(bytes) => match decode_object(key, &bytes).and_then(V::from_bytes) {
                    Some(v) => {
                        StatCounters::bump(&self.stats.disk_hits);
                        self.map.lock().expect("cache lock").insert(key, v.clone());
                        return Some(v);
                    }
                    None => {
                        // Corrupt or stale-format object: drop it and
                        // treat as a miss.
                        StatCounters::bump(&self.stats.errors);
                        let _ = std::fs::remove_file(Self::object_path(dir, key));
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => StatCounters::bump(&self.stats.errors),
            }
        }
        StatCounters::bump(&self.stats.misses);
        None
    }

    /// Inserts `value` under `key`, writing through to the disk store
    /// if one is configured. Disk write failures are counted but not
    /// fatal — the build result is already in hand.
    pub fn store(&self, key: CacheKey, value: V) {
        if let Some(dir) = &self.dir {
            let blob = encode_object(key, &value.to_bytes());
            // Write via a unique temp file + rename so concurrent
            // writers of the same key can never interleave bytes.
            let tmp = dir.join(format!(".{}.{:x}.tmp", key.hex(), std::process::id()));
            let ok = std::fs::write(&tmp, &blob)
                .and_then(|()| std::fs::rename(&tmp, Self::object_path(dir, key)))
                .is_ok();
            if !ok {
                StatCounters::bump(&self.stats.errors);
                let _ = std::fs::remove_file(&tmp);
            }
        }
        self.map.lock().expect("cache lock").insert(key, value);
        StatCounters::bump(&self.stats.stores);
    }

    /// A fresh in-memory cache seeded with a copy of this cache's
    /// in-memory entries, with zeroed counters and no disk tier.
    /// Useful for replaying a rebuild against a fixed prior state (the
    /// incremental-compilation benches fork a primed cache per
    /// scenario so stores during one run cannot leak into the next).
    pub fn fork_memory(&self) -> Cache<V> {
        Cache {
            map: Mutex::new(self.map.lock().expect("cache lock").clone()),
            dir: None,
            stats: StatCounters::default(),
        }
    }

    /// Number of objects currently held in memory.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// `true` if the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Activity counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }
}

/// Frames a payload as an on-disk object: magic, the key (a self-check
/// against renamed files), a length-prefixed payload, and a trailing
/// FNV-1a-32 checksum over everything before it.
fn encode_object(key: CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 24);
    buf.extend_from_slice(OBJECT_MAGIC);
    buf.extend_from_slice(&key.0.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a32(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Unframes an on-disk object, returning the payload only if the
/// magic, key, length and checksum all validate.
fn decode_object(key: CacheKey, bytes: &[u8]) -> Option<&[u8]> {
    let rest = bytes.strip_prefix(OBJECT_MAGIC.as_slice())?;
    if rest.len() < 20 {
        return None;
    }
    let (head, tail) = rest.split_at(16);
    let stored_key = u64::from_le_bytes(head[0..8].try_into().ok()?);
    let len = u64::from_le_bytes(head[8..16].try_into().ok()?) as usize;
    if stored_key != key.0 || tail.len() != len + 4 {
        return None;
    }
    let (payload, sum_bytes) = tail.split_at(len);
    let stored_sum = u32::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a32(&bytes[..bytes.len() - 4]) != stored_sum {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    impl CacheValue for String {
        fn to_bytes(&self) -> Vec<u8> {
            self.as_bytes().to_vec()
        }
        fn from_bytes(bytes: &[u8]) -> Option<Self> {
            String::from_utf8(bytes.to_vec()).ok()
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey(n)
    }

    #[test]
    fn memory_roundtrip_and_stats() {
        let c: Cache<String> = Cache::in_memory();
        assert_eq!(c.lookup(key(1)), None);
        c.store(key(1), "hello".to_string());
        assert_eq!(c.lookup(key(1)), Some("hello".to_string()));
        let s = c.stats();
        assert_eq!((s.memory_hits, s.misses, s.stores), (1, 1, 1));
    }

    #[test]
    fn disk_roundtrip_across_instances() {
        let dir = std::env::temp_dir().join(format!("warp-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c: Cache<String> = Cache::with_dir(&dir).expect("create");
            c.store(key(7), "persisted".to_string());
        }
        let c2: Cache<String> = Cache::with_dir(&dir).expect("open");
        assert_eq!(c2.lookup(key(7)), Some("persisted".to_string()));
        let s = c2.stats();
        assert_eq!(s.disk_hits, 1);
        // Promoted into memory: a second lookup is a memory hit.
        assert_eq!(c2.lookup(key(7)), Some("persisted".to_string()));
        assert_eq!(c2.stats().memory_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_object_degrades_to_miss() {
        let dir = std::env::temp_dir().join(format!("warp-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c: Cache<String> = Cache::with_dir(&dir).expect("create");
        c.store(key(9), "x".to_string());
        let path = dir.join(format!("{}.wco", key(9).hex()));
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        let fresh: Cache<String> = Cache::with_dir(&dir).expect("open");
        assert_eq!(fresh.lookup(key(9)), None);
        let s = fresh.stats();
        assert_eq!((s.errors, s.misses), (1, 1));
        // The corrupt object was removed.
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn object_framing_rejects_wrong_key() {
        let blob = encode_object(key(1), b"payload");
        assert!(decode_object(key(1), &blob).is_some());
        assert!(decode_object(key(2), &blob).is_none());
        assert!(decode_object(key(1), &blob[..blob.len() - 1]).is_none());
        assert!(decode_object(key(1), b"short").is_none());
    }
}
