//! Hit/miss accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of cache activity since construction (or since the
/// counters were read — they only ever grow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the in-memory map.
    pub memory_hits: u64,
    /// Lookups answered from the on-disk store (the object was decoded
    /// and promoted into memory).
    pub disk_hits: u64,
    /// Lookups that found nothing (the caller must compile).
    pub misses: u64,
    /// Objects inserted.
    pub stores: u64,
    /// On-disk objects that failed to read or decode; each degraded to
    /// a miss (a corrupt cache never corrupts a build).
    pub errors: u64,
}

impl CacheStats {
    /// Total hits from either tier.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits() as f64 / n as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hit(s) ({} memory, {} disk), {} miss(es), {} store(s), {} error(s), {:.0}% hit rate",
            self.hits(),
            self.memory_hits,
            self.disk_hits,
            self.misses,
            self.stores,
            self.errors,
            self.hit_rate() * 100.0
        )
    }
}

/// Internal atomic counters behind [`CacheStats`].
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub(crate) memory_hits: AtomicU64,
    pub(crate) disk_hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) stores: AtomicU64,
    pub(crate) errors: AtomicU64,
}

impl StatCounters {
    pub(crate) fn snapshot(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_rates() {
        let s = CacheStats {
            memory_hits: 3,
            disk_hits: 1,
            misses: 4,
            stores: 4,
            errors: 0,
        };
        assert_eq!(s.hits(), 4);
        assert_eq!(s.lookups(), 8);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("4 hit(s)"), "{text}");
        assert!(text.contains("50% hit rate"), "{text}");
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
