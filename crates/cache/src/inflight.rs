//! In-flight deduplication of concurrent compilations of one key.
//!
//! A multi-tenant compile service (`warpd`) shares one [`Cache`] across
//! every client. When two clients request the same cold build at the
//! same time, a plain cache gives each of them a miss and both pay for
//! the compilation — the classic *thundering herd*. [`InFlight`] closes
//! that window: before probing the cache for a key, a builder takes a
//! [`Lease`] on it. The first taker (the *leader*) proceeds
//! immediately; anyone else leasing the same key blocks until the
//! leader's lease drops — by which time the leader has stored its
//! result, so the follower's probe is a hit.
//!
//! The discipline callers must follow, in order:
//!
//! 1. `let lease = inflight.lease(key);`
//! 2. probe the cache — on a **hit**, drop the lease and return;
//! 3. on a **miss**, compile, `store` the result, then drop the lease.
//!
//! Probing *before* leasing would re-open the race (a follower's early
//! probe records a spurious miss); the service tests pin "N concurrent
//! identical requests → exactly one miss per function" through this
//! type.
//!
//! Leases on *different* keys never wait on each other; the shared
//! mutex only guards the key-set bookkeeping, never a compilation.
//!
//! [`Cache`]: crate::Cache

use crate::CacheKey;
use std::collections::HashSet;
use std::sync::{Condvar, Mutex};

/// The set of cache keys currently being built, with blocking lease
/// acquisition. See the [module docs](self) for the calling discipline.
#[derive(Debug, Default)]
pub struct InFlight {
    building: Mutex<HashSet<CacheKey>>,
    done: Condvar,
}

impl InFlight {
    /// An empty in-flight table.
    pub fn new() -> InFlight {
        InFlight::default()
    }

    /// Takes the lease on `key`, blocking while another lease on the
    /// same key is live. Returns once this caller is the (unique)
    /// holder.
    pub fn lease(&self, key: CacheKey) -> Lease<'_> {
        let mut building = self.building.lock().expect("inflight lock");
        while building.contains(&key) {
            building = self.done.wait(building).expect("inflight lock");
        }
        building.insert(key);
        Lease { owner: self, key }
    }

    /// Number of keys currently under lease.
    pub fn len(&self) -> usize {
        self.building.lock().expect("inflight lock").len()
    }

    /// `true` if no key is currently under lease.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exclusive permission to build one key; dropping it wakes every
/// waiter of that key. Obtained from [`InFlight::lease`].
#[derive(Debug)]
pub struct Lease<'a> {
    owner: &'a InFlight,
    key: CacheKey,
}

impl Lease<'_> {
    /// The leased key.
    pub fn key(&self) -> CacheKey {
        self.key
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        let mut building = self.owner.building.lock().expect("inflight lock");
        building.remove(&self.key);
        // Waiters of *any* key share the condvar; each re-checks its
        // own key, so waking all is correct (if chatty under load).
        self.owner.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn lease_is_exclusive_per_key() {
        let inflight = Arc::new(InFlight::new());
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let inflight = Arc::clone(&inflight);
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                let _lease = inflight.lease(CacheKey(42));
                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                concurrent.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "two leases on one key overlapped"
        );
        assert!(inflight.is_empty());
    }

    #[test]
    fn distinct_keys_do_not_block_each_other() {
        let inflight = InFlight::new();
        let a = inflight.lease(CacheKey(1));
        // Must not deadlock: key 2 is free even while key 1 is leased.
        let b = inflight.lease(CacheKey(2));
        assert_eq!(inflight.len(), 2);
        drop(a);
        drop(b);
        assert!(inflight.is_empty());
    }

    #[test]
    fn release_after_drop_succeeds() {
        let inflight = InFlight::new();
        drop(inflight.lease(CacheKey(7)));
        let lease = inflight.lease(CacheKey(7));
        assert_eq!(lease.key(), CacheKey(7));
    }
}
