//! # warp-obs
//!
//! Unified span tracing for the Warp parallel-compilation stack. The
//! paper's contribution is empirical — §4 decomposes elapsed time into
//! master / parser / section / function work and overheads — and this
//! crate is the instrumentation layer that makes those decompositions
//! observable end to end instead of reconstructed from coarse
//! aggregates.
//!
//! One event model, two clock domains:
//!
//! * the **threaded driver** (`parcc::threads`, `parcc::driver`) and
//!   the compiler passes record real monotonic time
//!   ([`ClockDomain::Monotonic`]);
//! * the **netsim engine** records its deterministic virtual timeline
//!   ([`ClockDomain::Virtual`]) — process dispatch/block/complete
//!   events and per-resource service spans at simulated 1989 scale.
//!
//! Both produce the same [`TraceSnapshot`], export to the same Chrome
//! `trace_event` JSON ([`to_chrome_json`], loadable in Perfetto or
//! `chrome://tracing`) and render the same text summary
//! ([`render_summary`]). The record schema and its stability
//! guarantees are specified in `docs/TRACING.md`.
//!
//! The crate is dependency-free and forbids `unsafe`; a disabled
//! [`Trace`] makes every instrumentation point a no-op, so the hot
//! paths pay nothing when tracing is off.
//!
//! # Example
//!
//! ```
//! use warp_obs::{ClockDomain, Trace};
//!
//! let trace = Trace::new(ClockDomain::Monotonic);
//! let track = trace.track("driver");
//! {
//!     let mut span = trace.span("driver", "parse", track);
//!     span.arg("tokens", 128.0);
//! } // recorded on drop
//! let snap = trace.snapshot();
//! assert_eq!(snap.spans.len(), 1);
//! let json = warp_obs::to_chrome_json(&snap);
//! assert!(warp_obs::validate_chrome_json(&json).unwrap().spans == 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod summary;
pub mod trace;

pub use chrome::{to_chrome_json, validate_chrome_json, ChromeTraceStats};
pub use summary::render_summary;
pub use trace::{
    ClockDomain, CounterRecord, InstantRecord, SpanGuard, SpanRecord, Trace, TraceSnapshot, TrackId,
};
