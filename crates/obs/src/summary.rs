//! Compact text rendering of a trace: per-category totals, the top-N
//! longest spans, and the counter table. This is what `warpcc --trace`
//! prints to stderr next to the JSON file, so a timeline is readable
//! without leaving the terminal.

use crate::trace::{ClockDomain, TraceSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Formats `ns` in the natural unit of the domain: milliseconds for
/// host time, simulated seconds for virtual time.
fn fmt_ns(domain: ClockDomain, ns: u64) -> String {
    match domain {
        ClockDomain::Monotonic => format!("{:.3}ms", ns as f64 / 1e6),
        ClockDomain::Virtual => format!("{:.3}s", ns as f64 / 1e9),
    }
}

/// Renders the summary of a snapshot: span/event counts, per-category
/// totals (time and span count), the `top_n` longest spans with their
/// tracks, and every counter's last value.
pub fn render_summary(snap: &TraceSnapshot, top_n: usize) -> String {
    let mut out = String::new();
    let domain = match snap.domain {
        ClockDomain::Monotonic => "monotonic (host)",
        ClockDomain::Virtual => "virtual (netsim)",
    };
    let _ = writeln!(
        out,
        "trace: {} span(s), {} instant(s), {} counter sample(s), {} track(s), clock {domain}, horizon {}",
        snap.spans.len(),
        snap.instants.len(),
        snap.counters.len(),
        snap.tracks.len(),
        fmt_ns(snap.domain, snap.end_ns()),
    );

    // Per-category totals.
    let mut cats: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
    for s in &snap.spans {
        let e = cats.entry(s.cat).or_default();
        e.0 += s.dur_ns;
        e.1 += 1;
    }
    if !cats.is_empty() {
        let _ = writeln!(out, "per-category totals:");
        for (cat, (ns, n)) in &cats {
            let _ = writeln!(
                out,
                "  {cat:>10}: {:>12}  ({n} span(s))",
                fmt_ns(snap.domain, *ns)
            );
        }
    }

    // Top-N spans by duration.
    let mut by_dur: Vec<usize> = (0..snap.spans.len()).collect();
    by_dur.sort_by_key(|&i| std::cmp::Reverse((snap.spans[i].dur_ns, i)));
    if !by_dur.is_empty() {
        let _ = writeln!(out, "top {} span(s):", top_n.min(by_dur.len()));
        for &i in by_dur.iter().take(top_n) {
            let s = &snap.spans[i];
            let _ = writeln!(
                out,
                "  {:>12}  {:>8}  {}  [{}]",
                fmt_ns(snap.domain, s.dur_ns),
                s.cat,
                s.name,
                snap.track_name(s.track)
            );
        }
    }

    // Counters: last sample per name.
    let mut last: BTreeMap<&str, f64> = BTreeMap::new();
    for c in &snap.counters {
        last.insert(&c.name, c.value);
    }
    if !last.is_empty() {
        let _ = writeln!(out, "counters (last value):");
        for (name, v) in &last {
            let _ = writeln!(out, "  {name:>16}: {v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn summary_lists_categories_and_top_spans() {
        let t = Trace::new(ClockDomain::Virtual);
        let a = t.track("driver");
        t.record_span("driver", "phase1", a, 0, 5_000_000_000, vec![]);
        t.record_span("worker", "fn f1", a, 0, 2_000_000_000, vec![]);
        t.counter("workstations", a, 0, 8.0);
        let s = render_summary(&t.snapshot(), 10);
        assert!(s.contains("2 span(s)"), "{s}");
        assert!(s.contains("driver"), "{s}");
        assert!(s.contains("phase1"), "{s}");
        assert!(s.contains("5.000s"), "{s}");
        assert!(s.contains("workstations"), "{s}");
    }

    #[test]
    fn empty_trace_summary_is_benign() {
        let t = Trace::new(ClockDomain::Monotonic);
        let s = render_summary(&t.snapshot(), 5);
        assert!(s.contains("0 span(s)"), "{s}");
    }
}
