//! The event buffer: spans, instants and counters on named tracks.
//!
//! A [`Trace`] is a cheaply cloneable handle onto one shared in-memory
//! buffer. Instrumentation points accept a `&Trace` and record into it;
//! a *disabled* trace ([`Trace::disabled`]) turns every call into a
//! no-op without branching at the call sites, so the instrumented hot
//! paths cost nothing when nobody is watching.
//!
//! Two [`ClockDomain`]s exist:
//!
//! * [`ClockDomain::Monotonic`] — timestamps are nanoseconds since the
//!   trace's creation, read from the host's monotonic clock. Used by
//!   the real threaded compiler. Record with the RAII [`SpanGuard`]
//!   returned by [`Trace::span`].
//! * [`ClockDomain::Virtual`] — timestamps are the deterministic
//!   virtual nanoseconds of the `warp-netsim` discrete-event engine.
//!   The engine knows both endpoints of every interval, so it records
//!   with the explicit [`Trace::record_span`].
//!
//! Both domains share one record layout, one exporter and one summary
//! renderer; a consumer tells them apart via
//! [`TraceSnapshot::domain`].

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which clock produced a trace's timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Host monotonic time, nanoseconds since the trace was created.
    Monotonic,
    /// The netsim engine's deterministic virtual clock (simulated 1989
    /// seconds, stored as nanoseconds).
    Virtual,
}

/// Identifier of a track (a row in the timeline UI; exported as a
/// Chrome `tid`). Obtain one from [`Trace::track`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u32);

/// A closed interval of work.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `"fn dot8"`, `"fold_constants"`).
    pub name: String,
    /// Category: `"driver"`, `"worker"`, `"pass"`, `"verify"`,
    /// `"cache"`, `"service"`, `"process"`, `"cpu"`, `"net"`, `"disk"`,
    /// `"fault"`, `"retry"` (see docs/TRACING.md).
    pub cat: &'static str,
    /// Track the span belongs to.
    pub track: TrackId,
    /// Start timestamp, nanoseconds in the trace's clock domain.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric key/value annotations (exported as Chrome `args`).
    pub args: Vec<(&'static str, f64)>,
}

impl SpanRecord {
    /// End timestamp (`start_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// The value of argument `key`, if present.
    pub fn arg(&self, key: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// A point event (no duration).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRecord {
    /// Event name (e.g. `"dispatch fn-master f_large.2"`).
    pub name: String,
    /// Category (e.g. `"sched"`).
    pub cat: &'static str,
    /// Track the event belongs to.
    pub track: TrackId,
    /// Timestamp, nanoseconds in the trace's clock domain.
    pub ts_ns: u64,
}

/// A sampled numeric value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRecord {
    /// Counter name (e.g. `"workstations"`).
    pub name: String,
    /// Track the counter is attached to.
    pub track: TrackId,
    /// Timestamp, nanoseconds in the trace's clock domain.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: f64,
}

#[derive(Debug, Default)]
struct State {
    tracks: Vec<String>,
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    counters: Vec<CounterRecord>,
}

#[derive(Debug)]
struct Inner {
    domain: ClockDomain,
    epoch: Instant,
    state: Mutex<State>,
}

/// An immutable copy of everything a trace has recorded, for export
/// and analysis. Obtained from [`Trace::snapshot`].
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Clock domain of every timestamp in the snapshot.
    pub domain: ClockDomain,
    /// Track names, indexed by [`TrackId`].
    pub tracks: Vec<String>,
    /// All spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// All instants, in record order.
    pub instants: Vec<InstantRecord>,
    /// All counter samples, in record order.
    pub counters: Vec<CounterRecord>,
}

impl TraceSnapshot {
    /// Name of `track` (`"?"` if out of range — only possible for
    /// hand-built snapshots).
    pub fn track_name(&self, track: TrackId) -> &str {
        self.tracks
            .get(track.0 as usize)
            .map_or("?", String::as_str)
    }

    /// Largest span end timestamp, i.e. the trace's horizon (0 for an
    /// empty trace).
    pub fn end_ns(&self) -> u64 {
        self.spans.iter().map(SpanRecord::end_ns).max().unwrap_or(0)
    }

    /// Iterator over spans of category `cat`.
    pub fn spans_in<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.spans.iter().filter(move |s| s.cat == cat)
    }
}

/// A handle onto a shared trace buffer. Clones share the buffer; the
/// handle is `Send + Sync` and may be used concurrently from worker
/// threads.
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl Trace {
    /// Creates an enabled trace whose timestamps live in `domain`.
    pub fn new(domain: ClockDomain) -> Trace {
        Trace {
            inner: Some(Arc::new(Inner {
                domain,
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Creates a disabled trace: every recording call is a no-op and
    /// [`Trace::snapshot`] returns an empty monotonic snapshot.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// `true` if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The clock domain, or `None` when disabled.
    pub fn domain(&self) -> Option<ClockDomain> {
        self.inner.as_ref().map(|i| i.domain)
    }

    /// Nanoseconds since the trace was created on the host monotonic
    /// clock. Returns 0 when disabled. Meaningless for
    /// [`ClockDomain::Virtual`] traces, whose writers supply their own
    /// timestamps.
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_nanos() as u64)
    }

    /// Interns a track by name, returning its id. Repeated calls with
    /// the same name return the same id. On a disabled trace returns
    /// `TrackId(0)`.
    pub fn track(&self, name: &str) -> TrackId {
        let Some(inner) = &self.inner else {
            return TrackId(0);
        };
        let mut st = inner.state.lock().expect("trace lock");
        if let Some(i) = st.tracks.iter().position(|t| t == name) {
            TrackId(i as u32)
        } else {
            st.tracks.push(name.to_string());
            TrackId((st.tracks.len() - 1) as u32)
        }
    }

    /// Opens a span on the monotonic clock; it is recorded when the
    /// returned guard is dropped (or [`SpanGuard::finish`]ed). On a
    /// disabled trace the guard is inert and no clock is read.
    pub fn span(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        track: TrackId,
    ) -> SpanGuard<'_> {
        if self.inner.is_some() {
            SpanGuard {
                trace: self,
                cat,
                name: name.into(),
                track,
                start_ns: self.now_ns(),
                args: Vec::new(),
                active: true,
            }
        } else {
            SpanGuard {
                trace: self,
                cat,
                name: String::new(),
                track,
                start_ns: 0,
                args: Vec::new(),
                active: false,
            }
        }
    }

    /// Records a span with explicit endpoints — the virtual-clock
    /// entry point (the netsim engine knows both ends of every
    /// service interval).
    pub fn record_span(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        track: TrackId,
        start_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, f64)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let rec = SpanRecord {
            name: name.into(),
            cat,
            track,
            start_ns,
            dur_ns,
            args,
        };
        inner.state.lock().expect("trace lock").spans.push(rec);
    }

    /// Records a point event at an explicit timestamp.
    pub fn instant(&self, cat: &'static str, name: impl Into<String>, track: TrackId, ts_ns: u64) {
        let Some(inner) = &self.inner else { return };
        let rec = InstantRecord {
            name: name.into(),
            cat,
            track,
            ts_ns,
        };
        inner.state.lock().expect("trace lock").instants.push(rec);
    }

    /// Records a point event "now" on the monotonic clock.
    pub fn instant_now(&self, cat: &'static str, name: impl Into<String>, track: TrackId) {
        let ts = self.now_ns();
        self.instant(cat, name, track, ts);
    }

    /// Records a counter sample at an explicit timestamp.
    pub fn counter(&self, name: impl Into<String>, track: TrackId, ts_ns: u64, value: f64) {
        let Some(inner) = &self.inner else { return };
        let rec = CounterRecord {
            name: name.into(),
            track,
            ts_ns,
            value,
        };
        inner.state.lock().expect("trace lock").counters.push(rec);
    }

    /// Copies everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot {
                domain: ClockDomain::Monotonic,
                tracks: Vec::new(),
                spans: Vec::new(),
                instants: Vec::new(),
                counters: Vec::new(),
            },
            Some(inner) => {
                let st = inner.state.lock().expect("trace lock");
                TraceSnapshot {
                    domain: inner.domain,
                    tracks: st.tracks.clone(),
                    spans: st.spans.clone(),
                    instants: st.instants.clone(),
                    counters: st.counters.clone(),
                }
            }
        }
    }
}

/// RAII guard for a monotonic-clock span; records the span when
/// dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    trace: &'a Trace,
    cat: &'static str,
    name: String,
    track: TrackId,
    start_ns: u64,
    args: Vec<(&'static str, f64)>,
    active: bool,
}

impl SpanGuard<'_> {
    /// Attaches a numeric annotation to the span.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if self.active {
            self.args.push((key, value));
        }
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = self.trace.now_ns();
        self.trace.record_span(
            self.cat,
            std::mem::take(&mut self.name),
            self.track,
            self.start_ns,
            end.saturating_sub(self.start_ns),
            std::mem::take(&mut self.args),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        let track = t.track("x");
        {
            let mut g = t.span("driver", "phase1", track);
            g.arg("n", 1.0);
        }
        t.record_span("cpu", "p", track, 0, 10, vec![]);
        t.instant("sched", "e", track, 5);
        t.counter("c", track, 0, 1.0);
        let s = t.snapshot();
        assert!(s.spans.is_empty() && s.instants.is_empty() && s.counters.is_empty());
    }

    #[test]
    fn tracks_are_interned() {
        let t = Trace::new(ClockDomain::Monotonic);
        let a = t.track("worker 0");
        let b = t.track("worker 1");
        let a2 = t.track("worker 0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.snapshot().track_name(b), "worker 1");
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = Trace::new(ClockDomain::Monotonic);
        let track = t.track("main");
        {
            let mut g = t.span("pass", "fold_constants", track);
            g.arg("insts", 42.0);
        }
        let s = t.snapshot();
        assert_eq!(s.spans.len(), 1);
        let sp = &s.spans[0];
        assert_eq!(sp.name, "fold_constants");
        assert_eq!(sp.cat, "pass");
        assert_eq!(sp.arg("insts"), Some(42.0));
        assert_eq!(sp.arg("missing"), None);
    }

    #[test]
    fn virtual_spans_keep_explicit_timestamps() {
        let t = Trace::new(ClockDomain::Virtual);
        let cpu = t.track("workstation 1");
        t.record_span("cpu", "fn-master f.1", cpu, 1_000, 2_000, vec![("ws", 1.0)]);
        let s = t.snapshot();
        assert_eq!(s.domain, ClockDomain::Virtual);
        assert_eq!(s.spans[0].start_ns, 1_000);
        assert_eq!(s.spans[0].end_ns(), 3_000);
        assert_eq!(s.end_ns(), 3_000);
    }

    #[test]
    fn handles_share_one_buffer_across_threads() {
        let t = Trace::new(ClockDomain::Monotonic);
        let track = t.track("w");
        std::thread::scope(|scope| {
            for i in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    t.record_span("worker", format!("fn {i}"), track, i, 1, vec![]);
                });
            }
        });
        assert_eq!(t.snapshot().spans.len(), 4);
    }
}
