//! Chrome `trace_event` export and validation.
//!
//! [`to_chrome_json`] serializes a [`TraceSnapshot`] into the JSON
//! object format consumed by Perfetto (<https://ui.perfetto.dev>) and
//! the legacy `chrome://tracing` viewer: a `traceEvents` array of
//! complete (`"ph":"X"`), instant (`"ph":"i"`), counter (`"ph":"C"`)
//! and metadata (`"ph":"M"`) events. Timestamps are microseconds
//! (fractional, so the nanosecond precision of both clock domains
//! survives).
//!
//! The workspace is hermetic (no serde_json), so this module also
//! carries [`validate_chrome_json`]: a small, strict JSON parser that
//! checks exporter output structurally — used by the integration tests
//! and the CI artifact gate.

use crate::trace::TraceSnapshot;
use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microsecond timestamp with nanosecond precision.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Serializes a snapshot as a Chrome `trace_event` JSON object.
///
/// Every track becomes a `tid` under a single `pid` (1), named via a
/// `thread_name` metadata event; the clock domain is recorded in the
/// top-level `otherData.clock_domain` field (`"monotonic"` or
/// `"virtual"`). Load the result in Perfetto or `chrome://tracing`.
pub fn to_chrome_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(snap.spans.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };

    for (i, name) in snap.tracks.iter().enumerate() {
        sep(&mut out);
        out.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{i}");
        out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut out, name);
        out.push_str("\"}}");
    }
    for s in &snap.spans {
        sep(&mut out);
        out.push_str("{\"ph\":\"X\",\"name\":\"");
        escape_into(&mut out, &s.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, s.cat);
        let _ = write!(
            out,
            "\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
            s.track.0,
            us(s.start_ns),
            us(s.dur_ns)
        );
        if !s.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
    for e in &snap.instants {
        sep(&mut out);
        out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"");
        escape_into(&mut out, &e.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, e.cat);
        let _ = write!(
            out,
            "\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
            e.track.0,
            us(e.ts_ns)
        );
    }
    for c in &snap.counters {
        sep(&mut out);
        out.push_str("{\"ph\":\"C\",\"name\":\"");
        escape_into(&mut out, &c.name);
        let _ = write!(
            out,
            "\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
            c.track.0,
            us(c.ts_ns),
            c.value
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock_domain\":\"");
    out.push_str(match snap.domain {
        crate::trace::ClockDomain::Monotonic => "monotonic",
        crate::trace::ClockDomain::Virtual => "virtual",
    });
    out.push_str("\"}}");
    out
}

// --------------------------------------------------------------------
// Validation: a minimal strict JSON parser + structural checks
// --------------------------------------------------------------------

/// Counts of the event kinds found by [`validate_chrome_json`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Instant (`"i"`) events.
    pub instants: usize,
    /// Counter (`"C"`) events.
    pub counters: usize,
    /// Metadata (`"M"`) events.
    pub metadata: usize,
}

impl ChromeTraceStats {
    /// Total events of every kind.
    pub fn total(&self) -> usize {
        self.spans + self.instants + self.counters + self.metadata
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Parses `json` and checks that it is a structurally valid Chrome
/// trace produced by [`to_chrome_json`]: a top-level object with a
/// `traceEvents` array whose members carry `ph`/`pid`/`tid`, with
/// `name`+`ts`+`dur` on complete events and `ts` on instants/counters.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn validate_chrome_json(json: &str) -> Result<ChromeTraceStats, String> {
    let root = parse(json)?;
    let events = root.get("traceEvents").ok_or("missing `traceEvents`")?;
    let Json::Arr(events) = events else {
        return Err("`traceEvents` is not an array".into());
    };
    let mut stats = ChromeTraceStats::default();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing `ph`"))?;
        ev.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("missing `pid`"))?;
        ev.get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("missing `tid`"))?;
        match ph {
            "X" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("span without name"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("span without ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("span without dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(ctx("negative timestamp"));
                }
                stats.spans += 1;
            }
            "i" => {
                ev.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("instant without ts"))?;
                stats.instants += 1;
            }
            "C" => {
                ev.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("counter without ts"))?;
                ev.get("args").ok_or_else(|| ctx("counter without args"))?;
                stats.counters += 1;
            }
            "M" => stats.metadata += 1,
            other => return Err(ctx(&format!("unknown phase `{other}`"))),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ClockDomain, Trace};

    fn sample() -> TraceSnapshot {
        let t = Trace::new(ClockDomain::Virtual);
        let drv = t.track("driver");
        let w = t.track("worker \"0\"");
        t.record_span("driver", "phase1", drv, 0, 1_500, vec![]);
        t.record_span(
            "worker",
            "fn dot8\n",
            w,
            1_500,
            2_000,
            vec![("units", 42.0)],
        );
        t.instant("sched", "dispatch", w, 1_500);
        t.counter("workstations", drv, 0, 8.0);
        t.snapshot()
    }

    #[test]
    fn export_roundtrips_through_validator() {
        let json = to_chrome_json(&sample());
        let stats = validate_chrome_json(&json).expect("valid");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.metadata, 2);
        assert!(json.contains("\"clock_domain\":\"virtual\""));
        // Nanosecond precision survives as fractional microseconds.
        assert!(json.contains("\"ts\":1.500"), "{json}");
    }

    #[test]
    fn escaping_is_applied() {
        let json = to_chrome_json(&sample());
        assert!(json.contains("worker \\\"0\\\""));
        assert!(json.contains("fn dot8\\n"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":{}}").is_err());
        assert!(
            validate_chrome_json("{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0}]}").is_err()
        );
    }

    #[test]
    fn validator_accepts_empty_trace() {
        let t = Trace::new(ClockDomain::Monotonic);
        let json = to_chrome_json(&t.snapshot());
        let stats = validate_chrome_json(&json).expect("valid");
        assert_eq!(stats.total(), 0);
    }
}
