//! Property tests: the list scheduler produces hazard-free schedules
//! for arbitrary dependence DAGs.

use proptest::prelude::*;
use std::collections::HashMap;
use warp_codegen::mdeps::mdep_graph;
use warp_codegen::sched::list_schedule;
use warp_codegen::vcode::{VBlock, VDest, VOp, VOperand, VTerm};
use warp_target::fu::FuKind;
use warp_target::isa::{CmpKind, Opcode, Reg};

/// Opcodes safe to combine arbitrarily (register-only semantics).
fn opcode_pool() -> Vec<Opcode> {
    vec![
        Opcode::IAdd,
        Opcode::ISub,
        Opcode::IMul,
        Opcode::ICmp(CmpKind::Lt),
        Opcode::Move,
        Opcode::IMin,
        Opcode::IAbs,
        Opcode::IDiv, // iterative: exercises unit blocking
    ]
}

/// Builds a random straight-line block: op `i` writes register `12+i`
/// and reads earlier results or the inputs `r1`, `r2`.
fn block_strategy() -> impl Strategy<Value = VBlock> {
    prop::collection::vec((0usize..8, 0usize..32, 0usize..32), 1..24).prop_map(|specs| {
        let pool = opcode_pool();
        let ops: Vec<VOp> = specs
            .iter()
            .enumerate()
            .map(|(i, &(opx, a_sel, b_sel))| {
                let opcode = pool[opx % pool.len()];
                let avail = |sel: usize| -> VOperand {
                    if i == 0 || sel.is_multiple_of(3) {
                        VOperand::Phys(Reg(1 + (sel % 2) as u16))
                    } else {
                        VOperand::Phys(Reg(12 + (sel % i) as u16))
                    }
                };
                let unary = matches!(opcode, Opcode::Move | Opcode::IAbs);
                VOp {
                    opcode,
                    dst: VDest::Phys(Reg(12 + i as u16)),
                    a: Some(avail(a_sel)),
                    b: if unary {
                        None
                    } else {
                        // IDiv by a nonzero immediate avoids div-by-zero.
                        Some(if opcode == Opcode::IDiv {
                            VOperand::ImmI(3)
                        } else {
                            avail(b_sel)
                        })
                    },
                }
            })
            .collect();
        VBlock {
            ops,
            term: VTerm::Return,
            is_pipeline_loop: false,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn list_schedule_is_always_valid(block in block_strategy()) {
        let graph = mdep_graph(&block, false);
        let sched = list_schedule(&block, &graph);
        prop_assert_eq!(sched.ops.len(), block.ops.len(), "every op scheduled exactly once");

        let at: HashMap<usize, u32> = sched.ops.iter().map(|s| (s.op_idx, s.cycle)).collect();
        // Dependence delays respected.
        for e in graph.edges.iter().filter(|e| e.distance == 0) {
            prop_assert!(
                at[&e.to] >= at[&e.from] + e.delay,
                "edge {:?} violated ({} -> {})", e, at[&e.from], at[&e.to]
            );
        }
        // No resource double-booking (including iterative occupancy).
        let mut busy: HashMap<(FuKind, u32), usize> = HashMap::new();
        for s in &sched.ops {
            let ii = block.ops[s.op_idx].opcode.timing().initiation_interval;
            for c in s.cycle..s.cycle + ii {
                prop_assert!(
                    busy.insert((s.fu, c), s.op_idx).is_none(),
                    "unit {:?} double-booked at cycle {c}", s.fu
                );
            }
        }
        // Ops only go to units that can execute them.
        for s in &sched.ops {
            prop_assert!(block.ops[s.op_idx].opcode.fu_candidates().contains(&s.fu));
        }
        // The block length covers every latency.
        for s in &sched.ops {
            let t = block.ops[s.op_idx].opcode.timing();
            prop_assert!(s.cycle + t.latency.max(t.initiation_interval) <= sched.len);
        }
    }

    #[test]
    fn schedules_are_deterministic(block in block_strategy()) {
        let g1 = mdep_graph(&block, false);
        let g2 = mdep_graph(&block, false);
        prop_assert_eq!(&g1, &g2);
        let s1 = list_schedule(&block, &g1);
        let s2 = list_schedule(&block, &g2);
        prop_assert_eq!(s1, s2);
    }
}
