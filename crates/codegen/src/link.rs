//! Phase 4: assembly, linking, and download-module generation.
//!
//! The section master collects one [`FunctionImage`] per function and
//! links them: static data regions are laid out in cell memory,
//! function-local [`Operand::Addr`] references are rebased, and call
//! relocations are resolved to function indices. The master then
//! combines the section images and generates the host I/O driver,
//! producing the final [`ModuleImage`] (paper §3.2, phase 4 — performed
//! sequentially).

use serde::{Deserialize, Serialize};
use warp_target::config::CellConfig;
use warp_target::isa::{BranchOp, Operand};
use warp_target::program::{FunctionImage, ModuleImage, SectionImage};

/// Linking errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A call references a function not present in the section.
    UnresolvedCall {
        /// Calling function.
        caller: String,
        /// Missing callee.
        callee: String,
    },
    /// The section's code exceeds instruction memory.
    CodeTooLarge {
        /// Words needed.
        needed: u64,
        /// Words available.
        available: u32,
    },
    /// The section's data exceeds data memory.
    DataTooLarge {
        /// Words needed.
        needed: u64,
        /// Words available.
        available: u32,
    },
    /// Recursion detected (static storage cannot support it).
    Recursive {
        /// A function on the cycle.
        name: String,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::UnresolvedCall { caller, callee } => {
                write!(f, "unresolved call from `{caller}` to `{callee}`")
            }
            LinkError::CodeTooLarge { needed, available } => {
                write!(
                    f,
                    "code needs {needed} words, instruction memory has {available}"
                )
            }
            LinkError::DataTooLarge { needed, available } => {
                write!(f, "data needs {needed} words, data memory has {available}")
            }
            LinkError::Recursive { name } => {
                write!(f, "recursive call cycle through `{name}` (static storage)")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Work counters for phase 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkWork {
    /// Instruction words scanned while rebasing.
    pub words_scanned: usize,
    /// Address operands rebased.
    pub addrs_rebased: usize,
    /// Call relocations resolved.
    pub calls_resolved: usize,
}

/// The data-layout plan for one section: the *collect* step of the
/// parallel phase 4. Computed sequentially (it is a prefix sum over
/// per-function data sizes), it provides each function's data base so
/// the per-function [`resolve_function`] rebasing can run in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionPlan {
    /// Base address of each function's data region, in function order.
    pub data_bases: Vec<u32>,
    /// Total data words of the section.
    pub data_words: u32,
    /// Callee-name → function-index map for call resolution.
    pub name_to_index: std::collections::HashMap<String, u32>,
}

/// Computes the section's data layout and checks its memory budgets.
///
/// # Errors
///
/// Returns [`LinkError::DataTooLarge`] / [`LinkError::CodeTooLarge`]
/// when the section exceeds cell memory (checked in that order, like
/// the sequential linker).
pub fn plan_section(
    functions: &[FunctionImage],
    config: &CellConfig,
) -> Result<SectionPlan, LinkError> {
    let mut data_bases = Vec::with_capacity(functions.len());
    let mut next = 0u32;
    for f in functions {
        data_bases.push(next);
        next += f.data_words;
    }
    if u64::from(next) > u64::from(config.data_mem_words) {
        return Err(LinkError::DataTooLarge {
            needed: u64::from(next),
            available: config.data_mem_words,
        });
    }
    let code_words: u64 = functions.iter().map(|f| u64::from(f.code_words())).sum();
    if code_words > u64::from(config.inst_mem_words) {
        return Err(LinkError::CodeTooLarge {
            needed: code_words,
            available: config.inst_mem_words,
        });
    }
    let name_to_index = functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u32))
        .collect();
    Ok(SectionPlan {
        data_bases,
        data_words: next,
        name_to_index,
    })
}

/// Rebases one function's address operands onto its data base and
/// resolves its call relocations: the per-function *resolve* step of
/// phase 4, independent across functions once the [`SectionPlan`] is
/// known, so the parallel driver fans it out over workers.
///
/// Returns the function's callees (its row of the section call graph)
/// plus the work counters for this function.
///
/// # Errors
///
/// Returns [`LinkError::UnresolvedCall`] for a callee missing from the
/// plan's name map; relocations are processed in order, so the first
/// bad one wins, exactly like the sequential linker.
pub fn resolve_function(
    f: &mut FunctionImage,
    base: u32,
    plan_names: &std::collections::HashMap<String, u32>,
) -> Result<(Vec<u32>, LinkWork), LinkError> {
    let mut work = LinkWork::default();
    for w in &mut f.code {
        work.words_scanned += 1;
        for fu in warp_target::fu::FuKind::ALL {
            if fu == warp_target::fu::FuKind::Branch {
                continue;
            }
            // Rewrite in place via a take/modify/put on the slot.
            if let Some(op) = w.slot(fu).copied() {
                let mut op = op;
                let mut changed = false;
                for o in [&mut op.a, &mut op.b] {
                    if let Some(Operand::Addr(a)) = o {
                        *o = Some(Operand::ImmI((base + *a) as i32));
                        changed = true;
                        work.addrs_rebased += 1;
                    }
                }
                if changed {
                    w.replace(fu, op);
                }
            }
        }
    }
    let mut callees = Vec::new();
    let relocs = std::mem::take(&mut f.call_relocs);
    for r in relocs {
        let Some(&target) = plan_names.get(&r.callee) else {
            return Err(LinkError::UnresolvedCall {
                caller: f.name.clone(),
                callee: r.callee,
            });
        };
        f.code[r.word as usize].branch = Some(BranchOp::Call(target));
        callees.push(target);
        work.calls_resolved += 1;
    }
    Ok((callees, work))
}

/// The final *merge* step of phase 4: whole-section recursion check,
/// entry selection, and [`SectionImage`] construction from resolved
/// functions. `call_graph[fi]` must be the callee list
/// [`resolve_function`] returned for function `fi`.
///
/// # Errors
///
/// Returns [`LinkError::Recursive`] if the call graph has a cycle.
pub fn finish_section(
    section_name: &str,
    first_cell: u32,
    last_cell: u32,
    functions: Vec<FunctionImage>,
    plan: SectionPlan,
    call_graph: &[Vec<u32>],
) -> Result<SectionImage, LinkError> {
    // Reject recursion: static data areas cannot support it.
    if let Some(cycle_node) = find_cycle(call_graph) {
        return Err(LinkError::Recursive {
            name: functions[cycle_node].name.clone(),
        });
    }
    let entry = functions.iter().position(|f| f.name == "main").unwrap_or(0);
    Ok(SectionImage {
        name: section_name.to_string(),
        first_cell,
        last_cell,
        functions,
        data_bases: plan.data_bases,
        data_words: plan.data_words,
        entry,
    })
}

/// Links the functions of one section into a [`SectionImage`] — the
/// sequential composition of [`plan_section`], per-function
/// [`resolve_function`], and [`finish_section`].
///
/// `entry` rules: the function named `main` if present, else index 0.
///
/// # Errors
///
/// Returns [`LinkError`] for unresolved calls, memory overflow, or
/// recursion.
pub fn link_section(
    section_name: &str,
    first_cell: u32,
    last_cell: u32,
    mut functions: Vec<FunctionImage>,
    config: &CellConfig,
) -> Result<(SectionImage, LinkWork), LinkError> {
    let plan = plan_section(&functions, config)?;
    let mut work = LinkWork::default();
    let mut call_graph: Vec<Vec<u32>> = Vec::with_capacity(functions.len());
    for (fi, f) in functions.iter_mut().enumerate() {
        let (callees, w) = resolve_function(f, plan.data_bases[fi], &plan.name_to_index)?;
        call_graph.push(callees);
        work.words_scanned += w.words_scanned;
        work.addrs_rebased += w.addrs_rebased;
        work.calls_resolved += w.calls_resolved;
    }
    let image = finish_section(
        section_name,
        first_cell,
        last_cell,
        functions,
        plan,
        &call_graph,
    )?;
    Ok((image, work))
}

fn find_cycle(graph: &[Vec<u32>]) -> Option<usize> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        White,
        Gray,
        Black,
    }
    fn dfs(n: usize, graph: &[Vec<u32>], state: &mut [State]) -> bool {
        state[n] = State::Gray;
        for &m in &graph[n] {
            match state[m as usize] {
                State::Gray => return true,
                State::White => {
                    if dfs(m as usize, graph, state) {
                        return true;
                    }
                }
                State::Black => {}
            }
        }
        state[n] = State::Black;
        false
    }
    let mut state = vec![State::White; graph.len()];
    (0..graph.len()).find(|&n| state[n] == State::White && dfs(n, graph, &mut state))
}

/// Generates the host-side I/O driver for the module (phase 4). In the
/// real system this was C code that moved data between the host and the
/// Warp interface unit; here it is a deterministic textual artifact
/// whose size scales with the module interface.
pub fn generate_io_driver(name: &str, sections: &[SectionImage]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "/* I/O driver for module {name} (generated) */");
    for sec in sections {
        let _ = writeln!(
            s,
            "void download_{}(void) {{ /* cells {}..{}: {} code words, {} data words */ }}",
            sec.name,
            sec.first_cell,
            sec.last_cell,
            sec.code_words(),
            sec.data_words
        );
        for f in &sec.functions {
            let _ = writeln!(
                s,
                "void invoke_{}_{}(float *args) {{ /* {} params */ }}",
                sec.name, f.name, f.param_count
            );
        }
    }
    s
}

/// Combines linked sections into the final downloadable module image.
pub fn assemble_module(name: &str, sections: Vec<SectionImage>) -> ModuleImage {
    let io_driver = generate_io_driver(name, &sections);
    ModuleImage {
        name: name.to_string(),
        section_images: sections,
        io_driver,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_target::fu::FuKind;
    use warp_target::isa::{Op, Opcode, Reg};
    use warp_target::program::CallReloc;
    use warp_target::word::InstructionWord;

    fn img(name: &str, data_words: u32, code: Vec<InstructionWord>) -> FunctionImage {
        FunctionImage {
            name: name.into(),
            code,
            data_words,
            param_count: 0,
            returns_value: false,
            call_relocs: vec![],
        }
    }

    fn load_addr_word(addr: u32) -> InstructionWord {
        let mut w = InstructionWord::new();
        w.place(
            FuKind::Mem,
            Op::new1(Opcode::Load, Reg(12), Operand::Addr(addr)),
        )
        .unwrap();
        w
    }

    #[test]
    fn data_bases_are_cumulative_and_addrs_rebased() {
        let f1 = img("a", 10, vec![load_addr_word(3)]);
        let f2 = img("b", 5, vec![load_addr_word(0)]);
        let (sec, work) = link_section("s", 0, 0, vec![f1, f2], &CellConfig::default()).unwrap();
        assert_eq!(sec.data_bases, vec![0, 10]);
        assert_eq!(sec.data_words, 15);
        assert_eq!(work.addrs_rebased, 2);
        // f2's load now points at absolute 10.
        let op = sec.functions[1].code[0].slot(FuKind::Mem).unwrap();
        assert_eq!(op.a, Some(Operand::ImmI(10)));
        assert!(sec.functions.iter().all(|f| f.is_linked()));
    }

    #[test]
    fn calls_resolved_by_name() {
        let mut f1 = img(
            "caller",
            0,
            vec![InstructionWord::branch_only(BranchOp::Call(u32::MAX))],
        );
        f1.call_relocs.push(CallReloc {
            word: 0,
            callee: "callee".into(),
        });
        let f2 = img(
            "callee",
            0,
            vec![InstructionWord::branch_only(BranchOp::Ret)],
        );
        let (sec, work) = link_section("s", 0, 0, vec![f1, f2], &CellConfig::default()).unwrap();
        assert_eq!(work.calls_resolved, 1);
        assert_eq!(sec.functions[0].code[0].branch, Some(BranchOp::Call(1)));
    }

    #[test]
    fn unresolved_call_is_error() {
        let mut f1 = img(
            "caller",
            0,
            vec![InstructionWord::branch_only(BranchOp::Call(u32::MAX))],
        );
        f1.call_relocs.push(CallReloc {
            word: 0,
            callee: "ghost".into(),
        });
        let err = link_section("s", 0, 0, vec![f1], &CellConfig::default()).unwrap_err();
        assert!(matches!(err, LinkError::UnresolvedCall { .. }));
    }

    #[test]
    fn recursion_rejected() {
        let mut f1 = img(
            "a",
            0,
            vec![InstructionWord::branch_only(BranchOp::Call(u32::MAX))],
        );
        f1.call_relocs.push(CallReloc {
            word: 0,
            callee: "b".into(),
        });
        let mut f2 = img(
            "b",
            0,
            vec![InstructionWord::branch_only(BranchOp::Call(u32::MAX))],
        );
        f2.call_relocs.push(CallReloc {
            word: 0,
            callee: "a".into(),
        });
        let err = link_section("s", 0, 0, vec![f1, f2], &CellConfig::default()).unwrap_err();
        assert!(matches!(err, LinkError::Recursive { .. }));
    }

    #[test]
    fn data_overflow_detected() {
        let f1 = img("big", 1 << 20, vec![]);
        let err = link_section("s", 0, 0, vec![f1], &CellConfig::default()).unwrap_err();
        assert!(matches!(err, LinkError::DataTooLarge { .. }));
    }

    #[test]
    fn entry_prefers_main() {
        let f1 = img("helper", 0, vec![]);
        let f2 = img("main", 0, vec![]);
        let (sec, _) = link_section("s", 0, 0, vec![f1, f2], &CellConfig::default()).unwrap();
        assert_eq!(sec.entry, 1);
    }

    #[test]
    fn io_driver_mentions_sections_and_functions() {
        let f1 = img("foo", 0, vec![]);
        let (sec, _) = link_section("sec1", 0, 3, vec![f1], &CellConfig::default()).unwrap();
        let m = assemble_module("mod", vec![sec]);
        assert!(m.io_driver.contains("download_sec1"));
        assert!(m.io_driver.contains("invoke_sec1_foo"));
        assert_eq!(m.name, "mod");
    }
}
