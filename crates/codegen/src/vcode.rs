//! Virtual machine code: the representation between instruction
//! selection and emission.
//!
//! A [`VOp`] is a machine operation ([`warp_target::isa::Opcode`]) whose
//! operands may still be virtual registers; register allocation rewrites
//! them to physical registers, and the schedulers then pack them into
//! wide instruction words. Calls appear as block terminators
//! ([`VTerm::Call`]) because a call is a scheduling barrier: the callee
//! clobbers the register file.

use serde::{Deserialize, Serialize};
use std::fmt;
use warp_ir::VirtReg;
use warp_target::isa::{Opcode, Reg};

/// An operand of a [`VOp`]: virtual or physical register, immediate, or
/// a function-local data address (resolved by the linker).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VOperand {
    /// A virtual register (before allocation).
    Virt(VirtReg),
    /// A physical register (fixed by calling convention, or after
    /// allocation).
    Phys(Reg),
    /// Integer immediate.
    ImmI(i32),
    /// Float immediate.
    ImmF(f32),
    /// Function-local data address (array bases, spill slots).
    Addr(u32),
}

impl VOperand {
    /// The virtual register, if this operand is one.
    pub fn as_virt(self) -> Option<VirtReg> {
        match self {
            VOperand::Virt(r) => Some(r),
            _ => None,
        }
    }

    /// The physical register, if this operand is one.
    pub fn as_phys(self) -> Option<Reg> {
        match self {
            VOperand::Phys(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for VOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VOperand::Virt(r) => write!(f, "{r}"),
            VOperand::Phys(r) => write!(f, "{r}"),
            VOperand::ImmI(v) => write!(f, "#{v}"),
            VOperand::ImmF(v) => write!(f, "#{v:?}"),
            VOperand::Addr(a) => write!(f, "@{a}"),
        }
    }
}

/// The destination of a [`VOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VDest {
    /// No destination (stores, sends).
    None,
    /// A virtual register.
    Virt(VirtReg),
    /// A physical register (calling convention).
    Phys(Reg),
}

impl VDest {
    /// The virtual register, if the destination is one.
    pub fn as_virt(self) -> Option<VirtReg> {
        match self {
            VDest::Virt(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for VDest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VDest::None => write!(f, "_"),
            VDest::Virt(r) => write!(f, "{r}"),
            VDest::Phys(r) => write!(f, "{r}"),
        }
    }
}

/// A machine operation over possibly-virtual operands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VOp {
    /// The machine opcode.
    pub opcode: Opcode,
    /// Destination.
    pub dst: VDest,
    /// First operand.
    pub a: Option<VOperand>,
    /// Second operand.
    pub b: Option<VOperand>,
}

impl VOp {
    /// Builds a two-operand op writing a virtual register.
    pub fn v2(opcode: Opcode, dst: VirtReg, a: VOperand, b: VOperand) -> Self {
        VOp {
            opcode,
            dst: VDest::Virt(dst),
            a: Some(a),
            b: Some(b),
        }
    }

    /// Builds a one-operand op writing a virtual register.
    pub fn v1(opcode: Opcode, dst: VirtReg, a: VOperand) -> Self {
        VOp {
            opcode,
            dst: VDest::Virt(dst),
            a: Some(a),
            b: None,
        }
    }

    /// Operands in order.
    pub fn operands(&self) -> impl Iterator<Item = VOperand> + '_ {
        self.a.into_iter().chain(self.b)
    }
}

impl fmt::Display for VOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.opcode.mnemonic(), self.dst)?;
        for o in self.operands() {
            write!(f, ", {o}")?;
        }
        Ok(())
    }
}

/// Block terminator at the virtual-code level. Targets are indices into
/// [`VFunc::blocks`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VTerm {
    /// Unconditional jump.
    Jump(usize),
    /// Conditional branch on a register being nonzero.
    Branch {
        /// Condition operand (register after selection).
        cond: VOperand,
        /// Target when nonzero.
        then_blk: usize,
        /// Target when zero.
        else_blk: usize,
    },
    /// Call `callee`, then continue at `next`. Argument and result
    /// moves are materialized as ops around the call.
    Call {
        /// Name of the called function (resolved by the linker).
        callee: String,
        /// Fall-through block after the call returns.
        next: usize,
    },
    /// Return from the function (the return value, if any, has been
    /// moved to `r0` by a preceding op).
    Return,
}

impl VTerm {
    /// Successor block indices.
    pub fn successors(&self) -> Vec<usize> {
        match self {
            VTerm::Jump(t) => vec![*t],
            VTerm::Branch {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            VTerm::Call { next, .. } => vec![*next],
            VTerm::Return => vec![],
        }
    }
}

/// A block of virtual code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VBlock {
    /// The operations, in program order (pre-scheduling).
    pub ops: Vec<VOp>,
    /// The terminator.
    pub term: VTerm,
    /// `true` if this block is a self-looping pipelinable loop body
    /// (propagated from the IR loop analysis).
    pub is_pipeline_loop: bool,
}

/// A function in virtual code, plus its data-memory layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VFunc {
    /// Function name.
    pub name: String,
    /// Blocks; entry is block 0.
    pub blocks: Vec<VBlock>,
    /// Number of parameters (arrive in `r1..`).
    pub param_count: u16,
    /// `true` if the function returns a value in `r0`.
    pub returns_value: bool,
    /// Words of static data (arrays), before spill slots are added.
    pub array_words: u32,
    /// Total data words including spill slots (grows during register
    /// allocation).
    pub data_words: u32,
    /// Number of virtual registers (indexes `VirtReg` space).
    pub num_vregs: u32,
}

impl VFunc {
    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VirtReg {
        let r = VirtReg(self.num_vregs);
        self.num_vregs += 1;
        r
    }

    /// Allocates a data word (spill slot), returning its address.
    pub fn new_data_word(&mut self) -> u32 {
        let a = self.data_words;
        self.data_words += 1;
        a
    }

    /// Total operation count.
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }

    /// Predecessors of every block.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s].push(i);
            }
        }
        preds
    }

    /// Renders the virtual code as text.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "vfunc {}", self.name);
        for (i, b) in self.blocks.iter().enumerate() {
            let pl = if b.is_pipeline_loop {
                " (pipeline loop)"
            } else {
                ""
            };
            let _ = writeln!(s, "vb{i}:{pl}");
            for op in &b.ops {
                let _ = writeln!(s, "  {op}");
            }
            let _ = match &b.term {
                VTerm::Jump(t) => writeln!(s, "  jump vb{t}"),
                VTerm::Branch {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    writeln!(s, "  br {cond} ? vb{then_blk} : vb{else_blk}")
                }
                VTerm::Call { callee, next } => writeln!(s, "  call {callee} -> vb{next}"),
                VTerm::Return => writeln!(s, "  ret"),
            };
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_target::isa::Opcode;

    #[test]
    fn vop_display_and_accessors() {
        let op = VOp::v2(
            Opcode::IAdd,
            VirtReg(3),
            VOperand::Virt(VirtReg(1)),
            VOperand::ImmI(2),
        );
        assert_eq!(op.to_string(), "iadd v3, v1, #2");
        assert_eq!(op.dst.as_virt(), Some(VirtReg(3)));
        assert_eq!(op.operands().count(), 2);
    }

    #[test]
    fn vterm_successors() {
        assert_eq!(VTerm::Jump(3).successors(), vec![3]);
        assert_eq!(
            VTerm::Branch {
                cond: VOperand::Virt(VirtReg(0)),
                then_blk: 1,
                else_blk: 2
            }
            .successors(),
            vec![1, 2]
        );
        assert_eq!(
            VTerm::Call {
                callee: "g".into(),
                next: 4
            }
            .successors(),
            vec![4]
        );
        assert!(VTerm::Return.successors().is_empty());
    }

    #[test]
    fn vfunc_allocators() {
        let mut f = VFunc {
            name: "f".into(),
            blocks: vec![],
            param_count: 0,
            returns_value: false,
            array_words: 4,
            data_words: 4,
            num_vregs: 10,
        };
        assert_eq!(f.new_vreg(), VirtReg(10));
        assert_eq!(f.new_data_word(), 4);
        assert_eq!(f.data_words, 5);
    }
}
