//! Software pipelining via modulo scheduling.
//!
//! This is the expensive heart of phase 3 — the reason Warp
//! compilations took minutes to hours and the paper needed parallel
//! compilation at all. For each single-block counted loop the planner:
//!
//! 1. recognizes the induction register, step (±1) and limit from the
//!    allocated code;
//! 2. computes a lower bound on the initiation interval (resource MII);
//! 3. searches upward from MII, attempting a modulo schedule at each
//!    candidate II (every placement probe is counted as work);
//! 4. derives the stage count `S` and plans kernel, prologue and
//!    epilogue, plus counter-based loop control on reserved scratch
//!    registers.
//!
//! Because register allocation ran first, register-reuse anti
//! dependences automatically bound every value's lifetime by II — no
//! modulo variable expansion or rotating register file is needed; the
//! schedule is correct by construction (and verified by the strict
//! interpreter in tests).
//!
//! At run time a guard compares the trip count against `S`; loops too
//! short for the pipeline fall back to the list-scheduled body. Both
//! versions are emitted — one of the ways optimization grows code size
//! (paper §1).

use crate::mdeps::{find_induction_phys, mdep_graph, MDepGraph};
use crate::vcode::{VBlock, VDest, VOp, VOperand, VTerm};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use warp_target::fu::FuKind;
use warp_target::isa::{CmpKind, Opcode, Reg};

/// A placed op in the flat (pre-modulo) schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModPlacement {
    /// Index into the block's ops.
    pub op_idx: usize,
    /// Absolute schedule time (0-based); `stage = time / ii`,
    /// `slot = time % ii`.
    pub time: u32,
    /// Chosen unit.
    pub fu: FuKind,
}

/// Where the loop-control decrement sits relative to the kernel branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterStrategy {
    /// The decrement issues in an earlier word than the branch, which
    /// therefore reads the *new* value; the counter starts at `N`.
    EarlierWord {
        /// Kernel slot of the decrement.
        slot: u32,
        /// Unit used.
        fu: FuKind,
    },
    /// The decrement shares the branch's word; the branch reads the
    /// *old* value; the counter starts at `N − 1`.
    SameWord {
        /// Unit used.
        fu: FuKind,
    },
}

/// A complete software-pipelining plan for one loop block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopPlan {
    /// Initiation interval.
    pub ii: u32,
    /// Number of stages (`S`); prologue and epilogue have `S − 1` rows
    /// each.
    pub stages: u32,
    /// Placement of every body op.
    pub placements: Vec<ModPlacement>,
    /// Induction register.
    pub induction: Reg,
    /// Total signed induction step per kernel iteration (±1 for plain
    /// loops, ±U for loops unrolled by U).
    pub step: i64,
    /// Loop limit operand (register or immediate).
    pub limit: VOperand,
    /// Counter placement strategy.
    pub counter: CounterStrategy,
    /// Extra empty words after the epilogue so every latency drains
    /// before the exit block runs.
    pub drain: u32,
    /// Work counter: placement probes across all candidate IIs.
    pub attempts: usize,
    /// Initiation intervals tried before success.
    pub iis_tried: u32,
}

impl LoopPlan {
    /// Ops of prologue row `p` (0-based): those with `stage ≤ p`.
    pub fn prologue_row(&self, p: u32) -> impl Iterator<Item = &ModPlacement> {
        self.placements
            .iter()
            .filter(move |pl| pl.time / self.ii <= p)
    }

    /// Ops of epilogue row `r` (1-based): those with `stage ≥ r`.
    pub fn epilogue_row(&self, r: u32) -> impl Iterator<Item = &ModPlacement> {
        self.placements
            .iter()
            .filter(move |pl| pl.time / self.ii >= r)
    }
}

/// Why a loop could not be pipelined (it falls back to the
/// list-scheduled body).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoPipeline {
    /// The terminator is not a self-branch.
    NotSelfLoop,
    /// No unambiguous `i := i ± c` induction update.
    NoInduction,
    /// The exit comparison does not match the expected
    /// `i ≤ limit` / `i ≥ limit` shape, or the limit is loop-variant.
    UnrecognizedExit,
    /// No feasible schedule up to the II bound.
    NoSchedule {
        /// Placement probes spent before giving up.
        attempts: usize,
    },
}

/// Outcome of pipeline planning, with the work spent.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// The plan, or the reason there is none.
    pub result: Result<LoopPlan, NoPipeline>,
    /// The machine dependence graph (reused by the fallback scheduler).
    pub graph: MDepGraph,
}

/// Recognizes the loop-exit comparison: the branch condition must be
/// produced by `icmp.le i', limit` (step +1) or `icmp.ge i', limit`
/// (step −1) where `i'` is the induction register and `limit` is an
/// immediate or a register not written in the block.
fn recognize_exit(block: &VBlock, induction: Reg, step: i64) -> Option<VOperand> {
    let VTerm::Branch { cond, .. } = &block.term else {
        return None;
    };
    let cond_reg = cond.as_phys()?;
    // Registers holding the *final* induction value (entry + net step):
    // the register itself plus any chain temporary with the same delta
    // (copy propagation often rewrites the compare to read one).
    let (_, net, deltas) = crate::mdeps::induction_deltas(block)?;
    let mut aliases = vec![induction];
    for (r, (root, delta)) in &deltas {
        if *root == induction && *delta == net && *r != induction {
            aliases.push(*r);
        }
    }
    // Find the last op defining the condition register.
    let def = block
        .ops
        .iter()
        .rev()
        .find(|op| matches!(op.dst, VDest::Phys(r) if r == cond_reg))?;
    let want = if step > 0 { CmpKind::Le } else { CmpKind::Ge };
    let Opcode::ICmp(kind) = def.opcode else {
        return None;
    };
    if kind != want {
        return None;
    }
    let a = def.a?;
    if !aliases.contains(&a.as_phys()?) {
        return None;
    }
    let limit = def.b?;
    match limit {
        VOperand::ImmI(_) => Some(limit),
        VOperand::Phys(r) => {
            let written = block
                .ops
                .iter()
                .any(|op| matches!(op.dst, VDest::Phys(d) if d == r));
            if written {
                None
            } else {
                Some(limit)
            }
        }
        _ => None,
    }
}

/// Resource lower bound on the initiation interval.
fn res_mii(block: &VBlock) -> u32 {
    let mut single: HashMap<FuKind, u32> = HashMap::new();
    let mut int_load = 0u32;
    for op in &block.ops {
        let cands = op.opcode.fu_candidates();
        let ii = op.opcode.timing().initiation_interval;
        if cands.len() == 1 {
            *single.entry(cands[0]).or_insert(0) += ii;
        } else {
            int_load += ii;
        }
    }
    let mut mii = 1u32;
    let alu = single.get(&FuKind::Alu).copied().unwrap_or(0);
    let agu = single.get(&FuKind::Agu).copied().unwrap_or(0);
    mii = mii.max((alu + agu + int_load).div_ceil(2));
    for (fu, load) in &single {
        if !matches!(fu, FuKind::Alu | FuKind::Agu) {
            mii = mii.max(*load);
        }
    }
    mii
}

/// Modulo reservation table.
#[derive(Debug, Clone)]
struct Mrt {
    ii: u32,
    busy: Vec<Vec<bool>>, // [fu slot_index][kernel slot]
    /// Register write-port usage: (reg, kernel slot) pairs taken.
    writes: HashMap<(Reg, u32), usize>,
}

impl Mrt {
    fn new(ii: u32) -> Self {
        Mrt {
            ii,
            busy: vec![vec![false; ii as usize]; 7],
            writes: HashMap::new(),
        }
    }

    fn fits(&self, fu: FuKind, time: u32, occ: u32, dst: Option<Reg>, op_idx: usize) -> bool {
        if occ >= self.ii && occ > 1 {
            return false; // iterative op longer than the whole kernel
        }
        for k in 0..occ {
            let slot = ((time + k) % self.ii) as usize;
            if self.busy[fu.slot_index()][slot] {
                return false;
            }
        }
        if let Some(d) = dst {
            let slot = time % self.ii;
            if let Some(&owner) = self.writes.get(&(d, slot)) {
                if owner != op_idx {
                    return false;
                }
            }
        }
        true
    }

    fn reserve(&mut self, fu: FuKind, time: u32, occ: u32, dst: Option<Reg>, op_idx: usize) {
        for k in 0..occ {
            let slot = ((time + k) % self.ii) as usize;
            self.busy[fu.slot_index()][slot] = true;
        }
        if let Some(d) = dst {
            self.writes.insert((d, time % self.ii), op_idx);
        }
    }
}

fn op_dst(op: &VOp) -> Option<Reg> {
    match op.dst {
        VDest::Phys(r) => Some(r),
        _ => None,
    }
}

/// Attempts a modulo schedule at a fixed `ii`. Returns placements and
/// adds probes to `attempts`.
fn try_ii(
    block: &VBlock,
    graph: &MDepGraph,
    ii: u32,
    attempts: &mut usize,
) -> Option<(Vec<ModPlacement>, Mrt)> {
    let n = block.ops.len();
    // Priority: height over distance-0 edges.
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let lat = block.ops[i].opcode.timing().latency;
        let mut best = lat;
        for e in graph.succs_of(i).filter(|e| e.distance == 0) {
            best = best.max(e.delay + height[e.to]);
        }
        height[i] = best;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));

    let mut time: Vec<Option<u32>> = vec![None; n];
    let mut mrt = Mrt::new(ii);
    let mut placements = Vec::with_capacity(n);

    for &i in &order {
        // Earliest start from placed predecessors.
        let mut est: i64 = 0;
        for e in graph.preds_of(i) {
            if let Some(t) = time[e.from] {
                est = est.max(t as i64 + e.delay as i64 - (ii as i64) * e.distance as i64);
            }
        }
        // Latest start from placed successors.
        let mut lst: i64 = i64::MAX;
        for e in graph.succs_of(i) {
            if let Some(t) = time[e.to] {
                lst = lst.min(t as i64 - e.delay as i64 + (ii as i64) * e.distance as i64);
            }
        }
        let est = est.max(0);
        if lst < est {
            return None;
        }
        let window_hi = lst.min(est + ii as i64 - 1);
        let timing = block.ops[i].opcode.timing();
        let dst = op_dst(&block.ops[i]);
        let mut placed = false;
        let mut t = est;
        while t <= window_hi {
            for &fu in block.ops[i].opcode.fu_candidates() {
                *attempts += 1;
                if mrt.fits(fu, t as u32, timing.initiation_interval, dst, i) {
                    mrt.reserve(fu, t as u32, timing.initiation_interval, dst, i);
                    time[i] = Some(t as u32);
                    placements.push(ModPlacement {
                        op_idx: i,
                        time: t as u32,
                        fu,
                    });
                    placed = true;
                    break;
                }
            }
            if placed {
                break;
            }
            t += 1;
        }
        if !placed {
            return None;
        }
    }

    // Final verification of every dependence (belt and braces — the
    // incremental windows should already guarantee this).
    for e in &graph.edges {
        let tf = time[e.from].unwrap() as i64;
        let tt = time[e.to].unwrap() as i64;
        if tt < tf + e.delay as i64 - (ii as i64) * e.distance as i64 {
            return None;
        }
    }
    placements.sort_by_key(|p| (p.time, p.fu.slot_index()));
    Some((placements, mrt))
}

/// Plans software pipelining for `block`, whose index in its function
/// is `self_idx` (the loop must continue via the *then* target — the
/// shape `for` lowering produces).
pub fn plan_pipeline(block: &VBlock, self_idx: usize, max_ii: u32) -> PipelineOutcome {
    let graph = mdep_graph(block, true);
    let plan = plan_inner(block, self_idx, &graph, max_ii);
    PipelineOutcome {
        result: plan,
        graph,
    }
}

fn plan_inner(
    block: &VBlock,
    self_idx: usize,
    graph: &MDepGraph,
    max_ii: u32,
) -> Result<LoopPlan, NoPipeline> {
    let VTerm::Branch { then_blk, .. } = &block.term else {
        return Err(NoPipeline::NotSelfLoop);
    };
    if *then_blk != self_idx {
        return Err(NoPipeline::NotSelfLoop);
    }
    let Some((induction, step)) = find_induction_phys(block) else {
        return Err(NoPipeline::NoInduction);
    };
    let Some(limit) = recognize_exit(block, induction, step) else {
        return Err(NoPipeline::UnrecognizedExit);
    };

    let mii = res_mii(block);
    let mut attempts = 0usize;
    for ii in mii..=max_ii {
        let iis_tried = ii - mii + 1;
        let Some((placements, mrt)) = try_ii(block, graph, ii, &mut attempts) else {
            continue;
        };
        let max_t = placements.iter().map(|p| p.time).max().unwrap_or(0);
        let stages = max_t / ii + 1;
        // Find a home for the counter decrement.
        let counter = find_counter_slot(&mrt, ii);
        let Some(counter) = counter else { continue };
        let drain = block
            .ops
            .iter()
            .map(|o| {
                let t = o.opcode.timing();
                t.latency.max(t.initiation_interval)
            })
            .max()
            .unwrap_or(1);
        return Ok(LoopPlan {
            ii,
            stages,
            placements,
            induction,
            step,
            limit,
            counter,
            drain,
            attempts,
            iis_tried,
        });
    }
    Err(NoPipeline::NoSchedule { attempts })
}

/// Finds a free integer-unit slot for the counter decrement.
fn find_counter_slot(mrt: &Mrt, ii: u32) -> Option<CounterStrategy> {
    // Prefer an earlier word so the branch reads the fresh value.
    for slot in 0..ii.saturating_sub(1) {
        for fu in [FuKind::Alu, FuKind::Agu] {
            if !mrt.busy[fu.slot_index()][slot as usize] {
                return Some(CounterStrategy::EarlierWord { slot, fu });
            }
        }
    }
    // Same word as the branch.
    let last = (ii - 1) as usize;
    for fu in [FuKind::Alu, FuKind::Agu] {
        if !mrt.busy[fu.slot_index()][last] {
            return Some(CounterStrategy::SameWord { fu });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use crate::select::select;
    use warp_ir::phase2::phase2;
    use warp_lang::phase1;
    use warp_target::config::CellConfig;

    fn pipelined_block(body: &str) -> (crate::vcode::VFunc, usize) {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[64]; w: float[64]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        let r = phase2(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
        )
        .expect("phase2");
        let mut vf = select(&r.ir, &r.loops.pipelinable_blocks());
        allocate(&mut vf, &CellConfig::default()).expect("regalloc");
        let idx = vf
            .blocks
            .iter()
            .position(|b| b.is_pipeline_loop)
            .expect("pipeline loop present");
        (vf, idx)
    }

    #[test]
    fn simple_vector_scale_pipelines() {
        let (vf, idx) = pipelined_block("for i := 0 to 63 do v[i] := w[i] * 2.0; end; return 0.0;");
        let out = plan_pipeline(&vf.blocks[idx], idx, 256);
        let plan = out.result.expect("should pipeline");
        assert!(plan.ii >= 1);
        assert!(plan.attempts > 0);
        // The loop body has a load, a mul, a store, address adds, the
        // induction update and the exit compare — II should be well
        // under the serial length.
        let serial: u32 = vf.blocks[idx]
            .ops
            .iter()
            .map(|o| o.opcode.timing().latency)
            .sum();
        assert!(plan.ii < serial, "ii={} serial={}", plan.ii, serial);
        assert_eq!(plan.step, 1);
        assert_eq!(plan.limit, VOperand::ImmI(63));
    }

    #[test]
    fn accumulator_ii_bounded_by_fadd_latency() {
        let (vf, idx) =
            pipelined_block("t := 0.0; for i := 0 to 63 do t := t + v[i]; end; return t;");
        let out = plan_pipeline(&vf.blocks[idx], idx, 256);
        let plan = out.result.expect("should pipeline");
        // The t += … recurrence forces II ≥ FAdd latency (5).
        assert!(plan.ii >= 5, "ii={}", plan.ii);
    }

    #[test]
    fn downto_loop_recognized() {
        let (vf, idx) =
            pipelined_block("t := 0.0; for i := 63 downto 0 do t := t + v[i]; end; return t;");
        let out = plan_pipeline(&vf.blocks[idx], idx, 256);
        let plan = out.result.expect("should pipeline");
        assert_eq!(plan.step, -1);
    }

    #[test]
    fn schedule_satisfies_all_dependences() {
        let (vf, idx) = pipelined_block(
            "t := 0.0; u := 1.0; for i := 0 to 63 do t := t + v[i] * w[i]; u := u * 1.5; v[i] := u; end; return t + u;",
        );
        let out = plan_pipeline(&vf.blocks[idx], idx, 512);
        let plan = out.result.expect("should pipeline");
        let time: HashMap<usize, i64> = plan
            .placements
            .iter()
            .map(|p| (p.op_idx, p.time as i64))
            .collect();
        for e in &out.graph.edges {
            assert!(
                time[&e.to]
                    >= time[&e.from] + e.delay as i64 - (plan.ii as i64) * e.distance as i64,
                "violated {e:?}"
            );
        }
    }

    #[test]
    fn prologue_epilogue_rows_partition_consistently() {
        let (vf, idx) =
            pipelined_block("t := 0.0; for i := 0 to 63 do t := t + v[i] * w[i]; end; return t;");
        let out = plan_pipeline(&vf.blocks[idx], idx, 256);
        let plan = out.result.expect("pipeline");
        let n_ops = plan.placements.len();
        // Every op appears in prologue row S−2 … and epilogue row 1
        // complements: |prologue_row(p)| + |epilogue_row(p+1)| == n.
        for p in 0..plan.stages.saturating_sub(1) {
            let pro = plan.prologue_row(p).count();
            let epi = plan.epilogue_row(p + 1).count();
            assert_eq!(pro + epi, n_ops, "row {p}");
        }
    }

    #[test]
    fn non_loop_block_rejected() {
        let (vf, _) = pipelined_block("for i := 0 to 3 do t := t + v[i]; end; return t;");
        // Block 0 is the entry — not a self loop.
        let out = plan_pipeline(&vf.blocks[0], 0, 64);
        assert!(matches!(
            out.result,
            Err(NoPipeline::NotSelfLoop) | Err(NoPipeline::NoInduction)
        ));
    }

    #[test]
    fn res_mii_counts_unit_pressure() {
        let (vf, idx) = pipelined_block(
            // Two loads + one store per iteration → Mem load of 3 → MII ≥ 3.
            "t := 0.0; for i := 0 to 63 do v[i] := v[i] + w[i]; end; return t;",
        );
        let mii = res_mii(&vf.blocks[idx]);
        assert!(mii >= 3, "mii={mii}");
        let out = plan_pipeline(&vf.blocks[idx], idx, 256);
        let plan = out.result.expect("pipeline");
        assert!(plan.ii >= mii);
    }

    #[test]
    fn counter_slot_found_or_loop_unpipelined() {
        let (vf, idx) =
            pipelined_block("t := 0.0; for i := 0 to 63 do t := t + v[i]; end; return t;");
        let out = plan_pipeline(&vf.blocks[idx], idx, 256);
        let plan = out.result.expect("pipeline");
        match plan.counter {
            CounterStrategy::EarlierWord { slot, .. } => assert!(slot < plan.ii),
            CounterStrategy::SameWord { .. } => {}
        }
    }

    #[test]
    fn sends_in_loop_still_pipeline() {
        let (vf, idx) = pipelined_block("for i := 0 to 63 do send(right, v[i]); end; return 0.0;");
        let out = plan_pipeline(&vf.blocks[idx], idx, 256);
        let plan = out.result.expect("pipeline");
        // Queue unit is serial: II at least 1 and sends stay ordered.
        assert!(plan.ii >= 1);
    }
}
