//! Instruction selection: IR → virtual machine code.
//!
//! Nearly 1:1 — the IR was designed for this machine. The interesting
//! bits:
//!
//! * array accesses expand to address arithmetic over [`VOperand::Addr`]
//!   function-local addresses (rebased by the linker);
//! * calls split their block (a call is a scheduling barrier) and
//!   materialize the calling convention: arguments into `r1..`, result
//!   out of `r0`;
//! * parameters are moved from the argument registers into their
//!   virtual registers in a small prologue.

use crate::vcode::{VBlock, VDest, VFunc, VOp, VOperand, VTerm};
use warp_ir::{BlockId, FuncIr, Inst, IrBinOp, IrType, IrUnOp, Term, Val};
use warp_lang::ast::Direction;
use warp_target::isa::{Opcode, QueueDir, Reg};

fn qdir(d: Direction) -> QueueDir {
    match d {
        Direction::Left => QueueDir::Left,
        Direction::Right => QueueDir::Right,
    }
}

fn operand(v: Val) -> VOperand {
    match v {
        Val::Reg(r) => VOperand::Virt(r),
        Val::ConstI(c) => VOperand::ImmI(c),
        Val::ConstF(c) => VOperand::ImmF(c),
    }
}

fn bin_opcode(op: IrBinOp, ty: IrType) -> Opcode {
    use IrBinOp::*;
    match (op, ty) {
        (Add, IrType::Int) => Opcode::IAdd,
        (Add, IrType::Float) => Opcode::FAdd,
        (Sub, IrType::Int) => Opcode::ISub,
        (Sub, IrType::Float) => Opcode::FSub,
        (Mul, IrType::Int) => Opcode::IMul,
        (Mul, IrType::Float) => Opcode::FMul,
        (Div, _) => Opcode::FDiv,
        (IDiv, _) => Opcode::IDiv,
        (Mod, _) => Opcode::IMod,
        (Min, IrType::Int) => Opcode::IMin,
        (Min, IrType::Float) => Opcode::FMin,
        (Max, IrType::Int) => Opcode::IMax,
        (Max, IrType::Float) => Opcode::FMax,
        (And, _) => Opcode::BAnd,
        (Or, _) => Opcode::BOr,
    }
}

fn un_opcode(op: IrUnOp, ty: IrType) -> Opcode {
    use IrUnOp::*;
    match (op, ty) {
        (Neg, IrType::Int) => Opcode::INeg,
        (Neg, IrType::Float) => Opcode::FNeg,
        (Not, _) => Opcode::BNot,
        (ItoF, _) => Opcode::ItoF,
        (FtoI, _) => Opcode::FtoI,
        (Abs, IrType::Int) => Opcode::IAbs,
        (Abs, IrType::Float) => Opcode::FAbs,
        (Floor, _) => Opcode::FFloor,
        (Sqrt, _) => Opcode::FSqrt,
        (Sin, _) => Opcode::FSin,
        (Cos, _) => Opcode::FCos,
        (Exp, _) => Opcode::FExp,
        (Log, _) => Opcode::FLog,
    }
}

/// Selects machine code for `f`. `pipelinable` lists the IR blocks that
/// are single-block loops (from the phase-2 loop analysis).
pub fn select(f: &FuncIr, pipelinable: &[BlockId]) -> VFunc {
    // Array data layout: arrays in declaration order.
    let mut array_base = Vec::with_capacity(f.arrays.len());
    let mut next = 0u32;
    for a in &f.arrays {
        array_base.push(next);
        next += a.words();
    }

    let mut vf = VFunc {
        name: f.name.clone(),
        blocks: Vec::new(),
        param_count: f.params.len() as u16,
        returns_value: f.ret.is_some(),
        array_words: next,
        data_words: next,
        num_vregs: f.vreg_types.len() as u32,
    };

    // First pass: how many vblocks does each IR block produce (1 + #calls)?
    let mut first_vblock = Vec::with_capacity(f.blocks.len());
    let mut count = 0usize;
    for b in &f.blocks {
        first_vblock.push(count);
        let calls = b
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        count += 1 + calls;
    }

    for (bi, block) in f.blocks.iter().enumerate() {
        let mut cur_ops: Vec<VOp> = Vec::new();
        // Entry prologue: move parameters out of the argument registers.
        if bi == 0 {
            for (i, (r, _)) in f.params.iter().enumerate() {
                cur_ops.push(VOp {
                    opcode: Opcode::Move,
                    dst: VDest::Virt(*r),
                    a: Some(VOperand::Phys(Reg::arg(i as u16))),
                    b: None,
                });
            }
        }
        let mut emitted_blocks = 0usize;
        for inst in &block.insts {
            match inst {
                Inst::Bin { op, ty, dst, a, b } => {
                    cur_ops.push(VOp::v2(
                        bin_opcode(*op, *ty),
                        *dst,
                        operand(*a),
                        operand(*b),
                    ));
                }
                Inst::Un { op, ty, dst, a } => {
                    cur_ops.push(VOp::v1(un_opcode(*op, *ty), *dst, operand(*a)));
                }
                Inst::Cmp {
                    kind,
                    ty,
                    dst,
                    a,
                    b,
                } => {
                    let opc = match ty {
                        IrType::Int => Opcode::ICmp(*kind),
                        IrType::Float => Opcode::FCmp(*kind),
                    };
                    cur_ops.push(VOp::v2(opc, *dst, operand(*a), operand(*b)));
                }
                Inst::Copy { dst, src } => {
                    cur_ops.push(VOp::v1(Opcode::Move, *dst, operand(*src)));
                }
                Inst::Load {
                    dst, arr, index, ..
                } => {
                    let base = array_base[arr.0 as usize];
                    let addr = match index {
                        Val::ConstI(c) => VOperand::Addr(base.wrapping_add(*c as u32)),
                        other => {
                            let t = vf.new_vreg();
                            cur_ops.push(VOp::v2(
                                Opcode::IAdd,
                                t,
                                operand(*other),
                                VOperand::Addr(base),
                            ));
                            VOperand::Virt(t)
                        }
                    };
                    cur_ops.push(VOp::v1(Opcode::Load, *dst, addr));
                }
                Inst::Store {
                    arr, index, value, ..
                } => {
                    let base = array_base[arr.0 as usize];
                    let addr = match index {
                        Val::ConstI(c) => VOperand::Addr(base.wrapping_add(*c as u32)),
                        other => {
                            let t = vf.new_vreg();
                            cur_ops.push(VOp::v2(
                                Opcode::IAdd,
                                t,
                                operand(*other),
                                VOperand::Addr(base),
                            ));
                            VOperand::Virt(t)
                        }
                    };
                    cur_ops.push(VOp {
                        opcode: Opcode::Store,
                        dst: VDest::None,
                        a: Some(addr),
                        b: Some(operand(*value)),
                    });
                }
                Inst::Call { dst, callee, args } => {
                    // Arguments into the convention registers.
                    for (i, a) in args.iter().enumerate() {
                        cur_ops.push(VOp {
                            opcode: Opcode::Move,
                            dst: VDest::Phys(Reg::arg(i as u16)),
                            a: Some(operand(*a)),
                            b: None,
                        });
                    }
                    // Split: terminate this vblock with the call.
                    let this_idx = first_vblock[bi] + emitted_blocks;
                    vf.blocks.push(VBlock {
                        ops: std::mem::take(&mut cur_ops),
                        term: VTerm::Call {
                            callee: callee.clone(),
                            next: this_idx + 1,
                        },
                        is_pipeline_loop: false,
                    });
                    emitted_blocks += 1;
                    if let Some(d) = dst {
                        cur_ops.push(VOp {
                            opcode: Opcode::Move,
                            dst: VDest::Virt(*d),
                            a: Some(VOperand::Phys(Reg::RET)),
                            b: None,
                        });
                    }
                }
                Inst::Send { dir, value } => {
                    cur_ops.push(VOp {
                        opcode: Opcode::Send(qdir(*dir)),
                        dst: VDest::None,
                        a: Some(operand(*value)),
                        b: None,
                    });
                }
                Inst::Recv { dst, dir, .. } => {
                    cur_ops.push(VOp {
                        opcode: Opcode::Recv(qdir(*dir)),
                        dst: VDest::Virt(*dst),
                        a: None,
                        b: None,
                    });
                }
                Inst::Select {
                    dst, cond, then_v, ..
                } => {
                    cur_ops.push(VOp {
                        opcode: Opcode::SelT,
                        dst: VDest::Virt(*dst),
                        a: Some(operand(*cond)),
                        b: Some(operand(*then_v)),
                    });
                }
            }
        }
        // Terminator.
        let term = match &block.term {
            Term::Jump(t) => VTerm::Jump(first_vblock[t.index()]),
            Term::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let cond = operand(*cond);
                VTerm::Branch {
                    cond,
                    then_blk: first_vblock[then_blk.index()],
                    else_blk: first_vblock[else_blk.index()],
                }
            }
            Term::Return(v) => {
                if let Some(v) = v {
                    if f.ret.is_some() {
                        cur_ops.push(VOp {
                            opcode: Opcode::Move,
                            dst: VDest::Phys(Reg::RET),
                            a: Some(operand(*v)),
                            b: None,
                        });
                    }
                }
                VTerm::Return
            }
        };
        vf.blocks.push(VBlock {
            ops: cur_ops,
            term,
            is_pipeline_loop: false,
        });
    }

    // Mark pipeline loops: a vblock that still branches to itself and
    // originates from a pipelinable IR block.
    for ir_b in pipelinable {
        let v = first_vblock[ir_b.index()];
        // Must not have been split by a call (the self-loop survives
        // only if the IR block emitted exactly one vblock).
        let vb = &vf.blocks[v];
        let selfloop = match &vb.term {
            VTerm::Branch {
                then_blk, else_blk, ..
            } => *then_blk == v || *else_blk == v,
            _ => false,
        };
        if selfloop {
            vf.blocks[v].is_pipeline_loop = true;
        }
    }

    vf
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_ir::phase2::phase2;
    use warp_lang::phase1;

    fn select_first(src: &str) -> VFunc {
        let checked = phase1(src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        let r = phase2(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
        )
        .expect("phase2");
        select(&r.ir, &r.loops.pipelinable_blocks())
    }

    fn wrap(body: &str) -> String {
        format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[8]; i: int; begin {body} end; end;"
        )
    }

    #[test]
    fn params_moved_from_arg_regs() {
        let vf = select_first(&wrap("return x;"));
        let d = vf.dump();
        assert!(d.contains("mov v0, r1"), "{d}");
        assert!(d.contains("mov v1, r2"), "{d}");
        // Return value to r0.
        assert!(d.contains("mov r0"), "{d}");
    }

    #[test]
    fn constant_index_folds_into_address() {
        let vf = select_first(&wrap("v[3] := x; return v[3];"));
        let d = vf.dump();
        assert!(d.contains("st _, @3"), "{d}");
    }

    #[test]
    fn variable_index_adds_base() {
        let vf = select_first(&wrap("v[n] := x; return 0.0;"));
        let d = vf.dump();
        // iadd t, vN, @0 then st _, t, ...
        assert!(d.contains("@0"), "{d}");
        assert!(d.contains("iadd"), "{d}");
    }

    #[test]
    fn call_splits_block() {
        let src = "module m; section a on cells 0..0; \
             function g(y: float): float begin return y; end; \
             function f(x: float): float var t: float; begin t := g(x) + 1.0; return t; end; end;";
        let checked = phase1(src).unwrap();
        let f = &checked.module.sections[0].functions[1];
        let r = phase2(
            f,
            &checked.sections[0].symbol_tables[1],
            &checked.sections[0].signatures,
        )
        .unwrap();
        let vf = select(&r.ir, &r.loops.pipelinable_blocks());
        assert!(vf.blocks.len() >= 2, "{}", vf.dump());
        let has_call = vf
            .blocks
            .iter()
            .any(|b| matches!(&b.term, VTerm::Call { callee, .. } if callee == "g"));
        assert!(has_call, "{}", vf.dump());
        let d = vf.dump();
        // Argument into r1; result out of r0.
        assert!(d.contains("mov r1"), "{d}");
        assert!(d.contains(", r0"), "{d}");
    }

    #[test]
    fn pipeline_loop_marked() {
        let vf = select_first(&wrap(
            "t := 0.0; for i := 0 to 7 do t := t + v[i]; end; return t;",
        ));
        assert!(
            vf.blocks.iter().any(|b| b.is_pipeline_loop),
            "{}",
            vf.dump()
        );
    }

    #[test]
    fn loop_with_call_not_marked_pipelinable() {
        let src = "module m; section a on cells 0..0; \
             function g(y: float): float begin return y; end; \
             function f(x: float): float var t: float; i: int; begin \
             t := 0.0; for i := 0 to 7 do t := t + g(x); end; return t; end; end;";
        let checked = phase1(src).unwrap();
        let f = &checked.module.sections[0].functions[1];
        let r = phase2(
            f,
            &checked.sections[0].symbol_tables[1],
            &checked.sections[0].signatures,
        )
        .unwrap();
        let vf = select(&r.ir, &r.loops.pipelinable_blocks());
        assert!(
            !vf.blocks.iter().any(|b| b.is_pipeline_loop),
            "{}",
            vf.dump()
        );
    }

    #[test]
    fn send_recv_selected() {
        let vf = select_first(&wrap("receive(left, t); send(right, t); return t;"));
        let d = vf.dump();
        assert!(d.contains("recv.left"), "{d}");
        assert!(d.contains("send.right"), "{d}");
    }

    #[test]
    fn float_and_int_ops_selected_by_type() {
        let vf = select_first(&wrap("t := x * x; i := n * n; return t + float(i);"));
        let d = vf.dump();
        assert!(d.contains("fmul"), "{d}");
        assert!(d.contains("imul"), "{d}");
    }
}
