//! # warp-codegen
//!
//! Compiler **phases 3 and 4** for the Warp parallel compiler:
//! software pipelining and code generation (phase 3, the expensive part
//! each function master runs in parallel) and assembly/linking
//! (phase 4, run sequentially by the section masters and the master —
//! paper §3.2).
//!
//! * [`vcode`] — virtual machine code between selection and emission;
//! * [`select`](mod@select) — IR → machine ops (calling convention, address
//!   arithmetic, call barriers);
//! * [`regalloc`] — linear-scan allocation with loop-extended
//!   intervals, spilling, and call-site save/restore;
//! * [`mdeps`] — machine-level dependence graphs;
//! * [`sched`] — acyclic list scheduling into wide instruction words;
//! * [`pipeline`] — modulo scheduling (kernel, prologue/epilogue,
//!   trip-count guard with plain-loop fallback);
//! * [`emit`] — layout, branch fixups, call relocations;
//! * [`link`] — phase 4: data rebasing, call resolution, module
//!   assembly and I/O-driver generation;
//! * [`phase3`](mod@phase3) — the per-function driver with work counters.
//!
//! # Example
//!
//! ```
//! use warp_lang::phase1;
//! use warp_ir::phase2::phase2;
//! use warp_codegen::phase3::{phase3, DEFAULT_MAX_II};
//! use warp_codegen::link::link_section;
//! use warp_target::config::CellConfig;
//!
//! let src = "module m; section a on cells 0..0;\n\
//!            function f(x: float): float\n\
//!            var t: float; v: float[16]; i: int;\n\
//!            begin t := 0.0; for i := 0 to 15 do t := t + v[i] * x; end; return t; end; end;";
//! let checked = phase1(src)?;
//! let cfg = CellConfig::default();
//! let f = &checked.module.sections[0].functions[0];
//! let p2 = phase2(f, &checked.sections[0].symbol_tables[0], &checked.sections[0].signatures)?;
//! let p3 = phase3(&p2, &cfg, DEFAULT_MAX_II)?;
//! let (image, _work) = link_section("a", 0, 0, vec![p3.image], &cfg)?;
//! assert!(image.functions[0].is_linked());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod emit;
pub mod link;
pub mod mdeps;
pub mod phase3;
pub mod pipeline;
pub mod regalloc;
pub mod sched;
pub mod select;
pub mod vcode;

pub use emit::{emit_function, emit_function_with_plans, EmitStats, PipelinedLoopInfo};
pub use link::{assemble_module, link_section, LinkError, LinkWork};
pub use phase3::{phase3, phase3_traced, Phase3Error, Phase3Result, Phase3Work, DEFAULT_MAX_II};
pub use pipeline::{plan_pipeline, CounterStrategy, LoopPlan, ModPlacement, NoPipeline};
pub use regalloc::{allocate, RegAllocError, RegAllocStats};
pub use select::select;
