//! Register allocation: linear scan over loop-extended live intervals.
//!
//! Runs *before* scheduling (the schedulers work on physical
//! registers; register-reuse anti dependences then bound value
//! lifetimes, which is exactly the constraint modulo scheduling needs).
//! To keep false dependences rare the free list is used round-robin,
//! so recently freed registers are reused last.
//!
//! Register conventions:
//!
//! * `r0` — return value; `r1..=r8` — arguments (never allocated);
//! * `r9..=r11` — reserved scratch for the software pipeliner;
//! * `r12..` — allocatable.
//!
//! Values live across a call are saved to function-local data memory
//! before the call and reloaded after (the callee clobbers the whole
//! register file). Spills likewise go to data memory.

use crate::vcode::{VDest, VFunc, VOp, VOperand, VTerm};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use warp_ir::VirtReg;
use warp_target::config::CellConfig;
use warp_target::isa::{Opcode, Reg};

/// First allocatable register (below are conventions + scratch).
pub const FIRST_ALLOCATABLE: u16 = 12;
/// Scratch registers reserved for the pipeliner's loop control.
pub const SCRATCH: [Reg; 3] = [Reg(9), Reg(10), Reg(11)];

/// Statistics from register allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegAllocStats {
    /// Virtual registers spilled to memory.
    pub spilled: usize,
    /// Spill loads/stores inserted.
    pub spill_ops: usize,
    /// Save/restore ops inserted around calls.
    pub call_save_ops: usize,
    /// Allocation rounds (1 + respill rounds).
    pub rounds: usize,
    /// Peak register pressure observed.
    pub peak_pressure: usize,
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAllocError {
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "register allocation failed: {}", self.message)
    }
}

impl std::error::Error for RegAllocError {}

/// Per-block liveness of virtual registers.
fn vreg_liveness(vf: &VFunc) -> (Vec<HashSet<VirtReg>>, Vec<HashSet<VirtReg>>) {
    let n = vf.blocks.len();
    let mut live_in: Vec<HashSet<VirtReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VirtReg>> = vec![HashSet::new(); n];
    let mut use_def: Vec<(HashSet<VirtReg>, HashSet<VirtReg>)> = Vec::with_capacity(n);
    for b in &vf.blocks {
        let mut uses = HashSet::new();
        let mut defs = HashSet::new();
        for op in &b.ops {
            for o in op.operands() {
                if let Some(v) = o.as_virt() {
                    if !defs.contains(&v) {
                        uses.insert(v);
                    }
                }
            }
            // A select reads its destination before (maybe) writing it.
            if op.opcode == Opcode::SelT {
                if let Some(v) = op.dst.as_virt() {
                    if !defs.contains(&v) {
                        uses.insert(v);
                    }
                }
            }
            if let Some(v) = op.dst.as_virt() {
                defs.insert(v);
            }
        }
        if let VTerm::Branch { cond, .. } = &b.term {
            if let Some(v) = cond.as_virt() {
                if !defs.contains(&v) {
                    uses.insert(v);
                }
            }
        }
        use_def.push((uses, defs));
    }
    let preds = vf.predecessors();
    let mut work: Vec<usize> = (0..n).rev().collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop() {
        queued[b] = false;
        let mut out: HashSet<VirtReg> = HashSet::new();
        for s in vf.blocks[b].term.successors() {
            out.extend(live_in[s].iter().copied());
        }
        let (uses, defs) = &use_def[b];
        let mut inn: HashSet<VirtReg> = uses.clone();
        inn.extend(out.difference(defs).copied());
        live_out[b] = out;
        if inn != live_in[b] {
            live_in[b] = inn;
            for &p in &preds[b] {
                if !queued[p] {
                    queued[p] = true;
                    work.push(p);
                }
            }
        }
    }
    (live_in, live_out)
}

/// Inserts save/restore pairs around every call for virtual registers
/// live into the continuation block. Returns the number of ops added.
fn insert_call_saves(vf: &mut VFunc) -> usize {
    let (live_in, _) = vreg_liveness(vf);
    let mut slot_of: HashMap<VirtReg, u32> = HashMap::new();
    let mut added = 0usize;
    for bi in 0..vf.blocks.len() {
        let VTerm::Call { next, .. } = vf.blocks[bi].term else {
            continue;
        };
        let mut live: Vec<VirtReg> = live_in[next].iter().copied().collect();
        live.sort();
        for v in live {
            let slot = *slot_of.entry(v).or_insert_with(|| vf.new_data_word());
            vf.blocks[bi].ops.push(VOp {
                opcode: Opcode::Store,
                dst: VDest::None,
                a: Some(VOperand::Addr(slot)),
                b: Some(VOperand::Virt(v)),
            });
            vf.blocks[next].ops.insert(
                0,
                VOp {
                    opcode: Opcode::Load,
                    dst: VDest::Virt(v),
                    a: Some(VOperand::Addr(slot)),
                    b: None,
                },
            );
            added += 2;
        }
    }
    added
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: VirtReg,
    start: usize,
    end: usize,
}

/// Computes loop-extended live intervals over a linearization of the
/// blocks (block order = layout order).
fn intervals(vf: &VFunc) -> Vec<Interval> {
    let (live_in, live_out) = vreg_liveness(vf);
    // Linear positions.
    let mut block_range: Vec<(usize, usize)> = Vec::with_capacity(vf.blocks.len());
    let mut pos = 0usize;
    for b in &vf.blocks {
        let start = pos;
        pos += b.ops.len().max(1) + 1; // +1 for the terminator
        block_range.push((start, pos - 1));
    }
    let mut map: HashMap<VirtReg, Interval> = HashMap::new();
    let touch = |v: VirtReg, p: usize, map: &mut HashMap<VirtReg, Interval>| {
        let e = map.entry(v).or_insert(Interval {
            vreg: v,
            start: p,
            end: p,
        });
        e.start = e.start.min(p);
        e.end = e.end.max(p);
    };
    for (bi, b) in vf.blocks.iter().enumerate() {
        let (bstart, bend) = block_range[bi];
        for (oi, op) in b.ops.iter().enumerate() {
            let p = bstart + oi;
            for o in op.operands() {
                if let Some(v) = o.as_virt() {
                    touch(v, p, &mut map);
                }
            }
            if let Some(v) = op.dst.as_virt() {
                touch(v, p, &mut map);
            }
        }
        if let VTerm::Branch { cond, .. } = &b.term {
            if let Some(v) = cond.as_virt() {
                touch(v, bend, &mut map);
            }
        }
        // Live-range extension: anything live into or out of the block
        // covers the whole block (loop-safe approximation).
        for &v in &live_in[bi] {
            touch(v, bstart, &mut map);
        }
        for &v in &live_out[bi] {
            touch(v, bend, &mut map);
        }
    }
    let mut out: Vec<Interval> = map.into_values().collect();
    out.sort_by_key(|i| (i.start, i.end, i.vreg));
    out
}

/// Rewrites every occurrence of spilled vregs with fresh short-lived
/// vregs plus loads/stores. Returns ops inserted.
fn spill(vf: &mut VFunc, victims: &HashSet<VirtReg>) -> usize {
    let mut slots: HashMap<VirtReg, u32> = HashMap::new();
    for &v in victims {
        slots.insert(v, vf.new_data_word());
    }
    let mut inserted = 0usize;
    for bi in 0..vf.blocks.len() {
        let old_ops = std::mem::take(&mut vf.blocks[bi].ops);
        let mut new_ops = Vec::with_capacity(old_ops.len());
        for mut op in old_ops {
            // Loads before uses.
            let patch = |o: &mut Option<VOperand>,
                         vf: &mut VFunc,
                         new_ops: &mut Vec<VOp>,
                         inserted: &mut usize| {
                if let Some(VOperand::Virt(v)) = o {
                    if let Some(&slot) = slots.get(v) {
                        let t = vf.new_vreg();
                        new_ops.push(VOp {
                            opcode: Opcode::Load,
                            dst: VDest::Virt(t),
                            a: Some(VOperand::Addr(slot)),
                            b: None,
                        });
                        *o = Some(VOperand::Virt(t));
                        *inserted += 1;
                    }
                }
            };
            let mut a = op.a;
            let mut b = op.b;
            patch(&mut a, vf, &mut new_ops, &mut inserted);
            patch(&mut b, vf, &mut new_ops, &mut inserted);
            op.a = a;
            op.b = b;
            // Store after defs. A spilled SelT destination is a
            // read-modify-write: load the current value first.
            let dst_v = op.dst.as_virt().filter(|v| slots.contains_key(v));
            if let Some(v) = dst_v {
                let t = vf.new_vreg();
                if op.opcode == Opcode::SelT {
                    new_ops.push(VOp {
                        opcode: Opcode::Load,
                        dst: VDest::Virt(t),
                        a: Some(VOperand::Addr(slots[&v])),
                        b: None,
                    });
                    inserted += 1;
                }
                op.dst = VDest::Virt(t);
                new_ops.push(op);
                new_ops.push(VOp {
                    opcode: Opcode::Store,
                    dst: VDest::None,
                    a: Some(VOperand::Addr(slots[&v])),
                    b: Some(VOperand::Virt(t)),
                });
                inserted += 1;
            } else {
                new_ops.push(op);
            }
        }
        vf.blocks[bi].ops = new_ops;
        // Branch conditions can also be spilled vregs.
        let cond_slot = match &vf.blocks[bi].term {
            VTerm::Branch { cond, .. } => cond.as_virt().and_then(|v| slots.get(&v).copied()),
            _ => None,
        };
        if let Some(slot) = cond_slot {
            // Load it at the end of the block.
            let t = vf.new_vreg();
            vf.blocks[bi].ops.push(VOp {
                opcode: Opcode::Load,
                dst: VDest::Virt(t),
                a: Some(VOperand::Addr(slot)),
                b: None,
            });
            if let VTerm::Branch { cond, .. } = &mut vf.blocks[bi].term {
                *cond = VOperand::Virt(t);
            }
            inserted += 1;
        }
    }
    inserted
}

/// Allocates registers for `vf` in place.
///
/// # Errors
///
/// Fails if a valid allocation cannot be found after bounded respill
/// rounds (pathological register pressure).
pub fn allocate(vf: &mut VFunc, config: &CellConfig) -> Result<RegAllocStats, RegAllocError> {
    let mut stats = RegAllocStats {
        call_save_ops: insert_call_saves(vf),
        ..Default::default()
    };

    let pool_size = config.num_regs.saturating_sub(FIRST_ALLOCATABLE);
    if pool_size < 4 {
        return Err(RegAllocError {
            message: "machine has too few registers".into(),
        });
    }

    for round in 0..10 {
        stats.rounds = round + 1;
        let ivs = intervals(vf);
        // Linear scan.
        let mut free: VecDeque<Reg> = (FIRST_ALLOCATABLE..config.num_regs).map(Reg).collect();
        let mut active: Vec<(usize, Reg, VirtReg)> = Vec::new(); // (end, reg, vreg)
        let mut assignment: HashMap<VirtReg, Reg> = HashMap::new();
        let mut victims: HashSet<VirtReg> = HashSet::new();
        for iv in &ivs {
            // Expire.
            let mut kept = Vec::with_capacity(active.len());
            for (end, reg, v) in active.drain(..) {
                if end < iv.start {
                    free.push_back(reg);
                } else {
                    kept.push((end, reg, v));
                }
            }
            active = kept;
            stats.peak_pressure = stats.peak_pressure.max(active.len() + 1);
            match free.pop_front() {
                Some(reg) => {
                    assignment.insert(iv.vreg, reg);
                    active.push((iv.end, reg, iv.vreg));
                }
                None => {
                    // Spill the interval that ends furthest away.
                    let (far_end_idx, &(far_end, far_reg, far_v)) = active
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, (e, _, _))| *e)
                        .expect("active nonempty when pool exhausted");
                    if far_end > iv.end {
                        victims.insert(far_v);
                        assignment.remove(&far_v);
                        assignment.insert(iv.vreg, far_reg);
                        active[far_end_idx] = (iv.end, far_reg, iv.vreg);
                    } else {
                        victims.insert(iv.vreg);
                    }
                }
            }
        }
        if victims.is_empty() {
            rewrite(vf, &assignment);
            return Ok(stats);
        }
        stats.spilled += victims.len();
        stats.spill_ops += spill(vf, &victims);
    }
    Err(RegAllocError {
        message: "unresolvable register pressure after 10 spill rounds".into(),
    })
}

/// Rewrites all virtual operands with their assigned registers, then
/// deletes identity moves (`mov r, r`) that appear when the allocator
/// gave a copy's source and destination the same register.
fn rewrite(vf: &mut VFunc, assignment: &HashMap<VirtReg, Reg>) {
    let map = |o: &mut Option<VOperand>| {
        if let Some(VOperand::Virt(v)) = o {
            let r = assignment.get(v).copied().unwrap_or(Reg(FIRST_ALLOCATABLE));
            *o = Some(VOperand::Phys(r));
        }
    };
    for b in &mut vf.blocks {
        for op in &mut b.ops {
            map(&mut op.a);
            map(&mut op.b);
            if let VDest::Virt(v) = op.dst {
                let r = assignment
                    .get(&v)
                    .copied()
                    .unwrap_or(Reg(FIRST_ALLOCATABLE));
                op.dst = VDest::Phys(r);
            }
        }
        b.ops.retain(|op| {
            !(op.opcode == Opcode::Move
                && matches!((op.dst, op.a), (VDest::Phys(d), Some(VOperand::Phys(s))) if d == s))
        });
        if let VTerm::Branch { cond, .. } = &mut b.term {
            if let Some(VOperand::Virt(v)) = cond.as_virt().map(VOperand::Virt) {
                let r = assignment
                    .get(&v)
                    .copied()
                    .unwrap_or(Reg(FIRST_ALLOCATABLE));
                *cond = VOperand::Phys(r);
            }
        }
    }
}

/// `true` if the function contains no virtual operands (fully
/// allocated).
pub fn is_allocated(vf: &VFunc) -> bool {
    vf.blocks.iter().all(|b| {
        let term_ok = match &b.term {
            VTerm::Branch { cond, .. } => cond.as_virt().is_none(),
            _ => true,
        };
        term_ok
            && b.ops.iter().all(|op| {
                op.dst.as_virt().is_none() && op.operands().all(|o| o.as_virt().is_none())
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select;
    use warp_ir::phase2::phase2;
    use warp_lang::phase1;

    fn vfunc_for(src: &str, fn_idx: usize) -> VFunc {
        let checked = phase1(src).expect("phase1");
        let f = &checked.module.sections[0].functions[fn_idx];
        let r = phase2(
            f,
            &checked.sections[0].symbol_tables[fn_idx],
            &checked.sections[0].signatures,
        )
        .expect("phase2");
        select(&r.ir, &r.loops.pipelinable_blocks())
    }

    fn wrap(body: &str) -> String {
        format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[8]; i: int; begin {body} end; end;"
        )
    }

    #[test]
    fn simple_function_allocates_without_spills() {
        let mut vf = vfunc_for(&wrap("t := x * 2.0 + float(n); return t;"), 0);
        let stats = allocate(&mut vf, &CellConfig::default()).unwrap();
        assert_eq!(stats.spilled, 0);
        assert!(is_allocated(&vf), "{}", vf.dump());
    }

    #[test]
    fn loop_allocates_and_keeps_loop_vars() {
        let mut vf = vfunc_for(
            &wrap("t := 0.0; for i := 0 to 7 do t := t + v[i]; end; return t;"),
            0,
        );
        allocate(&mut vf, &CellConfig::default()).unwrap();
        assert!(is_allocated(&vf), "{}", vf.dump());
    }

    #[test]
    fn high_pressure_forces_spills() {
        // 60 simultaneously-live floats exceed the 52-register pool.
        let mut decls = String::new();
        let mut sets = String::new();
        let mut sum = String::from("t := 0.0;");
        for k in 0..60 {
            decls.push_str(&format!("a{k}: float; "));
            sets.push_str(&format!("a{k} := x + {k}.0; "));
        }
        sum.push_str("receive(left, x);"); // barrier so defs stay live
        for k in 0..60 {
            sum.push_str(&format!("t := t + a{k}; "));
        }
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float): float \
             var t: float; {decls} begin {sets} {sum} return t; end; end;"
        );
        let mut vf = vfunc_for(&src, 0);
        let cfg = CellConfig::default();
        let stats = allocate(&mut vf, &cfg).unwrap();
        assert!(stats.spilled > 0, "{stats:?}");
        assert!(is_allocated(&vf));
        // Spill slots extended the data area.
        assert!(vf.data_words > vf.array_words);
    }

    #[test]
    fn call_saves_inserted_for_live_values() {
        let src = "module m; section a on cells 0..0; \
             function g(y: float): float begin return y; end; \
             function f(x: float): float var t: float; u: float; begin \
             t := x * 3.0; u := g(x); return t + u; end; end;";
        let mut vf = vfunc_for(src, 1);
        let stats = allocate(&mut vf, &CellConfig::default()).unwrap();
        // t is live across the call to g → one store + one load.
        assert!(stats.call_save_ops >= 2, "{stats:?}\n{}", vf.dump());
        assert!(is_allocated(&vf));
    }

    #[test]
    fn allocation_avoids_convention_registers() {
        let mut vf = vfunc_for(&wrap("t := x + float(n); return t;"), 0);
        allocate(&mut vf, &CellConfig::default()).unwrap();
        for b in &vf.blocks {
            for op in &b.ops {
                // Destinations below FIRST_ALLOCATABLE only when the
                // calling convention requires them (moves to r0/r1..).
                if let VDest::Phys(r) = op.dst {
                    if r.0 < FIRST_ALLOCATABLE {
                        assert!(
                            op.opcode == Opcode::Move || op.opcode == Opcode::Load,
                            "unexpected low-reg def: {op}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_vregs_prefer_distinct_registers() {
        let mut vf = vfunc_for(&wrap("t := x + 1.0; u := x + 2.0; return t + u;"), 0);
        allocate(&mut vf, &CellConfig::default()).unwrap();
        // Count distinct destination registers: round-robin should not
        // instantly reuse.
        let mut dsts = HashSet::new();
        for b in &vf.blocks {
            for op in &b.ops {
                if let VDest::Phys(r) = op.dst {
                    if r.0 >= FIRST_ALLOCATABLE {
                        dsts.insert(r);
                    }
                }
            }
        }
        assert!(dsts.len() >= 3, "{}", vf.dump());
    }
}
