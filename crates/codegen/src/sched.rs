//! Acyclic list scheduling.
//!
//! Packs an allocated block's operations into wide instruction words,
//! respecting dependences (with latencies) and functional-unit
//! resources (including iterative ops that occupy their unit for
//! several cycles). Priority is critical-path height. Used for every
//! non-loop block and as the fallback body for loops that cannot be
//! software-pipelined.

use crate::mdeps::MDepGraph;
use crate::vcode::{VBlock, VDest, VOp, VOperand};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use warp_target::fu::FuKind;
use warp_target::isa::{Op, Operand, Reg};

/// One scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// Index of the op in the source block.
    pub op_idx: usize,
    /// Issue cycle relative to block entry.
    pub cycle: u32,
    /// Functional unit chosen.
    pub fu: FuKind,
}

/// A block schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSchedule {
    /// Placements, in issue order.
    pub ops: Vec<ScheduledOp>,
    /// Number of instruction words the block occupies **excluding**
    /// the final branch word: all results have landed by `len`.
    pub len: u32,
    /// Work counter: placement attempts (cycle × unit probes).
    pub attempts: usize,
}

/// Tracks per-unit occupancy, including multi-cycle iterative ops.
#[derive(Debug, Default, Clone)]
pub struct ResourceTable {
    /// (fu, cycle) pairs occupied.
    busy: HashMap<(FuKind, u32), ()>,
}

impl ResourceTable {
    /// `true` if `fu` can accept an op at `cycle` occupying `ii` cycles.
    pub fn fits(&self, fu: FuKind, cycle: u32, ii: u32) -> bool {
        (cycle..cycle + ii).all(|c| !self.busy.contains_key(&(fu, c)))
    }

    /// Reserves `fu` for `ii` cycles starting at `cycle`.
    pub fn reserve(&mut self, fu: FuKind, cycle: u32, ii: u32) {
        for c in cycle..cycle + ii {
            self.busy.insert((fu, c), ());
        }
    }
}

/// Converts an allocated [`VOp`] into a target [`Op`].
///
/// # Panics
///
/// Panics if the op still contains virtual operands.
pub fn to_target_op(vop: &VOp) -> Op {
    let conv = |o: VOperand| -> Operand {
        match o {
            VOperand::Phys(r) => Operand::Reg(r),
            VOperand::ImmI(v) => Operand::ImmI(v),
            VOperand::ImmF(v) => Operand::ImmF(v),
            VOperand::Addr(a) => Operand::Addr(a),
            VOperand::Virt(v) => panic!("unallocated operand {v}"),
        }
    };
    let dst: Option<Reg> = match vop.dst {
        VDest::None => None,
        VDest::Phys(r) => Some(r),
        VDest::Virt(v) => panic!("unallocated destination {v}"),
    };
    Op {
        opcode: vop.opcode,
        dst,
        a: vop.a.map(conv),
        b: vop.b.map(conv),
    }
}

/// Critical-path height of every op over the distance-0 subgraph.
pub fn heights(block: &VBlock, graph: &MDepGraph) -> Vec<u32> {
    let n = block.ops.len();
    let mut h = vec![0u32; n];
    // Process in reverse topological order; the block order is a valid
    // topological order for distance-0 edges (they always point
    // forward).
    for i in (0..n).rev() {
        let lat = block.ops[i].opcode.timing().latency;
        let mut best = lat;
        for e in graph.succs_of(i).filter(|e| e.distance == 0) {
            best = best.max(e.delay + h[e.to]);
        }
        h[i] = best;
    }
    h
}

/// List-schedules `block` (non-loop semantics: only distance-0 edges
/// constrain).
pub fn list_schedule(block: &VBlock, graph: &MDepGraph) -> BlockSchedule {
    let n = block.ops.len();
    let h = heights(block, graph);
    let mut scheduled_at: Vec<Option<u32>> = vec![None; n];
    let mut placed = 0usize;
    let mut resources = ResourceTable::default();
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;

    // Precompute dist-0 predecessor lists.
    let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut npreds = vec![0usize; n];
    for e in graph.edges.iter().filter(|e| e.distance == 0) {
        preds[e.to].push((e.from, e.delay));
        npreds[e.to] += 1;
    }
    let mut remaining_preds = npreds.clone();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();

    while placed < n {
        // Highest priority ready op (ties: earlier in program order).
        ready.sort_by_key(|&i| (std::cmp::Reverse(h[i]), i));
        let i = ready.remove(0);
        let est = preds[i]
            .iter()
            .map(|&(p, delay)| scheduled_at[p].expect("pred scheduled") + delay)
            .max()
            .unwrap_or(0);
        let timing = block.ops[i].opcode.timing();
        let mut cycle = est;
        let (fu, at) = 'place: loop {
            for &fu in block.ops[i].opcode.fu_candidates() {
                attempts += 1;
                if resources.fits(fu, cycle, timing.initiation_interval) {
                    break 'place (fu, cycle);
                }
            }
            cycle += 1;
        };
        resources.reserve(fu, at, timing.initiation_interval);
        scheduled_at[i] = Some(at);
        out.push(ScheduledOp {
            op_idx: i,
            cycle: at,
            fu,
        });
        placed += 1;
        for e in graph.succs_of(i).filter(|e| e.distance == 0) {
            remaining_preds[e.to] -= 1;
            if remaining_preds[e.to] == 0 {
                ready.push(e.to);
            }
        }
    }

    // Pad so every result (and iterative-unit occupancy) completes
    // inside the block.
    let len = out
        .iter()
        .map(|s| {
            let t = block.ops[s.op_idx].opcode.timing();
            s.cycle + t.latency.max(t.initiation_interval)
        })
        .max()
        .unwrap_or(0);
    out.sort_by_key(|s| (s.cycle, s.fu.slot_index()));
    BlockSchedule {
        ops: out,
        len,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdeps::mdep_graph;
    use crate::vcode::VTerm;
    use warp_target::isa::Opcode;

    fn r(n: u16) -> VOperand {
        VOperand::Phys(Reg(n))
    }

    fn op2(opcode: Opcode, dst: u16, a: VOperand, b: VOperand) -> VOp {
        VOp {
            opcode,
            dst: VDest::Phys(Reg(dst)),
            a: Some(a),
            b: Some(b),
        }
    }

    fn block(ops: Vec<VOp>) -> VBlock {
        VBlock {
            ops,
            term: VTerm::Return,
            is_pipeline_loop: false,
        }
    }

    fn verify(block: &VBlock, graph: &MDepGraph, sched: &BlockSchedule) {
        let at: HashMap<usize, u32> = sched.ops.iter().map(|s| (s.op_idx, s.cycle)).collect();
        for e in graph.edges.iter().filter(|e| e.distance == 0) {
            assert!(
                at[&e.to] >= at[&e.from] + e.delay,
                "edge {e:?} violated: {} -> {}",
                at[&e.from],
                at[&e.to]
            );
        }
        // One op per (fu, cycle), iterative occupancy disjoint.
        let mut seen: HashMap<(FuKind, u32), usize> = HashMap::new();
        for s in &sched.ops {
            let ii = block.ops[s.op_idx].opcode.timing().initiation_interval;
            for c in s.cycle..s.cycle + ii {
                assert!(
                    seen.insert((s.fu, c), s.op_idx).is_none(),
                    "resource conflict on {:?} cycle {c}",
                    s.fu
                );
            }
        }
    }

    #[test]
    fn independent_int_ops_pack_into_two_units() {
        let b = block(vec![
            op2(Opcode::IAdd, 12, r(20), VOperand::ImmI(1)),
            op2(Opcode::IAdd, 13, r(21), VOperand::ImmI(2)),
            op2(Opcode::IAdd, 14, r(22), VOperand::ImmI(3)),
            op2(Opcode::IAdd, 15, r(23), VOperand::ImmI(4)),
        ]);
        let g = mdep_graph(&b, false);
        let s = list_schedule(&b, &g);
        verify(&b, &g, &s);
        // 4 independent int ops on 2 units → 2 cycles of issue.
        let max_cycle = s.ops.iter().map(|o| o.cycle).max().unwrap();
        assert_eq!(max_cycle, 1, "{s:?}");
    }

    #[test]
    fn dependent_chain_respects_latency() {
        let b = block(vec![
            op2(Opcode::FAdd, 12, r(20), r(21)),
            op2(Opcode::FMul, 13, r(12), r(21)),
        ]);
        let g = mdep_graph(&b, false);
        let s = list_schedule(&b, &g);
        verify(&b, &g, &s);
        let t1 = s.ops.iter().find(|o| o.op_idx == 1).unwrap().cycle;
        assert!(t1 >= 5);
        assert!(s.len >= t1 + 5);
    }

    #[test]
    fn parallel_float_and_int_share_cycle() {
        let b = block(vec![
            op2(Opcode::FAdd, 12, r(20), r(21)),
            op2(Opcode::IAdd, 13, r(22), VOperand::ImmI(1)),
        ]);
        let g = mdep_graph(&b, false);
        let s = list_schedule(&b, &g);
        verify(&b, &g, &s);
        assert!(s.ops.iter().all(|o| o.cycle == 0));
    }

    #[test]
    fn iterative_op_blocks_unit() {
        let b = block(vec![
            op2(Opcode::FDiv, 12, r(20), r(21)),
            op2(Opcode::FMul, 13, r(22), r(23)), // independent, same unit
        ]);
        let g = mdep_graph(&b, false);
        let s = list_schedule(&b, &g);
        verify(&b, &g, &s);
        let div = s.ops.iter().find(|o| o.op_idx == 0).unwrap();
        let mul = s.ops.iter().find(|o| o.op_idx == 1).unwrap();
        // One of them went first; the other waits out the divide if the
        // divide is first.
        if div.cycle < mul.cycle {
            assert!(mul.cycle >= div.cycle + 12);
        }
    }

    #[test]
    fn empty_block_schedules_to_zero() {
        let b = block(vec![]);
        let g = mdep_graph(&b, false);
        let s = list_schedule(&b, &g);
        assert_eq!(s.len, 0);
        assert!(s.ops.is_empty());
    }

    #[test]
    fn to_target_op_converts_operands() {
        let vop = op2(Opcode::IAdd, 12, r(13), VOperand::Addr(5));
        let op = to_target_op(&vop);
        assert_eq!(op.dst, Some(Reg(12)));
        assert_eq!(op.a, Some(Operand::Reg(Reg(13))));
        assert_eq!(op.b, Some(Operand::Addr(5)));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn to_target_op_rejects_virtual() {
        let vop = VOp {
            opcode: Opcode::IAdd,
            dst: VDest::Virt(warp_ir::VirtReg(0)),
            a: Some(r(1)),
            b: Some(r(2)),
        };
        let _ = to_target_op(&vop);
    }

    #[test]
    fn schedule_of_larger_dag_is_valid() {
        // Diamond-ish DAG with mixed units.
        let b = block(vec![
            op2(Opcode::FAdd, 12, r(20), r(21)),
            op2(Opcode::FMul, 13, r(20), r(21)),
            op2(Opcode::FAdd, 14, r(12), r(13)),
            op2(Opcode::IAdd, 15, r(22), VOperand::ImmI(1)),
            op2(Opcode::IMul, 16, r(15), r(15)),
            op2(Opcode::FSqrt, 17, r(14), r(14)),
        ]);
        let g = mdep_graph(&b, false);
        let s = list_schedule(&b, &g);
        verify(&b, &g, &s);
        assert!(s.attempts > 0);
        assert!(s.len >= 15);
    }
}
