//! Phase-3 driver: optimized IR → linked-ready function image.
//!
//! This is the second half of a function master's job (paper §3.2):
//! software pipelining and code generation for one function. The work
//! counters reported here dominate compilation time — exactly the
//! property that makes function-level parallel compilation worthwhile.

use crate::emit::{emit_function_with_plans, EmitStats, PipelinedLoopInfo};
use crate::regalloc::{allocate, RegAllocError, RegAllocStats};
use crate::select::select;
use serde::{Deserialize, Serialize};
use warp_ir::phase2::Phase2Result;
use warp_obs::{Trace, TrackId};
use warp_target::config::CellConfig;
use warp_target::program::FunctionImage;

/// Default bound on the modulo scheduler's II search.
pub const DEFAULT_MAX_II: u32 = 256;

/// Deterministic work counters for phase 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase3Work {
    /// Machine ops selected.
    pub ops_selected: usize,
    /// Register-allocation rounds.
    pub regalloc_rounds: usize,
    /// Spilled virtual registers.
    pub spills: usize,
    /// List-scheduler placement probes.
    pub list_attempts: usize,
    /// Modulo-scheduler placement probes.
    pub modulo_attempts: usize,
    /// Machine-level dependence tests.
    pub dep_tests: usize,
    /// Loops software-pipelined.
    pub pipelined_loops: usize,
    /// Loops that fell back to list scheduling.
    pub fallback_loops: usize,
    /// Instruction words emitted.
    pub words: u32,
}

impl Phase3Work {
    /// Scalar work measure for the host simulator. Modulo scheduling
    /// probes are the dominant term, mirroring the real compiler where
    /// software pipelining dwarfed every other phase.
    pub fn units(&self) -> u64 {
        self.ops_selected as u64 * 6
            + self.regalloc_rounds as u64 * 40
            + self.spills as u64 * 30
            + self.list_attempts as u64 * 8
            + self.modulo_attempts as u64 * 14
            + self.dep_tests as u64 * 5
            + self.words as u64 * 3
    }
}

/// Phase-3 failure (register pressure that cannot be resolved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase3Error {
    /// Function that failed.
    pub function: String,
    /// Cause.
    pub message: String,
}

impl std::fmt::Display for Phase3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase 3 failed for `{}`: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for Phase3Error {}

impl From<(String, RegAllocError)> for Phase3Error {
    fn from((function, e): (String, RegAllocError)) -> Self {
        Phase3Error {
            function,
            message: e.to_string(),
        }
    }
}

/// Everything phase 3 produces for one function.
#[derive(Debug, Clone)]
pub struct Phase3Result {
    /// The compiled (unlinked) image.
    pub image: FunctionImage,
    /// Work counters.
    pub work: Phase3Work,
    /// Register allocation detail.
    pub regalloc: RegAllocStats,
    /// Emission detail.
    pub emit: EmitStats,
    /// Layout records of the software-pipelined loops (for the static
    /// schedule checker).
    pub pipelined: Vec<PipelinedLoopInfo>,
}

/// Runs phase 3 on the output of phase 2.
///
/// # Errors
///
/// Returns [`Phase3Error`] if register allocation fails.
pub fn phase3(
    p2: &Phase2Result,
    config: &CellConfig,
    max_ii: u32,
) -> Result<Phase3Result, Phase3Error> {
    phase3_traced(p2, config, max_ii, &Trace::disabled(), TrackId(0))
}

/// [`phase3`] with span tracing: records one `"pass"` span per
/// phase-3 stage (`select`, `regalloc`, `emit` — the latter covering
/// list scheduling, modulo scheduling and word emission) on `track`
/// of `trace`. With a disabled trace this is exactly [`phase3`].
///
/// # Errors
///
/// Returns [`Phase3Error`] if register allocation fails.
pub fn phase3_traced(
    p2: &Phase2Result,
    config: &CellConfig,
    max_ii: u32,
    trace: &Trace,
    track: TrackId,
) -> Result<Phase3Result, Phase3Error> {
    let mut vf = {
        let _span = trace.span("pass", "select", track);
        select(&p2.ir, &p2.loops.pipelinable_blocks())
    };
    let ops_selected = vf.op_count();
    let regalloc = {
        let mut span = trace.span("pass", "regalloc", track);
        let r =
            allocate(&mut vf, config).map_err(|e| Phase3Error::from((p2.ir.name.clone(), e)))?;
        span.arg("rounds", r.rounds as f64);
        span.arg("spills", r.spilled as f64);
        r
    };
    let (image, emit, pipelined) = {
        let mut span = trace.span("pass", "emit", track);
        let out = emit_function_with_plans(&vf, max_ii);
        span.arg("modulo_attempts", out.1.modulo_attempts as f64);
        span.arg("pipelined_loops", out.1.pipelined_loops as f64);
        span.arg("words", f64::from(out.1.words));
        out
    };
    let work = Phase3Work {
        ops_selected,
        regalloc_rounds: regalloc.rounds,
        spills: regalloc.spilled,
        list_attempts: emit.list_attempts,
        modulo_attempts: emit.modulo_attempts,
        dep_tests: emit.dep_tests,
        pipelined_loops: emit.pipelined_loops,
        fallback_loops: emit.fallback_loops,
        words: emit.words,
    };
    Ok(Phase3Result {
        image,
        work,
        regalloc,
        emit,
        pipelined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_ir::phase2::phase2;
    use warp_lang::phase1;

    fn run(body: &str) -> Phase3Result {
        let src = format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[32]; i: int; begin {body} end; end;"
        );
        let checked = phase1(&src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        let p2 = phase2(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
        )
        .expect("phase2");
        phase3(&p2, &CellConfig::default(), DEFAULT_MAX_II).expect("phase3")
    }

    #[test]
    fn produces_image_with_work() {
        let r = run("t := 0.0; for i := 0 to 31 do t := t + v[i] * x; end; return t;");
        assert!(r.image.code_words() > 0);
        assert!(r.work.units() > 0);
        assert!(r.work.pipelined_loops >= 1);
        assert_eq!(r.image.param_count, 2);
        assert!(r.image.returns_value);
    }

    #[test]
    fn work_scales_with_loops() {
        let small = run("t := x; return t;");
        let big = run(
            "t := 0.0; for i := 0 to 31 do t := t + v[i] * x; v[i] := t; end; \
             for i := 0 to 31 do t := t + v[i]; end; return t;",
        );
        assert!(big.work.units() > 4 * small.work.units());
    }

    #[test]
    fn modulo_scheduling_dominates_work_for_loopy_code() {
        let r = run("t := 0.0; for i := 0 to 31 do t := t + v[i] * x + sqrt(v[i]); end; return t;");
        assert!(
            r.work.modulo_attempts > 0,
            "loop should exercise the modulo scheduler: {:?}",
            r.work
        );
    }
}
