//! Machine-level dependence graph.
//!
//! After register allocation every operand is a physical register, so
//! register dependences (including the anti dependences introduced by
//! register reuse) are computed directly on the [`VOp`] list. Memory
//! dependences reuse the phase-2 idea — affine addresses in the loop
//! induction register — at the machine level, where an address is
//! `coeff·i + Addr(base) + offset`. Accesses to different bases are
//! independent (arrays and spill slots occupy disjoint regions and the
//! language bounds-checks constant subscripts).

use crate::vcode::{VBlock, VOp, VOperand};
use serde::{Deserialize, Serialize};
use warp_ir::deps::DepKind;
use warp_target::isa::{Opcode, Reg};

/// A dependence edge between two machine ops of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MDep {
    /// Source op index.
    pub from: usize,
    /// Destination op index.
    pub to: usize,
    /// Kind.
    pub kind: DepKind,
    /// Iteration distance (0 in non-loop blocks).
    pub distance: u32,
    /// Required issue-cycle separation: `t(to) ≥ t(from) + delay − II·distance`.
    pub delay: u32,
}

/// The dependence graph of one block at machine level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MDepGraph {
    /// Number of ops.
    pub n: usize,
    /// All edges.
    pub edges: Vec<MDep>,
    /// Work counter: dependence tests performed.
    pub dep_tests: usize,
}

impl MDepGraph {
    /// Predecessor edges of op `i`.
    pub fn preds_of(&self, i: usize) -> impl Iterator<Item = &MDep> {
        self.edges.iter().filter(move |e| e.to == i)
    }

    /// Successor edges of op `i`.
    pub fn succs_of(&self, i: usize) -> impl Iterator<Item = &MDep> {
        self.edges.iter().filter(move |e| e.from == i)
    }
}

/// The physical register read by an operand, if any.
fn operand_reg(o: VOperand) -> Option<Reg> {
    match o {
        VOperand::Phys(r) => Some(r),
        VOperand::Virt(_) => panic!("mdeps requires allocated code"),
        _ => None,
    }
}

/// Registers read by `op`. [`Opcode::SelT`] also reads its destination
/// (the old value survives a false condition).
fn uses(op: &VOp) -> Vec<Reg> {
    let mut u: Vec<Reg> = op.operands().filter_map(operand_reg).collect();
    if op.opcode == Opcode::SelT {
        if let crate::vcode::VDest::Phys(d) = op.dst {
            u.push(d);
        }
    }
    u
}

/// Register written by `op`.
fn def(op: &VOp) -> Option<Reg> {
    match op.dst {
        crate::vcode::VDest::Phys(r) => Some(r),
        crate::vcode::VDest::Virt(_) => panic!("mdeps requires allocated code"),
        crate::vcode::VDest::None => None,
    }
}

fn delay_for(kind: DepKind, from_op: &VOp) -> u32 {
    match kind {
        DepKind::Flow => from_op.opcode.timing().latency,
        DepKind::Anti => 0,
        DepKind::Output | DepKind::Order => 1,
    }
}

/// Finds the induction register of an allocated self-loop block:
/// `iadd t, i, #c` (or `isub`) followed by `mov i, t`, or directly
/// `iadd i, i, #c`.
pub fn find_induction_phys(block: &VBlock) -> Option<(Reg, i64)> {
    induction_deltas(block).map(|(r, net, _)| (r, net))
}

/// Map of registers holding induction-chain values: `r -> (root,
/// delta)` meaning `r = root@entry + delta`.
pub type ChainMap = std::collections::HashMap<Reg, (Reg, i64)>;

/// Symbolic induction analysis: expresses every register that is a
/// ±constant chain from some block-entry value as `(root, delta)`.
/// Returns the unique register `r` whose final value is `r@entry + net`
/// with `net ≠ 0`, plus the map of all registers holding chain values
/// (used to validate the exit compare).
pub fn induction_deltas(block: &VBlock) -> Option<(Reg, i64, ChainMap)> {
    use std::collections::{HashMap, HashSet};
    let mut expr: HashMap<Reg, (Reg, i64)> = HashMap::new();
    let mut defined: HashSet<Reg> = HashSet::new();
    for op in &block.ops {
        let d = def(op);
        match (op.opcode, d, op.a, op.b) {
            (
                Opcode::IAdd | Opcode::ISub,
                Some(d),
                Some(VOperand::Phys(s)),
                Some(VOperand::ImmI(c)),
            ) => {
                let c = if op.opcode == Opcode::IAdd {
                    c as i64
                } else {
                    -(c as i64)
                };
                let entry = if let Some(&(root, delta)) = expr.get(&s) {
                    Some((root, delta + c))
                } else if !defined.contains(&s) {
                    Some((s, c))
                } else {
                    None
                };
                match entry {
                    Some(e) => {
                        expr.insert(d, e);
                    }
                    None => {
                        expr.remove(&d);
                    }
                }
                defined.insert(d);
            }
            (Opcode::Move, Some(d), Some(VOperand::Phys(s)), None) => {
                let entry = if let Some(&e) = expr.get(&s) {
                    Some(e)
                } else if !defined.contains(&s) {
                    Some((s, 0))
                } else {
                    None
                };
                match entry {
                    Some(e) => {
                        expr.insert(d, e);
                    }
                    None => {
                        expr.remove(&d);
                    }
                }
                defined.insert(d);
            }
            (_, Some(d), _, _) => {
                expr.remove(&d);
                defined.insert(d);
            }
            _ => {}
        }
    }
    // The induction register: redefined as a nonzero chain from itself.
    let mut candidates: Vec<(Reg, i64)> = expr
        .iter()
        .filter(|(r, (root, delta))| *r == root && *delta != 0 && defined.contains(r))
        .map(|(r, (_, delta))| (*r, *delta))
        .collect();
    candidates.sort_by_key(|(r, _)| r.0);
    if candidates.len() != 1 {
        return None;
    }
    let (reg, net) = candidates[0];
    Some((reg, net, expr))
}

/// An address recognized as `coeff·induction + base + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MAffine {
    coeff: i64,
    /// The symbolic `Addr` base, if one participates.
    base: Option<u32>,
    offset: i64,
}

fn maffine(
    block: &VBlock,
    pos: usize,
    o: VOperand,
    induction: Option<(Reg, i64)>,
    depth: usize,
) -> Option<MAffine> {
    if depth > 16 {
        return None;
    }
    match o {
        VOperand::ImmI(c) => Some(MAffine {
            coeff: 0,
            base: None,
            offset: c as i64,
        }),
        VOperand::Addr(b) => Some(MAffine {
            coeff: 0,
            base: Some(b),
            offset: 0,
        }),
        VOperand::ImmF(_) => None,
        VOperand::Virt(_) => panic!("mdeps requires allocated code"),
        VOperand::Phys(r) => {
            if let Some((ind, _)) = induction {
                if r == ind {
                    let updated_before = block.ops[..pos].iter().any(|op| def(op) == Some(r));
                    return if updated_before {
                        None
                    } else {
                        Some(MAffine {
                            coeff: 1,
                            base: None,
                            offset: 0,
                        })
                    };
                }
            }
            let def_pos = block.ops[..pos].iter().rposition(|op| def(op) == Some(r))?;
            let dop = &block.ops[def_pos];
            match dop.opcode {
                Opcode::Move => maffine(block, def_pos, dop.a?, induction, depth + 1),
                Opcode::IAdd | Opcode::ISub => {
                    let fa = maffine(block, def_pos, dop.a?, induction, depth + 1)?;
                    let fb = maffine(block, def_pos, dop.b?, induction, depth + 1)?;
                    if fa.base.is_some() && fb.base.is_some() {
                        return None;
                    }
                    let base = fa.base.or(fb.base);
                    Some(if dop.opcode == Opcode::IAdd {
                        MAffine {
                            coeff: fa.coeff + fb.coeff,
                            base,
                            offset: fa.offset + fb.offset,
                        }
                    } else {
                        if fb.base.is_some() {
                            return None; // base subtracted — not an address
                        }
                        MAffine {
                            coeff: fa.coeff - fb.coeff,
                            base,
                            offset: fa.offset - fb.offset,
                        }
                    })
                }
                Opcode::IMul => {
                    let fa = maffine(block, def_pos, dop.a?, induction, depth + 1)?;
                    let fb = maffine(block, def_pos, dop.b?, induction, depth + 1)?;
                    if fa.base.is_some() || fb.base.is_some() {
                        return None;
                    }
                    if fa.coeff == 0 {
                        Some(MAffine {
                            coeff: fa.offset * fb.coeff,
                            base: None,
                            offset: fa.offset * fb.offset,
                        })
                    } else if fb.coeff == 0 {
                        Some(MAffine {
                            coeff: fb.offset * fa.coeff,
                            base: None,
                            offset: fb.offset * fa.offset,
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemDep {
    None,
    Distance(u32),
    Unknown,
}

fn mem_test(a: Option<MAffine>, b: Option<MAffine>, step: i64, is_loop: bool) -> MemDep {
    match (a, b) {
        (Some(x), Some(y)) => {
            if x.base != y.base {
                // Disjoint storage regions.
                return MemDep::None;
            }
            if x.coeff == y.coeff {
                if x.coeff == 0 {
                    if x.offset == y.offset {
                        MemDep::Distance(0)
                    } else {
                        MemDep::None
                    }
                } else {
                    let denom = x.coeff * step;
                    if denom == 0 {
                        return MemDep::Unknown;
                    }
                    let diff = x.offset - y.offset;
                    if diff % denom != 0 {
                        MemDep::None
                    } else {
                        let d = diff / denom;
                        if d == 0 {
                            MemDep::Distance(0)
                        } else if !is_loop || d < 0 {
                            MemDep::None
                        } else {
                            MemDep::Distance(d.min(u32::MAX as i64) as u32)
                        }
                    }
                }
            } else {
                MemDep::Unknown
            }
        }
        _ => MemDep::Unknown,
    }
}

/// Builds the machine-level dependence graph of an allocated block.
///
/// # Panics
///
/// Panics if the block still contains virtual registers.
pub fn mdep_graph(block: &VBlock, is_loop: bool) -> MDepGraph {
    let n = block.ops.len();
    let mut edges: Vec<MDep> = Vec::new();
    let mut dep_tests = 0usize;
    let induction = if is_loop {
        find_induction_phys(block)
    } else {
        None
    };

    let push = |edges: &mut Vec<MDep>,
                from: usize,
                to: usize,
                kind: DepKind,
                distance: u32,
                delay: u32| {
        if from == to && distance == 0 {
            return;
        }
        if !edges
            .iter()
            .any(|e| e.from == from && e.to == to && e.kind == kind && e.distance == distance)
        {
            edges.push(MDep {
                from,
                to,
                kind,
                distance,
                delay,
            });
        }
    };

    // Register dependences.
    for (j, op_j) in block.ops.iter().enumerate() {
        for u in uses(op_j) {
            match block.ops[..j].iter().rposition(|op| def(op) == Some(u)) {
                Some(i) => {
                    let d = delay_for(DepKind::Flow, &block.ops[i]);
                    push(&mut edges, i, j, DepKind::Flow, 0, d);
                }
                None => {
                    if is_loop {
                        // The value read comes from the previous
                        // iteration, i.e. the block's *last* def.
                        if let Some(i) = block.ops.iter().rposition(|op| def(op) == Some(u)) {
                            if i >= j {
                                let d = delay_for(DepKind::Flow, &block.ops[i]);
                                push(&mut edges, i, j, DepKind::Flow, 1, d);
                            }
                        }
                    }
                }
            }
        }
        if let Some(d) = def(op_j) {
            for (i, op_i) in block.ops[..j].iter().enumerate() {
                if uses(op_i).contains(&d) {
                    push(&mut edges, i, j, DepKind::Anti, 0, 0);
                }
                if def(op_i) == Some(d) {
                    push(&mut edges, i, j, DepKind::Output, 0, 1);
                }
            }
            if is_loop {
                // Loop-carried anti: uses later in the block read this
                // iteration's value before next iteration's write.
                for (rel, op_i) in block.ops[j..].iter().enumerate() {
                    if rel > 0 && uses(op_i).contains(&d) {
                        push(&mut edges, j + rel, j, DepKind::Anti, 1, 0);
                    }
                }
                // Loop-carried outputs: to itself, and from any later
                // writer of the same register back to this one (keeps
                // instances from colliding in the same kernel cycle).
                push(&mut edges, j, j, DepKind::Output, 1, 1);
                for (rel, op_i) in block.ops[j..].iter().enumerate() {
                    if rel > 0 && def(op_i) == Some(d) {
                        push(&mut edges, j + rel, j, DepKind::Output, 1, 1);
                    }
                }
            }
        }
    }

    // Memory dependences.
    let accesses: Vec<(usize, VOperand, bool)> = block
        .ops
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match op.opcode {
            Opcode::Load => Some((i, op.a.expect("load address"), false)),
            Opcode::Store => Some((i, op.a.expect("store address"), true)),
            _ => None,
        })
        .collect();
    for (x, &(i, addr_i, wr_i)) in accesses.iter().enumerate() {
        for &(j, addr_j, wr_j) in accesses.iter().skip(x + 1) {
            if !wr_i && !wr_j {
                continue;
            }
            dep_tests += 1;
            let fa = maffine(block, i, addr_i, induction, 0);
            let fb = maffine(block, j, addr_j, induction, 0);
            let step = induction.map(|(_, s)| s).unwrap_or(1);
            let kind = match (wr_i, wr_j) {
                (true, false) => DepKind::Flow,
                (false, true) => DepKind::Anti,
                _ => DepKind::Output,
            };
            let rkind = match (wr_j, wr_i) {
                (true, false) => DepKind::Flow,
                (false, true) => DepKind::Anti,
                _ => DepKind::Output,
            };
            match mem_test(fa, fb, step, is_loop) {
                MemDep::None => {
                    if is_loop {
                        if let MemDep::Distance(d) = mem_test(fb, fa, step, true) {
                            if d > 0 {
                                let delay = delay_for(rkind, &block.ops[j]);
                                push(&mut edges, j, i, rkind, d, delay);
                            }
                        }
                    }
                }
                MemDep::Distance(d) => {
                    let delay = delay_for(kind, &block.ops[i]);
                    push(&mut edges, i, j, kind, d, delay);
                }
                MemDep::Unknown => {
                    let delay = delay_for(kind, &block.ops[i]);
                    push(&mut edges, i, j, kind, 0, delay);
                    if is_loop {
                        let delay = delay_for(rkind, &block.ops[j]);
                        push(&mut edges, j, i, rkind, 1, delay);
                    }
                }
            }
        }
    }

    // Queue ordering.
    let qops: Vec<(usize, &VOp)> = block
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op.opcode, Opcode::Send(_) | Opcode::Recv(_)))
        .collect();
    for (x, &(i, op_i)) in qops.iter().enumerate() {
        for &(j, op_j) in qops.iter().skip(x + 1) {
            let ordered = match (op_i.opcode, op_j.opcode) {
                (Opcode::Send(d1), Opcode::Send(d2)) => d1 == d2,
                (Opcode::Recv(d1), Opcode::Recv(d2)) => d1 == d2,
                _ => false,
            };
            if ordered {
                push(&mut edges, i, j, DepKind::Order, 0, 1);
                if is_loop {
                    push(&mut edges, j, i, DepKind::Order, 1, 1);
                }
            }
        }
    }

    MDepGraph {
        n,
        edges,
        dep_tests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcode::{VDest, VTerm};
    use warp_target::isa::QueueDir;

    fn r(n: u16) -> VOperand {
        VOperand::Phys(Reg(n))
    }

    fn block(ops: Vec<VOp>) -> VBlock {
        VBlock {
            ops,
            term: VTerm::Return,
            is_pipeline_loop: false,
        }
    }

    fn op2(opcode: Opcode, dst: u16, a: VOperand, b: VOperand) -> VOp {
        VOp {
            opcode,
            dst: VDest::Phys(Reg(dst)),
            a: Some(a),
            b: Some(b),
        }
    }

    #[test]
    fn flow_dep_with_latency() {
        let b = block(vec![
            op2(Opcode::FAdd, 12, r(13), r(14)),
            op2(Opcode::FMul, 15, r(12), r(14)),
        ]);
        let g = mdep_graph(&b, false);
        let e = g.edges.iter().find(|e| e.from == 0 && e.to == 1).unwrap();
        assert_eq!(e.kind, DepKind::Flow);
        assert_eq!(e.delay, 5);
    }

    #[test]
    fn anti_dep_zero_delay() {
        let b = block(vec![
            op2(Opcode::IAdd, 12, r(13), r(14)),
            op2(Opcode::IAdd, 13, r(15), r(15)),
        ]);
        let g = mdep_graph(&b, false);
        let e = g
            .edges
            .iter()
            .find(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::Anti)
            .unwrap();
        assert_eq!(e.delay, 0);
    }

    #[test]
    fn loop_carried_register_flow() {
        // acc := acc + x  (acc = r12): carried flow from the write to
        // next iteration's read.
        let b = block(vec![op2(Opcode::FAdd, 12, r(12), r(13))]);
        let g = mdep_graph(&b, true);
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 0 && e.kind == DepKind::Flow && e.distance == 1));
        // And a carried output-dep on itself.
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 0 && e.kind == DepKind::Output && e.distance == 1));
    }

    #[test]
    fn memory_different_bases_independent() {
        let b = block(vec![
            VOp {
                opcode: Opcode::Store,
                dst: VDest::None,
                a: Some(VOperand::Addr(0)),
                b: Some(r(12)),
            },
            VOp {
                opcode: Opcode::Load,
                dst: VDest::Phys(Reg(13)),
                a: Some(VOperand::Addr(8)),
                b: None,
            },
        ]);
        let g = mdep_graph(&b, false);
        assert!(
            !g.edges.iter().any(|e| e.from == 0 && e.to == 1),
            "{:?}",
            g.edges
        );
        assert_eq!(g.dep_tests, 1);
    }

    #[test]
    fn memory_same_address_flow() {
        let b = block(vec![
            VOp {
                opcode: Opcode::Store,
                dst: VDest::None,
                a: Some(VOperand::Addr(4)),
                b: Some(r(12)),
            },
            VOp {
                opcode: Opcode::Load,
                dst: VDest::Phys(Reg(13)),
                a: Some(VOperand::Addr(4)),
                b: None,
            },
        ]);
        let g = mdep_graph(&b, false);
        let e = g.edges.iter().find(|e| e.from == 0 && e.to == 1).unwrap();
        assert_eq!(e.kind, DepKind::Flow);
        assert_eq!(e.delay, 1);
    }

    #[test]
    fn induction_recognized_on_phys() {
        // iadd r13, r12, #1 ; mov r12, r13 (self-loop)
        let b = VBlock {
            ops: vec![
                op2(Opcode::IAdd, 13, r(12), VOperand::ImmI(1)),
                VOp {
                    opcode: Opcode::Move,
                    dst: VDest::Phys(Reg(12)),
                    a: Some(r(13)),
                    b: None,
                },
            ],
            term: VTerm::Branch {
                cond: r(14),
                then_blk: 0,
                else_blk: 1,
            },
            is_pipeline_loop: true,
        };
        let (reg, step) = find_induction_phys(&b).unwrap();
        assert_eq!(reg, Reg(12));
        assert_eq!(step, 1);
    }

    #[test]
    fn strided_array_accesses_in_loop() {
        // Loop: addr := i + base; store addr; iadd i,i,1
        let b = VBlock {
            ops: vec![
                op2(Opcode::IAdd, 13, r(12), VOperand::Addr(0)),
                VOp {
                    opcode: Opcode::Store,
                    dst: VDest::None,
                    a: Some(r(13)),
                    b: Some(r(14)),
                },
                op2(Opcode::IAdd, 12, r(12), VOperand::ImmI(1)),
            ],
            term: VTerm::Branch {
                cond: r(15),
                then_blk: 0,
                else_blk: 1,
            },
            is_pipeline_loop: true,
        };
        let g = mdep_graph(&b, true);
        // Store to v[i] each iteration: no self memory dep (distinct
        // addresses), so no Output edge from the store to itself.
        assert!(
            !g.edges
                .iter()
                .any(|e| e.from == 1 && e.to == 1 && e.kind == DepKind::Output && e.distance > 0),
            "{:?}",
            g.edges
        );
    }

    #[test]
    fn queue_order_preserved() {
        let b = block(vec![
            VOp {
                opcode: Opcode::Send(QueueDir::Right),
                dst: VDest::None,
                a: Some(r(12)),
                b: None,
            },
            VOp {
                opcode: Opcode::Send(QueueDir::Right),
                dst: VDest::None,
                a: Some(r(13)),
                b: None,
            },
        ]);
        let g = mdep_graph(&b, false);
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::Order));
    }
}
