//! Emission: scheduled virtual code → a [`FunctionImage`] of wide
//! instruction words.
//!
//! Every block becomes a run of words; pipelined loops expand into
//! guard + prologue + kernel + epilogue + fallback regions. Branch
//! targets are patched after layout; call sites become relocations the
//! linker resolves by name.

use crate::mdeps::mdep_graph;
use crate::pipeline::{plan_pipeline, CounterStrategy, LoopPlan};
use crate::regalloc::SCRATCH;
use crate::sched::{list_schedule, to_target_op, BlockSchedule};
use crate::vcode::{VFunc, VOperand, VTerm};
use serde::{Deserialize, Serialize};
use warp_target::fu::FuKind;
use warp_target::isa::{BranchOp, CmpKind, Op, Opcode, Operand};
use warp_target::program::{CallReloc, FunctionImage};
use warp_target::word::InstructionWord;

/// Statistics and work counters from emission (the bulk of phase 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmitStats {
    /// Instruction words emitted.
    pub words: u32,
    /// List-scheduler placement probes.
    pub list_attempts: usize,
    /// Modulo-scheduler placement probes.
    pub modulo_attempts: usize,
    /// Dependence tests performed at machine level.
    pub dep_tests: usize,
    /// Loops successfully software-pipelined.
    pub pipelined_loops: usize,
    /// Loops that fell back to the plain schedule.
    pub fallback_loops: usize,
    /// Sum of achieved initiation intervals.
    pub total_ii: u32,
    /// Sum of initiation intervals tried.
    pub total_iis_tried: u32,
}

/// Layout metadata for one software-pipelined loop, recorded at
/// emission time so the static schedule checker (`warp-analyze`) can
/// audit the emitted region against the plan — II versus resource MII,
/// stage partitioning, counter start values — without re-running the
/// modulo scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinedLoopInfo {
    /// Index of the loop block in the vcode function.
    pub block: usize,
    /// Address of the kernel's first word in the unlinked image.
    pub kernel_start: u32,
    /// The modulo-scheduling plan the region was laid out from.
    pub plan: LoopPlan,
    /// The loop body's machine ops, indexed by the plan's `op_idx`.
    pub ops: Vec<Op>,
}

/// A branch fixup: the word at `word` targets block `block`.
#[derive(Debug, Clone, Copy)]
enum Fixup {
    /// Patch a `Jump` target.
    Jump { word: usize, block: usize },
    /// Patch a `BrTrue` target.
    BrTrue { word: usize, block: usize },
    /// Patch a `BrTrue` target to this function's fallback region for
    /// the given block.
    BrTrueFallback { word: usize, block: usize },
}

struct Emitter {
    words: Vec<InstructionWord>,
    fixups: Vec<Fixup>,
    call_relocs: Vec<CallReloc>,
    /// Address of each block's first word.
    block_addr: Vec<Option<u32>>,
    /// Address of each pipelined block's fallback region.
    fallback_addr: Vec<Option<u32>>,
    /// Layout records of the pipelined loops.
    plans: Vec<PipelinedLoopInfo>,
}

impl Emitter {
    fn push(&mut self, w: InstructionWord) -> usize {
        self.words.push(w);
        self.words.len() - 1
    }

    fn place_scheduled(
        &mut self,
        block: &crate::vcode::VBlock,
        sched: &BlockSchedule,
        base: usize,
    ) {
        // Ensure capacity: words base .. base+len.
        while self.words.len() < base + sched.len as usize {
            self.words.push(InstructionWord::new());
        }
        for s in &sched.ops {
            let op = to_target_op(&block.ops[s.op_idx]);
            self.words[base + s.cycle as usize]
                .place(s.fu, op)
                .expect("scheduler produced conflicting placement");
        }
    }
}

fn operand_of(v: VOperand) -> Operand {
    match v {
        VOperand::Phys(r) => Operand::Reg(r),
        VOperand::ImmI(c) => Operand::ImmI(c),
        VOperand::ImmF(c) => Operand::ImmF(c),
        VOperand::Addr(a) => Operand::Addr(a),
        VOperand::Virt(v) => panic!("unallocated operand {v}"),
    }
}

/// Emits `vf` (fully register-allocated) into a function image.
///
/// `max_ii` bounds the modulo scheduler's search.
///
/// # Panics
///
/// Panics if the function still contains virtual registers.
pub fn emit_function(vf: &VFunc, max_ii: u32) -> (FunctionImage, EmitStats) {
    let (image, stats, _) = emit_function_with_plans(vf, max_ii);
    (image, stats)
}

/// Like [`emit_function`], additionally returning the layout record of
/// every software-pipelined loop for the static schedule checker.
///
/// # Panics
///
/// Panics if the function still contains virtual registers.
pub fn emit_function_with_plans(
    vf: &VFunc,
    max_ii: u32,
) -> (FunctionImage, EmitStats, Vec<PipelinedLoopInfo>) {
    let mut stats = EmitStats::default();
    let n = vf.blocks.len();
    let mut em = Emitter {
        words: Vec::new(),
        fixups: Vec::new(),
        call_relocs: Vec::new(),
        block_addr: vec![None; n],
        fallback_addr: vec![None; n],
        plans: Vec::new(),
    };

    for bi in 0..n {
        let block = &vf.blocks[bi];
        em.block_addr[bi] = Some(em.words.len() as u32);

        // Try software pipelining for marked loops.
        if block.is_pipeline_loop {
            let outcome = plan_pipeline(block, bi, max_ii);
            stats.dep_tests += outcome.graph.dep_tests;
            match outcome.result {
                Ok(plan) => {
                    stats.pipelined_loops += 1;
                    stats.modulo_attempts += plan.attempts;
                    stats.total_ii += plan.ii;
                    stats.total_iis_tried += plan.iis_tried;
                    emit_pipelined(&mut em, vf, bi, &plan, &mut stats);
                    continue;
                }
                Err(reason) => {
                    if let crate::pipeline::NoPipeline::NoSchedule { attempts } = reason {
                        stats.modulo_attempts += attempts;
                    }
                    stats.fallback_loops += 1;
                    // Fall through to normal emission below.
                }
            }
        }

        // Plain block: list-schedule and emit.
        let graph = mdep_graph(block, false);
        stats.dep_tests += graph.dep_tests;
        let sched = list_schedule(block, &graph);
        stats.list_attempts += sched.attempts;
        let base = em.words.len();
        em.place_scheduled(block, &sched, base);
        emit_terminator(&mut em, bi, &block.term, n);
    }

    // Patch fixups.
    for f in &em.fixups {
        match *f {
            Fixup::Jump { word, block } => {
                let target = em.block_addr[block].expect("target emitted");
                if let Some(BranchOp::Jump(t)) = &mut em.words[word].branch {
                    *t = target;
                } else {
                    unreachable!("fixup points at non-jump");
                }
            }
            Fixup::BrTrue { word, block } => {
                let target = em.block_addr[block].expect("target emitted");
                if let Some(BranchOp::BrTrue(_, t)) = &mut em.words[word].branch {
                    *t = target;
                } else {
                    unreachable!("fixup points at non-brtrue");
                }
            }
            Fixup::BrTrueFallback { word, block } => {
                let target = em.fallback_addr[block].expect("fallback emitted");
                if let Some(BranchOp::BrTrue(_, t)) = &mut em.words[word].branch {
                    *t = target;
                } else {
                    unreachable!("fixup points at non-brtrue");
                }
            }
        }
    }

    stats.words = em.words.len() as u32;
    let image = FunctionImage {
        name: vf.name.clone(),
        code: em.words,
        data_words: vf.data_words,
        param_count: vf.param_count,
        returns_value: vf.returns_value,
        call_relocs: em.call_relocs,
    };
    (image, stats, em.plans)
}

/// Emits the terminator of a plain block.
fn emit_terminator(em: &mut Emitter, bi: usize, term: &VTerm, nblocks: usize) {
    match term {
        VTerm::Return => {
            em.push(InstructionWord::branch_only(BranchOp::Ret));
        }
        VTerm::Jump(t) => {
            // Fallthrough when the target is the next block.
            if *t != bi + 1 || *t >= nblocks {
                let w = em.push(InstructionWord::branch_only(BranchOp::Jump(0)));
                em.fixups.push(Fixup::Jump { word: w, block: *t });
            }
        }
        VTerm::Branch {
            cond,
            then_blk,
            else_blk,
        } => {
            let cond = cond.as_phys().expect("allocated condition");
            let w = em.push(InstructionWord::branch_only(BranchOp::BrTrue(cond, 0)));
            em.fixups.push(Fixup::BrTrue {
                word: w,
                block: *then_blk,
            });
            if *else_blk != bi + 1 {
                let w = em.push(InstructionWord::branch_only(BranchOp::Jump(0)));
                em.fixups.push(Fixup::Jump {
                    word: w,
                    block: *else_blk,
                });
            }
        }
        VTerm::Call { callee, next } => {
            let w = em.push(InstructionWord::branch_only(BranchOp::Call(u32::MAX)));
            em.call_relocs.push(CallReloc {
                word: w as u32,
                callee: callee.clone(),
            });
            if *next != bi + 1 {
                let w = em.push(InstructionWord::branch_only(BranchOp::Jump(0)));
                em.fixups.push(Fixup::Jump {
                    word: w,
                    block: *next,
                });
            }
        }
    }
}

/// Emits the guard + prologue + kernel + epilogue + fallback expansion
/// of a pipelined loop.
fn emit_pipelined(em: &mut Emitter, vf: &VFunc, bi: usize, plan: &LoopPlan, stats: &mut EmitStats) {
    let block = &vf.blocks[bi];
    let VTerm::Branch { cond, else_blk, .. } = &block.term else {
        unreachable!("pipelined block must end in a branch");
    };
    let exit = *else_blk;
    let cond = cond.as_phys().expect("allocated condition");
    let [counter_reg, tmp_reg, guard_reg] = SCRATCH;
    let s = plan.stages;
    let ii = plan.ii;

    // ---- guard: trip count, counter init, stage check ----------------
    let ind = Operand::Reg(plan.induction);
    let limit = operand_of(plan.limit);
    // trip = (limit - i) + 1   (step = +1)   or (i - limit) + 1.
    let mut w = InstructionWord::new();
    let sub = if plan.step > 0 {
        Op {
            opcode: Opcode::ISub,
            dst: Some(tmp_reg),
            a: Some(limit),
            b: Some(ind),
        }
    } else {
        Op {
            opcode: Opcode::ISub,
            dst: Some(tmp_reg),
            a: Some(ind),
            b: Some(limit),
        }
    };
    w.place(FuKind::Alu, sub).expect("guard word");
    em.push(w);
    // Non-unit steps (unrolled or `by k` loops): iterations =
    // floor(diff / |step|) + 1. The divide is iterative (8 cycles) but
    // the guard runs once per loop entry.
    if plan.step.abs() > 1 {
        let mut w = InstructionWord::new();
        w.place(
            FuKind::Alu,
            Op {
                opcode: Opcode::IDiv,
                dst: Some(tmp_reg),
                a: Some(Operand::Reg(tmp_reg)),
                b: Some(Operand::ImmI(plan.step.unsigned_abs() as i32)),
            },
        )
        .expect("guard word");
        em.push(w);
        // The iterative divide occupies the ALU for its full latency;
        // space the next word so strict mode is satisfied.
        for _ in 0..Opcode::IDiv.timing().latency {
            em.push(InstructionWord::new());
        }
    }
    let mut w = InstructionWord::new();
    w.place(
        FuKind::Alu,
        Op {
            opcode: Opcode::IAdd,
            dst: Some(tmp_reg),
            a: Some(Operand::Reg(tmp_reg)),
            b: Some(Operand::ImmI(1)),
        },
    )
    .expect("guard word");
    em.push(w);
    // Counter init: N = trip - (S-1) for EarlierWord; N-1 for SameWord.
    let init_sub = match plan.counter {
        CounterStrategy::EarlierWord { .. } => (s - 1) as i32,
        CounterStrategy::SameWord { .. } => s as i32,
    };
    let mut w = InstructionWord::new();
    w.place(
        FuKind::Alu,
        Op {
            opcode: Opcode::ISub,
            dst: Some(counter_reg),
            a: Some(Operand::Reg(tmp_reg)),
            b: Some(Operand::ImmI(init_sub)),
        },
    )
    .expect("guard word");
    em.push(w);
    if s >= 2 {
        // if trip < S: fallback.
        let mut w = InstructionWord::new();
        w.place(
            FuKind::Alu,
            Op {
                opcode: Opcode::ICmp(CmpKind::Lt),
                dst: Some(guard_reg),
                a: Some(Operand::Reg(tmp_reg)),
                b: Some(Operand::ImmI(s as i32)),
            },
        )
        .expect("guard word");
        em.push(w);
        let gw = em.push(InstructionWord::branch_only(BranchOp::BrTrue(guard_reg, 0)));
        em.fixups.push(Fixup::BrTrueFallback {
            word: gw,
            block: bi,
        });
    }

    // ---- prologue rows ------------------------------------------------
    for p in 0..s - 1 {
        let base = em.words.len();
        for _ in 0..ii {
            em.push(InstructionWord::new());
        }
        for pl in plan.prologue_row(p) {
            let op = to_target_op(&block.ops[pl.op_idx]);
            let slot = (pl.time % ii) as usize;
            em.words[base + slot]
                .place(pl.fu, op)
                .expect("prologue placement");
        }
    }

    // ---- kernel ---------------------------------------------------------
    let kernel_start = em.words.len() as u32;
    em.plans.push(PipelinedLoopInfo {
        block: bi,
        kernel_start,
        plan: plan.clone(),
        ops: block.ops.iter().map(to_target_op).collect(),
    });
    let base = em.words.len();
    for _ in 0..ii {
        em.push(InstructionWord::new());
    }
    for pl in &plan.placements {
        let op = to_target_op(&block.ops[pl.op_idx]);
        let slot = (pl.time % ii) as usize;
        em.words[base + slot]
            .place(pl.fu, op)
            .expect("kernel placement");
    }
    // Counter decrement.
    let dec = Op {
        opcode: Opcode::ISub,
        dst: Some(counter_reg),
        a: Some(Operand::Reg(counter_reg)),
        b: Some(Operand::ImmI(1)),
    };
    match plan.counter {
        CounterStrategy::EarlierWord { slot, fu } => {
            em.words[base + slot as usize]
                .place(fu, dec)
                .expect("counter slot");
        }
        CounterStrategy::SameWord { fu } => {
            em.words[base + ii as usize - 1]
                .place(fu, dec)
                .expect("counter slot");
        }
    }
    // Loop-back branch in the kernel's last word.
    em.words[base + ii as usize - 1].branch = Some(BranchOp::BrTrue(counter_reg, kernel_start));

    // ---- epilogue rows ---------------------------------------------------
    for r in 1..s {
        let base = em.words.len();
        for _ in 0..ii {
            em.push(InstructionWord::new());
        }
        for pl in plan.epilogue_row(r) {
            let op = to_target_op(&block.ops[pl.op_idx]);
            let slot = (pl.time % ii) as usize;
            em.words[base + slot]
                .place(pl.fu, op)
                .expect("epilogue placement");
        }
    }

    // ---- drain + exit -----------------------------------------------------
    for _ in 0..plan.drain {
        em.push(InstructionWord::new());
    }
    let jw = em.push(InstructionWord::branch_only(BranchOp::Jump(0)));
    em.fixups.push(Fixup::Jump {
        word: jw,
        block: exit,
    });

    // ---- fallback: plain scheduled loop body ------------------------------
    em.fallback_addr[bi] = Some(em.words.len() as u32);
    let fb_start = em.words.len() as u32;
    let graph = mdep_graph(block, false);
    stats.dep_tests += graph.dep_tests;
    let sched = list_schedule(block, &graph);
    stats.list_attempts += sched.attempts;
    let base = em.words.len();
    em.place_scheduled(block, &sched, base);
    let bw = em.push(InstructionWord::branch_only(BranchOp::BrTrue(
        cond, fb_start,
    )));
    let _ = bw;
    let jw = em.push(InstructionWord::branch_only(BranchOp::Jump(0)));
    em.fixups.push(Fixup::Jump {
        word: jw,
        block: exit,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use crate::select::select;
    use warp_ir::phase2::phase2;
    use warp_lang::phase1;
    use warp_target::config::CellConfig;
    use warp_target::interp::{Cell, Value};
    use warp_target::isa::Reg;
    use warp_target::program::SectionImage;

    fn compile_fn(src: &str, idx: usize) -> (FunctionImage, EmitStats) {
        let checked = phase1(src).expect("phase1");
        let f = &checked.module.sections[0].functions[idx];
        let r = phase2(
            f,
            &checked.sections[0].symbol_tables[idx],
            &checked.sections[0].signatures,
        )
        .expect("phase2");
        let mut vf = select(&r.ir, &r.loops.pipelinable_blocks());
        allocate(&mut vf, &CellConfig::default()).expect("regalloc");
        emit_function(&vf, 256)
    }

    fn image_of(funcs: Vec<FunctionImage>) -> SectionImage {
        crate::link::link_section("s", 0, 0, funcs, &CellConfig::default())
            .expect("link")
            .0
    }

    fn run_f32(img: &SectionImage, func: &str, args: &[Value], strict: bool) -> f32 {
        let mut cell = Cell::new(CellConfig::default(), img.clone()).unwrap();
        cell.set_strict(strict);
        cell.prepare_call(func, args).unwrap();
        cell.run(2_000_000).unwrap();
        match cell.reg(Reg::RET).unwrap() {
            Value::F(v) => v,
            Value::I(v) => v as f32,
        }
    }

    fn wrap(body: &str) -> String {
        format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[64]; w: float[64]; i: int; begin {body} end; end;"
        )
    }

    #[test]
    fn straight_line_executes_correctly() {
        let (img, _) = compile_fn(&wrap("t := x * 2.0 + 1.0; return t;"), 0);
        let sec = image_of(vec![img]);
        let got = run_f32(&sec, "f", &[Value::F(3.0), Value::I(0)], true);
        assert_eq!(got, 7.0);
    }

    #[test]
    fn branch_executes_correctly() {
        let (img, _) = compile_fn(
            &wrap("if x > 1.0 then t := 10.0; else t := 20.0; end; return t;"),
            0,
        );
        let sec = image_of(vec![img]);
        assert_eq!(
            run_f32(&sec, "f", &[Value::F(2.0), Value::I(0)], true),
            10.0
        );
        assert_eq!(
            run_f32(&sec, "f", &[Value::F(0.5), Value::I(0)], true),
            20.0
        );
    }

    #[test]
    fn pipelined_loop_executes_correctly_strict() {
        let (img, stats) = compile_fn(
            &wrap("t := 0.0; for i := 1 to 10 do t := t + float(i); end; return t;"),
            0,
        );
        assert!(stats.pipelined_loops >= 1, "{stats:?}");
        let sec = image_of(vec![img]);
        let got = run_f32(&sec, "f", &[Value::F(0.0), Value::I(0)], true);
        assert_eq!(got, 55.0);
    }

    #[test]
    fn pipelined_array_loop_strict() {
        let (img, stats) = compile_fn(
            &wrap(
                "for i := 0 to 63 do v[i] := float(i) * 2.0; end; \
                 t := 0.0; for i := 0 to 63 do t := t + v[i]; end; return t;",
            ),
            0,
        );
        assert!(stats.pipelined_loops >= 1, "{stats:?}");
        let sec = image_of(vec![img]);
        let got = run_f32(&sec, "f", &[Value::F(0.0), Value::I(0)], true);
        // sum of 2i for i in 0..64 = 2*2016 = 4032
        assert_eq!(got, 4032.0);
    }

    #[test]
    fn short_trip_count_uses_fallback_correctly() {
        // Loop bound depends on n; when the pipelined version needs more
        // iterations than available, the guard takes the fallback.
        let (img, _) = compile_fn(
            &wrap("t := 0.0; for i := 1 to n do t := t + float(i); end; return t;"),
            0,
        );
        let sec = image_of(vec![img]);
        for n in 0..12 {
            let got = run_f32(&sec, "f", &[Value::F(0.0), Value::I(n)], true);
            let expect = (n * (n + 1) / 2) as f32;
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn downto_loop_executes() {
        let (img, _) = compile_fn(
            &wrap("t := 0.0; for i := 10 downto 1 do t := t + float(i); end; return t;"),
            0,
        );
        let sec = image_of(vec![img]);
        assert_eq!(
            run_f32(&sec, "f", &[Value::F(0.0), Value::I(0)], true),
            55.0
        );
    }

    #[test]
    fn while_loop_executes() {
        let (img, _) = compile_fn(
            &wrap("t := x; while t < 100.0 do t := t * 2.0; end; return t;"),
            0,
        );
        let sec = image_of(vec![img]);
        assert_eq!(
            run_f32(&sec, "f", &[Value::F(3.0), Value::I(0)], true),
            192.0
        );
    }

    #[test]
    fn calls_execute_with_saves() {
        let src = "module m; section a on cells 0..0; \
             function g(y: float): float begin return y * 3.0; end; \
             function f(x: float): float var t: float; u: float; begin \
             t := x + 1.0; u := g(x); return t + u; end; end;";
        let (g_img, _) = compile_fn(src, 0);
        let (f_img, _) = compile_fn(src, 1);
        let (sec, _) =
            crate::link::link_section("a", 0, 0, vec![g_img, f_img], &CellConfig::default())
                .expect("link");
        let got = run_f32(&sec, "f", &[Value::F(2.0)], true);
        assert_eq!(got, 9.0); // (2+1) + 2*3
    }

    #[test]
    fn queue_ops_execute_in_order() {
        let (img, _) = compile_fn(
            &wrap("for i := 1 to 5 do send(right, float(i)); end; return 0.0;"),
            0,
        );
        let sec = image_of(vec![img]);
        let mut cell = Cell::new(CellConfig::default(), sec).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[Value::F(0.0), Value::I(0)])
            .unwrap();
        cell.run(1_000_000).unwrap();
        let got: Vec<f32> = cell
            .out_right
            .iter()
            .map(|v| match v {
                Value::F(f) => *f,
                Value::I(i) => *i as f32,
            })
            .collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn pipelining_beats_fallback_on_cycles() {
        let (img, stats) = compile_fn(
            &wrap(
                "t := 0.0; for i := 0 to 63 do w[i] := 1.5; end; \
                 for i := 0 to 63 do v[i] := w[i] * 2.0 + 1.0; end; return t;",
            ),
            0,
        );
        assert!(stats.pipelined_loops >= 1);
        let sec = image_of(vec![img.clone()]);
        let mut cell = Cell::new(CellConfig::default(), sec).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[Value::F(0.0), Value::I(0)])
            .unwrap();
        cell.run(1_000_000).unwrap();
        let pipelined_cycles = cell.cycle();
        // Each serial body is ~15+ cycles; 2 × 64 iterations serial
        // would be ≥ 1800. The pipelined loops should be far below.
        assert!(pipelined_cycles < 1400, "cycles={pipelined_cycles}");
    }

    #[test]
    fn nested_loops_execute() {
        let (img, _) = compile_fn(
            &wrap(
                "t := 0.0; for i := 0 to 7 do u := 0.0; \
                 for n := 0 to 7 do u := u + 1.0; end; t := t + u; end; return t;",
            ),
            0,
        );
        let sec = image_of(vec![img]);
        assert_eq!(
            run_f32(&sec, "f", &[Value::F(0.0), Value::I(0)], true),
            64.0
        );
    }
}

#[cfg(test)]
mod debug_tests {
    use super::tests_debug_helper::*;

    #[test]
    fn debug_two_loop_function() {
        dump_two_loop();
    }
}

#[cfg(test)]
pub(crate) mod tests_debug_helper {
    use crate::regalloc::allocate;
    use crate::select::select;
    use warp_ir::phase2::phase2;
    use warp_lang::phase1;
    use warp_target::config::CellConfig;
    use warp_target::interp::{Cell, StepOutcome, Value};

    pub fn dump_two_loop() {
        let src = "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; u: float; v: float[64]; w: float[64]; i: int; begin \
             t := 0.0; for i := 0 to 63 do w[i] := 1.5; end; \
             for i := 0 to 63 do v[i] := w[i] * 2.0 + 1.0; end; return t; end; end;";
        let checked = phase1(src).expect("phase1");
        let f = &checked.module.sections[0].functions[0];
        let r = phase2(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
        )
        .expect("phase2");
        let mut vf = select(&r.ir, &r.loops.pipelinable_blocks());
        allocate(&mut vf, &CellConfig::default()).expect("regalloc");
        let (img, _) = crate::emit::emit_function(&vf, 256);
        let (sec, _) =
            crate::link::link_section("a", 0, 0, vec![img], &CellConfig::default()).unwrap();
        let mut listing = String::new();
        for (i, w) in sec.functions[0].code.iter().enumerate() {
            listing.push_str(&format!("{i:4}: {w}\n"));
        }
        let mut cell = Cell::new(CellConfig::default(), sec).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[Value::F(0.0), Value::I(0)])
            .unwrap();
        for _ in 0..100000 {
            let (fi, pc, word) = cell.debug_position();
            match cell.step() {
                Ok(StepOutcome::Halted) => return,
                Ok(_) => {}
                Err(e) => {
                    panic!("error at fn{fi} pc{pc}: {word}\n  -> {e}\n{listing}");
                }
            }
        }
    }
}

#[cfg(test)]
mod ifconv_pipeline_tests {
    use crate::regalloc::allocate;
    use crate::select::select;
    use warp_ir::phase2::phase2_opts;
    use warp_lang::phase1;
    use warp_target::config::CellConfig;
    use warp_target::interp::{Cell, Value};
    use warp_target::isa::Reg;

    /// A loop whose body contains a branch: without if-conversion it is
    /// a multi-block loop the pipeliner skips; with it, a single-block
    /// kernel with selects that software-pipelines and still computes
    /// the right answer under strict checking.
    #[test]
    fn if_converted_loop_pipelines_and_is_correct() {
        let src = "module m; section a on cells 0..0;\n\
            function f(x: float): float\n\
            var t: float; u: float; i: int;\n\
            begin\n\
              t := 0.0;\n\
              for i := 0 to 31 do\n\
                u := float(i) * 0.5;\n\
                if u > 8.0 then t := t + u; else t := t - u; end;\n\
              end;\n\
              return t;\n\
            end;\nend;";
        let checked = phase1(src).unwrap();
        let f = &checked.module.sections[0].functions[0];

        let run = |ifconv: bool| -> (u64, f32, usize) {
            let policy = warp_ir::IfConvPolicy::default();
            let p2 = phase2_opts(
                f,
                &checked.sections[0].symbol_tables[0],
                &checked.sections[0].signatures,
                None,
                ifconv.then_some(&policy),
            )
            .unwrap();
            let mut vf = select(&p2.ir, &p2.loops.pipelinable_blocks());
            allocate(&mut vf, &CellConfig::default()).unwrap();
            let (img, stats) = crate::emit::emit_function(&vf, 256);
            let (sec, _) =
                crate::link::link_section("a", 0, 0, vec![img], &CellConfig::default()).unwrap();
            let mut cell = Cell::new(CellConfig::default(), sec).unwrap();
            cell.set_strict(true);
            cell.prepare_call("f", &[Value::F(0.0)]).unwrap();
            cell.run(1_000_000).unwrap();
            let v = match cell.reg(Reg::RET).unwrap() {
                Value::F(v) => v,
                Value::I(v) => v as f32,
            };
            (cell.cycle(), v, stats.pipelined_loops)
        };

        let (cycles_base, v_base, pipe_base) = run(false);
        let (cycles_conv, v_conv, pipe_conv) = run(true);
        // Expected: sum over i of ±(i/2) with sign flipping above 8.
        let expect: f32 = (0..32)
            .map(|i| {
                let u = i as f32 * 0.5;
                if u > 8.0 {
                    u
                } else {
                    -u
                }
            })
            .sum();
        assert_eq!(v_base, expect);
        assert_eq!(v_conv, expect);
        assert_eq!(pipe_base, 0, "branchy loop must not pipeline un-converted");
        assert!(pipe_conv >= 1, "if-converted loop must pipeline");
        assert!(
            cycles_conv < cycles_base,
            "pipelined selects should beat branching: {cycles_conv} !< {cycles_base}"
        );
    }
}
