//! `warpd` — compilation as a service for the Warp parallel compiler.
//!
//! The paper's compiler runs once per build. This crate keeps it
//! *resident*: a daemon owns one persistent function cache and serves
//! many users' builds over a Unix socket (TCP behind a flag), so the
//! incremental-compilation economics of `parcc::fncache` compound
//! across tenants instead of resetting with every process.
//!
//! The pieces, bottom-up:
//!
//! * [`warp_wire`](json) — the shared wire substrate: a minimal strict
//!   JSON parser/writer and 4-byte length-prefixed framing (the build
//!   is hermetic; there is no serde_json here);
//! * [`proto`] — the daemon's wire protocol on top of it:
//!   request/response types and stable error codes. The normative
//!   spec is `docs/SERVICE.md`;
//! * [`daemon`] — [`Warpd`]: accept loop, per-connection handler
//!   threads, shared [`parcc::FnCache`], in-flight dedup
//!   ([`warp_cache::InFlight`]), bounded admission control with
//!   explicit `overloaded` backpressure, and per-request `service`
//!   trace spans;
//! * [`client`] — [`Client`]: a blocking connection used by `warpctl`
//!   and the tests;
//! * [`bench`](mod@bench) — the `warpctl bench` load generator: deterministic
//!   cold/warm/single-function-edit replay, latency percentiles,
//!   dedup probe, `BENCH_service.json` writer.
//!
//! # Example
//!
//! Spin a daemon up on a temporary Unix socket, compile a module,
//! and shut it down:
//!
//! ```
//! use warp_service::{Client, DaemonConfig, Endpoint, RequestOptions, Response, Warpd};
//! use std::time::Duration;
//!
//! let sock = std::env::temp_dir().join(format!("warpd-doc-{}.sock", std::process::id()));
//! let daemon = Warpd::start(DaemonConfig::new(Endpoint::Unix(sock.clone()))).unwrap();
//!
//! let mut client = Client::connect(daemon.endpoint(), Duration::from_secs(5)).unwrap();
//! let mut module = String::from("module hello;\nsection main on cells 0..9;\n");
//! module.push_str(&warp_workload::function_source_with("hello_f0", 12, 2));
//! module.push_str("\nend;\n");
//! match client.compile(&module, RequestOptions::default()).unwrap() {
//!     Response::Compiled { functions, .. } => assert_eq!(functions, 1),
//!     other => panic!("unexpected reply: {other:?}"),
//! }
//!
//! assert!(matches!(client.shutdown().unwrap(), Response::Bye { .. }));
//! daemon.join();
//! assert!(!sock.exists()); // the socket file is unlinked on shutdown
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod daemon;
pub mod proto;

// The JSON value and the framing substrate moved to `warp-wire` so the
// build farm (`parcc::farm`) can share them; re-exported under the old
// paths for compatibility.
pub use warp_wire::json;

pub use bench::{BenchConfig, BenchReport, ClassStats, DedupProbe};
pub use client::{Client, ClientError};
pub use daemon::{DaemonConfig, Endpoint, Warpd};
pub use proto::{
    ErrorCode, FrameError, HealthInfo, Request, RequestOptions, Response, WireCacheStats,
    MAX_FRAME_DEFAULT, PROTOCOL_VERSION,
};
