//! `warpctl bench`: a load generator that replays simulated users
//! against a running `warpd` and reports latency percentiles,
//! throughput, and a dedup probe to `BENCH_service.json`
//! (schema `warp-bench-service/1`, documented in `EXPERIMENTS.md`).
//!
//! Three request classes model how users hit a compilation service:
//!
//! * **cold** — a module the daemon has never seen (every function
//!   misses and compiles);
//! * **warm** — an unchanged re-compile of a seeded module (every
//!   function hits the shared cache);
//! * **edit** — a seeded module with exactly one function body
//!   changed (one miss, the rest hit) — the single-function-edit loop
//!   the incremental cache is built for.
//!
//! The replay is deterministic: module sources come from
//! `warp_workload::function_source_with` (seeded by name and length)
//! and the class schedule is a fixed rotation, so two runs against
//! equal daemons issue byte-identical request streams.

use crate::client::{Client, ClientError};
use crate::daemon::Endpoint;
use crate::proto::{from_hex, RequestOptions, Response};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Daemon to target.
    pub endpoint: Endpoint,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests in the mixed replay (on top of seeding).
    pub requests: usize,
    /// Seeded base modules (the warm/edit working set).
    pub tenants: usize,
    /// Functions per module.
    pub functions: usize,
    /// Approximate lines per function body.
    pub lines: usize,
    /// Per-request compile options.
    pub options: RequestOptions,
    /// Re-compile every image locally and require byte equality with
    /// the daemon's (slow; the CI job uses a bounded run).
    pub verify_identical: bool,
}

impl BenchConfig {
    /// Defaults sized for a meaningful local run (8 clients, 1,000
    /// mixed requests over 16 seeded modules).
    pub fn new(endpoint: Endpoint) -> BenchConfig {
        BenchConfig {
            endpoint,
            clients: 8,
            requests: 1000,
            tenants: 16,
            functions: 5,
            lines: 16,
            options: RequestOptions::default(),
            verify_identical: false,
        }
    }
}

/// Latency summary for one request class. Client-observed latency
/// (`p50_ms`/`p99_ms`) includes queueing at the daemon; the
/// `compile_*` fields are the daemon's own compile time from the
/// response, which isolates the per-class cost from load.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    /// Requests in this class.
    pub count: u64,
    /// Median client-observed latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency, milliseconds.
    pub p99_ms: f64,
    /// Mean client-observed latency, milliseconds.
    pub mean_ms: f64,
    /// Median daemon-side compile time, milliseconds.
    pub compile_p50_ms: f64,
    /// 99th-percentile daemon-side compile time, milliseconds.
    pub compile_p99_ms: f64,
}

/// The dedup probe's outcome: `clients` concurrent compiles of one
/// fresh module caused `misses_delta` cache misses; dedup holds when
/// that equals `functions` (each function compiled once, not once per
/// client).
#[derive(Debug, Clone, Copy)]
pub struct DedupProbe {
    /// Concurrent identical requests issued.
    pub clients: u64,
    /// Functions in the probe module.
    pub functions: u64,
    /// Cache-miss counter delta across the probe.
    pub misses_delta: u64,
    /// Cache-store counter delta across the probe.
    pub stores_delta: u64,
}

/// Everything a bench run produced.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Per-class latency: seeding (cold), warm, edit, mixed-cold.
    pub seed: ClassStats,
    /// Warm re-compiles.
    pub warm: ClassStats,
    /// Single-function edits.
    pub edit: ClassStats,
    /// Cold modules inside the mixed replay.
    pub cold: ClassStats,
    /// Total replay requests (excludes seeding).
    pub requests: u64,
    /// Requests that failed (any non-`compiled` response).
    pub failures: u64,
    /// Replay wall-clock, seconds.
    pub wall_s: f64,
    /// Replay throughput, requests/second.
    pub throughput_rps: f64,
    /// Dedup probe outcome.
    pub dedup: DedupProbe,
    /// Images checked byte-identical against local compilation.
    pub verified_identical: u64,
}

/// One scheduled request.
#[derive(Debug, Clone)]
enum Job {
    Warm {
        tenant: usize,
    },
    Edit {
        tenant: usize,
        function: usize,
        generation: usize,
    },
    Cold {
        serial: usize,
    },
}

/// Builds a module with `functions` functions named
/// `{prefix}_f{j}`; `bump[j]` lengthens function `j`'s body, changing
/// its body (and only its body — all generated functions share one
/// signature, so the other functions' keys survive).
fn module_source(prefix: &str, functions: usize, lines: usize, bump: &[(usize, usize)]) -> String {
    let mut s = format!("module {prefix};\nsection main on cells 0..9;\n");
    for j in 0..functions {
        let extra = bump
            .iter()
            .find(|(idx, _)| *idx == j)
            .map_or(0, |(_, generation)| *generation);
        s.push_str(&warp_workload::function_source_with(
            &format!("{prefix}_f{j}"),
            lines + extra,
            2,
        ));
        s.push('\n');
    }
    s.push_str("end;\n");
    s
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Builds a [`ClassStats`] from `(observed_ms, compile_ms)` samples.
fn class_stats(samples: Vec<(f64, f64)>) -> ClassStats {
    if samples.is_empty() {
        return ClassStats::default();
    }
    let mut observed: Vec<f64> = samples.iter().map(|s| s.0).collect();
    let mut compile: Vec<f64> = samples.iter().map(|s| s.1).collect();
    observed.sort_by(f64::total_cmp);
    compile.sort_by(f64::total_cmp);
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    ClassStats {
        count: observed.len() as u64,
        p50_ms: percentile(&observed, 0.50),
        p99_ms: percentile(&observed, 0.99),
        mean_ms: mean,
        compile_p50_ms: percentile(&compile, 0.50),
        compile_p99_ms: percentile(&compile, 0.99),
    }
}

fn stats_counters(client: &mut Client) -> Result<(u64, u64), ClientError> {
    match client.cache_stats()? {
        Response::CacheStats { stats, .. } => Ok((stats.misses, stats.stores)),
        other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
    }
}

/// Runs the full bench: seed, dedup probe, mixed replay. Prints
/// nothing; the caller renders the report.
///
/// # Errors
///
/// Transport/protocol failures and — when `verify_identical` is on —
/// the first daemon image that differs from local compilation.
/// Ordinary per-request compile failures do *not* abort the run; they
/// are tallied in [`BenchReport::failures`].
pub fn run(config: &BenchConfig) -> Result<BenchReport, ClientError> {
    let tenants = config.tenants.max(1);
    let mut control = Client::connect(&config.endpoint, Duration::from_secs(5))?;

    // --- seed: compile every tenant's base module once (cold) -------
    let mut seed_ms = Vec::new();
    for t in 0..tenants {
        let source = module_source(&format!("t{t}"), config.functions, config.lines, &[]);
        let started = Instant::now();
        let resp = control.compile(&source, config.options)?;
        let observed = started.elapsed().as_secs_f64() * 1e3;
        let Response::Compiled { compile_ns, .. } = resp else {
            return Err(ClientError::Protocol(format!(
                "seeding tenant {t} failed: {resp:?}"
            )));
        };
        seed_ms.push((observed, compile_ns as f64 / 1e6));
    }

    // --- dedup probe: many clients compile one fresh module at once.
    // At least 8 connections regardless of the replay's client count:
    // the probe is about concurrency, not steady-state load.
    let probe_clients = config.clients.max(8);
    let probe_source = Arc::new(module_source("probe", config.functions, config.lines, &[]));
    let (misses_before, stores_before) = stats_counters(&mut control)?;
    let barrier = Arc::new(std::sync::Barrier::new(probe_clients));
    let mut probes = Vec::new();
    for _ in 0..probe_clients {
        let endpoint = config.endpoint.clone();
        let source = Arc::clone(&probe_source);
        let barrier = Arc::clone(&barrier);
        let options = config.options;
        probes.push(std::thread::spawn(move || -> Result<(), ClientError> {
            let mut c = Client::connect(&endpoint, Duration::from_secs(5))?;
            barrier.wait();
            match c.compile(&source, options)? {
                Response::Compiled { .. } => Ok(()),
                other => Err(ClientError::Protocol(format!("probe failed: {other:?}"))),
            }
        }));
    }
    for p in probes {
        p.join().expect("probe thread")?;
    }
    let (misses_after, stores_after) = stats_counters(&mut control)?;
    let dedup = DedupProbe {
        clients: probe_clients as u64,
        functions: config.functions as u64,
        misses_delta: misses_after - misses_before,
        stores_delta: stores_after - stores_before,
    };

    // --- mixed replay -----------------------------------------------
    // Deterministic 10-step rotation: 6 warm, 3 edits, 1 cold.
    let mut jobs = VecDeque::new();
    let mut cold_serial = 0usize;
    let mut edit_serial = 0usize;
    for i in 0..config.requests {
        let job = match i % 10 {
            9 => {
                cold_serial += 1;
                Job::Cold {
                    serial: cold_serial,
                }
            }
            3 | 6 | 8 => {
                edit_serial += 1;
                Job::Edit {
                    tenant: edit_serial % tenants,
                    function: edit_serial % config.functions.max(1),
                    generation: edit_serial,
                }
            }
            n => Job::Warm {
                tenant: (i / 10 * 7 + n) % tenants,
            },
        };
        jobs.push_back(job);
    }
    let jobs = Arc::new(Mutex::new(jobs));
    let failures = Arc::new(Mutex::new(0u64));
    let verified = Arc::new(Mutex::new(0u64));
    type Samples = Vec<(f64, f64)>;
    let samples: Arc<Mutex<(Samples, Samples, Samples)>> =
        Arc::new(Mutex::new((Vec::new(), Vec::new(), Vec::new())));

    let replay_start = Instant::now();
    let mut workers = Vec::new();
    for _ in 0..config.clients.max(1) {
        let endpoint = config.endpoint.clone();
        let jobs = Arc::clone(&jobs);
        let failures = Arc::clone(&failures);
        let verified = Arc::clone(&verified);
        let samples = Arc::clone(&samples);
        let cfg = config.clone();
        workers.push(std::thread::spawn(move || -> Result<(), ClientError> {
            let mut client = Client::connect(&endpoint, Duration::from_secs(5))?;
            loop {
                let job = { jobs.lock().expect("job queue").pop_front() };
                let Some(job) = job else { return Ok(()) };
                let source = match &job {
                    Job::Warm { tenant } => {
                        module_source(&format!("t{tenant}"), cfg.functions, cfg.lines, &[])
                    }
                    Job::Edit {
                        tenant,
                        function,
                        generation,
                    } => module_source(
                        &format!("t{tenant}"),
                        cfg.functions,
                        cfg.lines,
                        &[(*function, 1 + generation % 7)],
                    ),
                    Job::Cold { serial } => {
                        module_source(&format!("cold{serial}"), cfg.functions, cfg.lines, &[])
                    }
                };
                let started = Instant::now();
                let resp = client.compile(&source, cfg.options)?;
                let ms = started.elapsed().as_secs_f64() * 1e3;
                let compile_ms = match resp {
                    Response::Compiled {
                        image_hex,
                        compile_ns,
                        ..
                    } => {
                        if cfg.verify_identical {
                            verify_image(&source, cfg.options, &image_hex)?;
                            *verified.lock().expect("verified") += 1;
                        }
                        compile_ns as f64 / 1e6
                    }
                    _ => {
                        *failures.lock().expect("failures") += 1;
                        0.0
                    }
                };
                let mut s = samples.lock().expect("samples");
                match job {
                    Job::Warm { .. } => s.0.push((ms, compile_ms)),
                    Job::Edit { .. } => s.1.push((ms, compile_ms)),
                    Job::Cold { .. } => s.2.push((ms, compile_ms)),
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("replay thread")?;
    }
    let wall_s = replay_start.elapsed().as_secs_f64();

    let (warm_ms, edit_ms, cold_ms) = Arc::try_unwrap(samples)
        .expect("samples refs")
        .into_inner()
        .expect("samples lock");
    let requests = (warm_ms.len() + edit_ms.len() + cold_ms.len()) as u64;
    let failures = *failures.lock().expect("failures");
    let verified_identical = *verified.lock().expect("verified");
    Ok(BenchReport {
        seed: class_stats(seed_ms),
        warm: class_stats(warm_ms),
        edit: class_stats(edit_ms),
        cold: class_stats(cold_ms),
        requests,
        failures,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            requests as f64 / wall_s
        } else {
            0.0
        },
        dedup,
        verified_identical,
    })
}

/// Compiles `source` locally and requires the daemon's image to be
/// byte-identical.
fn verify_image(source: &str, options: RequestOptions, image_hex: &str) -> Result<(), ClientError> {
    let local = parcc::compile_module_source(source, &options.to_compile_options())
        .map_err(|e| ClientError::Protocol(format!("local compile failed: {e}")))?;
    let local_bytes = warp_target::download::encode(&local.module_image)
        .map_err(|e| ClientError::Protocol(format!("local encode failed: {e}")))?;
    let remote_bytes = from_hex(image_hex).map_err(ClientError::Protocol)?;
    if local_bytes != remote_bytes {
        return Err(ClientError::Protocol(
            "daemon image differs from local compilation".to_string(),
        ));
    }
    Ok(())
}

/// Renders the report as `BENCH_service.json` (schema
/// `warp-bench-service/1`; see EXPERIMENTS.md).
pub fn report_json(report: &BenchReport, config: &BenchConfig) -> String {
    let class = |name: &str, s: &ClassStats| {
        format!(
            "    \"{name}\": {{ \"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"compile_p50_ms\": {:.3}, \"compile_p99_ms\": {:.3} }}",
            s.count, s.p50_ms, s.p99_ms, s.mean_ms, s.compile_p50_ms, s.compile_p99_ms
        )
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"warp-bench-service/1\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"clients\": {}, \"requests\": {}, \"tenants\": {}, \"functions\": {}, \"lines\": {} }},\n",
        config.clients, config.requests, config.tenants, config.functions, config.lines
    ));
    s.push_str("  \"classes\": {\n");
    s.push_str(&class("seed_cold", &report.seed));
    s.push_str(",\n");
    s.push_str(&class("warm", &report.warm));
    s.push_str(",\n");
    s.push_str(&class("edit", &report.edit));
    s.push_str(",\n");
    s.push_str(&class("cold", &report.cold));
    s.push_str("\n  },\n");
    s.push_str(&format!(
        "  \"replay\": {{ \"requests\": {}, \"failures\": {}, \"wall_s\": {:.3}, \"throughput_rps\": {:.1} }},\n",
        report.requests, report.failures, report.wall_s, report.throughput_rps
    ));
    s.push_str(&format!(
        "  \"dedup\": {{ \"clients\": {}, \"functions\": {}, \"misses_delta\": {}, \"stores_delta\": {} }},\n",
        report.dedup.clients, report.dedup.functions, report.dedup.misses_delta, report.dedup.stores_delta
    ));
    s.push_str(&format!(
        "  \"verified_identical\": {}\n",
        report.verified_identical
    ));
    s.push_str("}\n");
    s
}

/// Writes `BENCH_service.json` to `path`.
///
/// # Errors
///
/// Propagates file I/O failures.
pub fn write_report(
    report: &BenchReport,
    config: &BenchConfig,
    path: &Path,
) -> std::io::Result<()> {
    std::fs::write(path, report_json(report, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_source_edit_changes_exactly_one_body() {
        let base = module_source("t0", 4, 12, &[]);
        let edited = module_source("t0", 4, 12, &[(2, 1)]);
        assert_ne!(base, edited);
        // Names and count unchanged.
        for j in 0..4 {
            assert!(base.contains(&format!("t0_f{j}")));
            assert!(edited.contains(&format!("t0_f{j}")));
        }
        // Deterministic: same args, same bytes.
        assert_eq!(base, module_source("t0", 4, 12, &[]));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let s = class_stats(vec![(4.0, 0.4), (1.0, 0.1), (3.0, 0.3), (2.0, 0.2)]);
        assert_eq!(s.count, 4);
        assert!((s.p50_ms - 3.0).abs() < 1e-9 || (s.p50_ms - 2.0).abs() < 1e-9);
        assert!((s.p99_ms - 4.0).abs() < 1e-9);
        assert!((s.mean_ms - 2.5).abs() < 1e-9);
        assert!((s.compile_p99_ms - 0.4).abs() < 1e-9);
    }

    #[test]
    fn report_json_is_valid_and_carries_schema() {
        let report = BenchReport {
            seed: ClassStats::default(),
            warm: ClassStats {
                count: 1,
                p50_ms: 1.0,
                p99_ms: 1.0,
                mean_ms: 1.0,
                compile_p50_ms: 0.5,
                compile_p99_ms: 0.5,
            },
            edit: ClassStats::default(),
            cold: ClassStats::default(),
            requests: 1,
            failures: 0,
            wall_s: 0.5,
            throughput_rps: 2.0,
            dedup: DedupProbe {
                clients: 4,
                functions: 5,
                misses_delta: 5,
                stores_delta: 5,
            },
            verified_identical: 0,
        };
        let cfg = BenchConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()));
        let text = report_json(&report, &cfg);
        let parsed = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.str_field("schema"), Some("warp-bench-service/1"));
        assert_eq!(
            parsed
                .get("dedup")
                .and_then(|d| d.u64_field("misses_delta")),
            Some(5)
        );
    }
}
