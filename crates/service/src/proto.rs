//! The `warpd` wire protocol: framing, request/response types and
//! their JSON codec.
//!
//! The normative specification lives in `docs/SERVICE.md`; this module
//! implements it and the protocol tests pin the two against each
//! other. In short:
//!
//! * every message is one **frame**: a 4-byte little-endian payload
//!   length followed by that many bytes of UTF-8 JSON (one object);
//! * requests carry `id` (echoed verbatim in the response) and `kind`;
//! * responses carry `id` and `kind`; errors are ordinary responses of
//!   kind `error` with a stable machine-readable `code` from
//!   [`ErrorCode`];
//! * a frame whose declared length exceeds the receiver's limit is
//!   answered with `frame-too-large` (id 0 — the payload was never
//!   read) and the connection is closed.

use crate::json::{obj, Json};
use parcc::CompileOptions;

// The framing substrate lives in `warp-wire` (shared with the build
// farm); re-exported here so the daemon's public API is unchanged.
pub use warp_wire::frame::{
    from_hex, read_frame, read_message, to_hex, write_frame, write_message, FrameError,
    MAX_FRAME_DEFAULT,
};

/// Protocol version, carried in `health` responses. Bump on breaking
/// wire changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Stable machine-readable error codes (`docs/SERVICE.md` §Errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame payload was not valid JSON.
    BadJson,
    /// The JSON was valid but not a valid request shape.
    BadRequest,
    /// The request `kind` is not known to this daemon.
    UnknownKind,
    /// The declared frame length exceeds the daemon's limit.
    FrameTooLarge,
    /// Compilation failed; `message` carries the compiler diagnostics.
    CompileFailed,
    /// The daemon is draining and no longer accepts compile requests.
    Draining,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownKind => "unknown-kind",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::CompileFailed => "compile-failed",
            ErrorCode::Draining => "draining",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-json" => ErrorCode::BadJson,
            "bad-request" => ErrorCode::BadRequest,
            "unknown-kind" => ErrorCode::UnknownKind,
            "frame-too-large" => ErrorCode::FrameTooLarge,
            "compile-failed" => ErrorCode::CompileFailed,
            "draining" => ErrorCode::Draining,
            _ => return None,
        })
    }
}

/// The compilation knobs a request may set — the subset of
/// [`CompileOptions`] that is meaningful per request (cell geometry
/// stays a daemon-wide setting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Enable the §5.1 inlining extension.
    pub inline: bool,
    /// Enable if-conversion.
    pub ifconv: bool,
    /// Run the abstract interpreter and its fact-driven rewrites.
    pub absint: bool,
    /// Run the static verifiers at every pass boundary.
    pub verify: bool,
}

impl RequestOptions {
    /// Expands to full [`CompileOptions`] (defaults for everything the
    /// wire does not carry).
    pub fn to_compile_options(self) -> CompileOptions {
        CompileOptions {
            inline: self.inline.then(warp_ir::InlinePolicy::default),
            if_convert: self.ifconv.then(warp_ir::IfConvPolicy::default),
            absint: self.absint,
            verify_each_pass: self.verify,
            ..CompileOptions::default()
        }
    }

    fn to_json(self) -> Json {
        obj(vec![
            ("inline", Json::Bool(self.inline)),
            ("ifconv", Json::Bool(self.ifconv)),
            ("absint", Json::Bool(self.absint)),
            ("verify", Json::Bool(self.verify)),
        ])
    }

    fn from_json(v: Option<&Json>) -> Option<RequestOptions> {
        let Some(v) = v else {
            return Some(RequestOptions::default());
        };
        if !matches!(v, Json::Obj(_)) {
            return None;
        }
        let flag = |key: &str| match v.get(key) {
            None => Some(false),
            Some(Json::Bool(b)) => Some(*b),
            Some(_) => None,
        };
        Some(RequestOptions {
            inline: flag("inline")?,
            ifconv: flag("ifconv")?,
            absint: flag("absint")?,
            verify: flag("verify")?,
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile a module and return its download image.
    Compile {
        /// Request id, echoed in the response.
        id: u64,
        /// W2 module source text.
        module: String,
        /// Per-request compilation knobs.
        options: RequestOptions,
        /// Intra-request parallelism: how many jobs (threads) the
        /// daemon may use for this compilation. `0` — also what a
        /// request without the field decodes to, keeping old clients
        /// wire-compatible — means "daemon default", the machine's
        /// available parallelism. Does not affect cache keys or the
        /// output bytes, only latency.
        jobs: u64,
    },
    /// Return the options fingerprint these knobs produce — the prefix
    /// of every function cache key, letting clients predict cache
    /// affinity without compiling.
    Fingerprint {
        /// Request id.
        id: u64,
        /// The knobs to fingerprint.
        options: RequestOptions,
    },
    /// Return the shared cache's counters.
    CacheStats {
        /// Request id.
        id: u64,
    },
    /// Liveness/status probe.
    Health {
        /// Request id.
        id: u64,
    },
    /// Stop admitting compile requests; in-flight work completes.
    Drain {
        /// Request id.
        id: u64,
    },
    /// Terminate the daemon (implies drain).
    Shutdown {
        /// Request id.
        id: u64,
    },
}

impl Request {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Compile { id, .. }
            | Request::Fingerprint { id, .. }
            | Request::CacheStats { id }
            | Request::Health { id }
            | Request::Drain { id }
            | Request::Shutdown { id } => *id,
        }
    }

    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        let (kind, mut fields) = match self {
            Request::Compile {
                id,
                module,
                options,
                jobs,
            } => (
                "compile",
                vec![
                    ("id", Json::Num(*id as f64)),
                    ("module", Json::Str(module.clone())),
                    ("options", options.to_json()),
                    ("jobs", Json::Num(*jobs as f64)),
                ],
            ),
            Request::Fingerprint { id, options } => (
                "fingerprint",
                vec![
                    ("id", Json::Num(*id as f64)),
                    ("options", options.to_json()),
                ],
            ),
            Request::CacheStats { id } => ("cache_stats", vec![("id", Json::Num(*id as f64))]),
            Request::Health { id } => ("health", vec![("id", Json::Num(*id as f64))]),
            Request::Drain { id } => ("drain", vec![("id", Json::Num(*id as f64))]),
            Request::Shutdown { id } => ("shutdown", vec![("id", Json::Num(*id as f64))]),
        };
        fields.push(("kind", Json::Str(kind.to_string())));
        obj(fields)
    }

    /// Parses a request from its wire JSON. `Err` carries the error
    /// code the daemon must answer with (plus the id, when one could
    /// be recovered).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`] for shape violations,
    /// [`ErrorCode::UnknownKind`] for an unrecognized `kind`.
    pub fn from_json(v: &Json) -> Result<Request, (u64, ErrorCode, String)> {
        let id = v.u64_field("id").unwrap_or(0);
        let bad = |msg: &str| (id, ErrorCode::BadRequest, msg.to_string());
        if !matches!(v, Json::Obj(_)) {
            return Err(bad("request must be a JSON object"));
        }
        if v.u64_field("id").is_none() {
            return Err(bad("missing or non-integer `id`"));
        }
        let kind = v
            .str_field("kind")
            .ok_or_else(|| bad("missing string `kind`"))?;
        let options = || {
            RequestOptions::from_json(v.get("options"))
                .ok_or_else(|| bad("`options` must be an object of booleans"))
        };
        match kind {
            "compile" => {
                let module = v
                    .str_field("module")
                    .ok_or_else(|| bad("compile needs a string `module`"))?;
                // Absent (old clients) decodes as 0 = daemon default.
                let jobs = match v.get("jobs") {
                    None => 0,
                    Some(_) => v
                        .u64_field("jobs")
                        .ok_or_else(|| bad("`jobs` must be a non-negative integer"))?,
                };
                Ok(Request::Compile {
                    id,
                    module: module.to_string(),
                    options: options()?,
                    jobs,
                })
            }
            "fingerprint" => Ok(Request::Fingerprint {
                id,
                options: options()?,
            }),
            "cache_stats" => Ok(Request::CacheStats { id }),
            "health" => Ok(Request::Health { id }),
            "drain" => Ok(Request::Drain { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err((
                id,
                ErrorCode::UnknownKind,
                format!("unknown request kind `{other}`"),
            )),
        }
    }
}

/// Shared-cache counters as carried on the wire (mirrors
/// `warp_cache::CacheStats`, plus the number of resident objects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCacheStats {
    /// Lookups served from the in-memory map.
    pub memory_hits: u64,
    /// Lookups served from the on-disk store.
    pub disk_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Objects stored.
    pub stores: u64,
    /// I/O or decode errors (each degraded to a miss).
    pub errors: u64,
    /// Objects currently resident in memory.
    pub resident: u64,
}

/// What the daemon reports about itself in a `health` response.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthInfo {
    /// `"ok"` or `"draining"`.
    pub status: String,
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub protocol: u32,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Requests handled (all kinds) since start.
    pub requests: u64,
    /// Compile requests currently executing.
    pub active: u64,
    /// Compile requests currently waiting for a worker slot.
    pub queued: u64,
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful compilation.
    Compiled {
        /// Echoed request id.
        id: u64,
        /// The linked module image in download format, hex-encoded —
        /// byte-identical to `warpcc -o`'s output for the same source
        /// and options.
        image_hex: String,
        /// Functions compiled (records in the module).
        functions: u64,
        /// Front-end warnings.
        warnings: u64,
        /// Function-cache hits while serving this request.
        cache_hits: u64,
        /// Function-cache misses (functions actually compiled here).
        cache_misses: u64,
        /// Nanoseconds spent waiting for a worker slot.
        queue_ns: u64,
        /// Nanoseconds spent compiling (phase 1 through link).
        compile_ns: u64,
    },
    /// The options fingerprint for the requested knobs.
    Fingerprint {
        /// Echoed request id.
        id: u64,
        /// `parcc::options_fingerprint` as 16 lowercase hex digits.
        fingerprint: String,
    },
    /// Shared cache counters.
    CacheStats {
        /// Echoed request id.
        id: u64,
        /// The counters.
        stats: WireCacheStats,
    },
    /// Daemon status.
    Health {
        /// Echoed request id.
        id: u64,
        /// The status report.
        info: HealthInfo,
    },
    /// Drain acknowledged: no new compile requests will be admitted.
    Draining {
        /// Echoed request id.
        id: u64,
    },
    /// Shutdown acknowledged; the daemon exits after this frame.
    Bye {
        /// Echoed request id.
        id: u64,
    },
    /// Admission control rejected the request: the queue is full. The
    /// client may retry with backoff.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// Compile requests executing when the request was rejected.
        active: u64,
        /// Compile requests already waiting.
        queued: u64,
        /// The daemon's queue capacity.
        limit: u64,
    },
    /// Any failure. `code` is stable ([`ErrorCode`]); `message` is
    /// human-readable and unstable.
    Error {
        /// Echoed request id (0 when the request was unreadable).
        id: u64,
        /// Stable machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Compiled { id, .. }
            | Response::Fingerprint { id, .. }
            | Response::CacheStats { id, .. }
            | Response::Health { id, .. }
            | Response::Draining { id }
            | Response::Bye { id }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }

    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        let num = |v: u64| Json::Num(v as f64);
        match self {
            Response::Compiled {
                id,
                image_hex,
                functions,
                warnings,
                cache_hits,
                cache_misses,
                queue_ns,
                compile_ns,
            } => obj(vec![
                ("id", num(*id)),
                ("kind", Json::Str("compiled".into())),
                ("image_hex", Json::Str(image_hex.clone())),
                ("functions", num(*functions)),
                ("warnings", num(*warnings)),
                ("cache_hits", num(*cache_hits)),
                ("cache_misses", num(*cache_misses)),
                ("queue_ns", num(*queue_ns)),
                ("compile_ns", num(*compile_ns)),
            ]),
            Response::Fingerprint { id, fingerprint } => obj(vec![
                ("id", num(*id)),
                ("kind", Json::Str("fingerprint".into())),
                ("fingerprint", Json::Str(fingerprint.clone())),
            ]),
            Response::CacheStats { id, stats } => obj(vec![
                ("id", num(*id)),
                ("kind", Json::Str("cache_stats".into())),
                ("memory_hits", num(stats.memory_hits)),
                ("disk_hits", num(stats.disk_hits)),
                ("misses", num(stats.misses)),
                ("stores", num(stats.stores)),
                ("errors", num(stats.errors)),
                ("resident", num(stats.resident)),
            ]),
            Response::Health { id, info } => obj(vec![
                ("id", num(*id)),
                ("kind", Json::Str("health".into())),
                ("status", Json::Str(info.status.clone())),
                ("protocol", num(u64::from(info.protocol))),
                ("uptime_ms", num(info.uptime_ms)),
                ("requests", num(info.requests)),
                ("active", num(info.active)),
                ("queued", num(info.queued)),
            ]),
            Response::Draining { id } => obj(vec![
                ("id", num(*id)),
                ("kind", Json::Str("draining".into())),
            ]),
            Response::Bye { id } => obj(vec![("id", num(*id)), ("kind", Json::Str("bye".into()))]),
            Response::Overloaded {
                id,
                active,
                queued,
                limit,
            } => obj(vec![
                ("id", num(*id)),
                ("kind", Json::Str("overloaded".into())),
                ("active", num(*active)),
                ("queued", num(*queued)),
                ("limit", num(*limit)),
            ]),
            Response::Error { id, code, message } => obj(vec![
                ("id", num(*id)),
                ("kind", Json::Str("error".into())),
                ("code", Json::Str(code.as_str().into())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    /// Parses a response from its wire JSON (the client side).
    ///
    /// # Errors
    ///
    /// A human-readable description of the shape violation.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let id = v.u64_field("id").ok_or("response missing `id`")?;
        let kind = v.str_field("kind").ok_or("response missing `kind`")?;
        let field = |key: &str| {
            v.u64_field(key)
                .ok_or_else(|| format!("`{kind}` response missing `{key}`"))
        };
        let strf = |key: &str| {
            v.str_field(key)
                .map(str::to_string)
                .ok_or_else(|| format!("`{kind}` response missing `{key}`"))
        };
        Ok(match kind {
            "compiled" => Response::Compiled {
                id,
                image_hex: strf("image_hex")?,
                functions: field("functions")?,
                warnings: field("warnings")?,
                cache_hits: field("cache_hits")?,
                cache_misses: field("cache_misses")?,
                queue_ns: field("queue_ns")?,
                compile_ns: field("compile_ns")?,
            },
            "fingerprint" => Response::Fingerprint {
                id,
                fingerprint: strf("fingerprint")?,
            },
            "cache_stats" => Response::CacheStats {
                id,
                stats: WireCacheStats {
                    memory_hits: field("memory_hits")?,
                    disk_hits: field("disk_hits")?,
                    misses: field("misses")?,
                    stores: field("stores")?,
                    errors: field("errors")?,
                    resident: field("resident")?,
                },
            },
            "health" => Response::Health {
                id,
                info: HealthInfo {
                    status: strf("status")?,
                    protocol: u32::try_from(field("protocol")?)
                        .map_err(|_| "protocol out of range".to_string())?,
                    uptime_ms: field("uptime_ms")?,
                    requests: field("requests")?,
                    active: field("active")?,
                    queued: field("queued")?,
                },
            },
            "draining" => Response::Draining { id },
            "bye" => Response::Bye { id },
            "overloaded" => Response::Overloaded {
                id,
                active: field("active")?,
                queued: field("queued")?,
                limit: field("limit")?,
            },
            "error" => {
                let code = strf("code")?;
                Response::Error {
                    id,
                    code: ErrorCode::parse(&code)
                        .ok_or_else(|| format!("unknown error code `{code}`"))?,
                    message: strf("message")?,
                }
            }
            other => return Err(format!("unknown response kind `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Compile {
                id: 1,
                module: "module m;\nend;".into(),
                options: RequestOptions {
                    inline: true,
                    ..RequestOptions::default()
                },
                jobs: 0,
            },
            Request::Compile {
                id: 7,
                module: "module m;\nend;".into(),
                options: RequestOptions::default(),
                jobs: 8,
            },
            Request::Fingerprint {
                id: 2,
                options: RequestOptions::default(),
            },
            Request::CacheStats { id: 3 },
            Request::Health { id: 4 },
            Request::Drain { id: 5 },
            Request::Shutdown { id: 6 },
        ];
        for req in reqs {
            let json = req.to_json();
            let back =
                Request::from_json(&crate::json::parse(&json.to_string()).unwrap()).expect("parse");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Compiled {
                id: 1,
                image_hex: "a0b1".into(),
                functions: 4,
                warnings: 0,
                cache_hits: 3,
                cache_misses: 1,
                queue_ns: 1_000,
                compile_ns: 2_000_000,
            },
            Response::Fingerprint {
                id: 2,
                fingerprint: "00ff00ff00ff00ff".into(),
            },
            Response::CacheStats {
                id: 3,
                stats: WireCacheStats {
                    memory_hits: 9,
                    misses: 1,
                    ..Default::default()
                },
            },
            Response::Health {
                id: 4,
                info: HealthInfo {
                    status: "ok".into(),
                    protocol: PROTOCOL_VERSION,
                    uptime_ms: 12,
                    requests: 34,
                    active: 1,
                    queued: 0,
                },
            },
            Response::Draining { id: 5 },
            Response::Bye { id: 6 },
            Response::Overloaded {
                id: 7,
                active: 2,
                queued: 8,
                limit: 8,
            },
            Response::Error {
                id: 8,
                code: ErrorCode::CompileFailed,
                message: "boom".into(),
            },
        ];
        for resp in resps {
            let json = resp.to_json();
            let back = Response::from_json(&crate::json::parse(&json.to_string()).unwrap())
                .expect("parse");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn compile_without_jobs_field_decodes_as_daemon_default() {
        // Old clients never send `jobs`; the daemon must keep
        // accepting them, decoding the absence as 0 = "default".
        let v = crate::json::parse(
            r#"{"id": 9, "kind": "compile", "module": "module m;\nend;", "options": {}}"#,
        )
        .unwrap();
        match Request::from_json(&v).expect("parse") {
            Request::Compile { jobs, .. } => assert_eq!(jobs, 0),
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn compile_with_bad_jobs_is_a_bad_request() {
        for bad in [r#""four""#, "-2", "1.5", "true"] {
            let raw = format!(
                r#"{{"id": 9, "kind": "compile", "module": "m", "options": {{}}, "jobs": {bad}}}"#
            );
            let v = crate::json::parse(&raw).unwrap();
            let (id, code, msg) = Request::from_json(&v).unwrap_err();
            assert_eq!((id, code), (9, ErrorCode::BadRequest), "jobs: {bad}");
            assert!(msg.contains("jobs"), "message should name the field: {msg}");
        }
    }

    #[test]
    fn unknown_kind_is_distinguished_from_bad_shape() {
        let v = crate::json::parse(r#"{"id": 3, "kind": "florp"}"#).unwrap();
        let (id, code, _) = Request::from_json(&v).unwrap_err();
        assert_eq!((id, code), (3, ErrorCode::UnknownKind));

        let v = crate::json::parse(r#"{"id": 4, "kind": "compile"}"#).unwrap();
        let (id, code, _) = Request::from_json(&v).unwrap_err();
        assert_eq!((id, code), (4, ErrorCode::BadRequest));
    }
}
