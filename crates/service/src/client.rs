//! A blocking `warpd` client: one connection, synchronous
//! request/response. `warpctl` and the load generator are built on
//! this.

use crate::daemon::Endpoint;
use crate::json::Json;
use crate::proto::{read_message, write_message, Request, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, frame I/O, daemon gone).
    Io(io::Error),
    /// The daemon sent something that is not a valid response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One blocking connection to a `warpd` daemon.
pub struct Client {
    stream: Stream,
    max_frame: usize,
    next_id: u64,
}

impl Client {
    /// Connects to `endpoint`, retrying for up to `wait` (covers the
    /// startup race of a daemon launched moments earlier).
    ///
    /// # Errors
    ///
    /// The last connect error once `wait` is exhausted.
    pub fn connect(endpoint: &Endpoint, wait: Duration) -> Result<Client, ClientError> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            let attempt = match endpoint {
                Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
                Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
            };
            match attempt {
                Ok(stream) => {
                    return Ok(Client {
                        stream,
                        max_frame: crate::proto::MAX_FRAME_DEFAULT,
                        next_id: 1,
                    })
                }
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(ClientError::Io(e));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Sends `req` and waits for the matching response (ids are
    /// checked: a mismatched id is a protocol error).
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed/mismatched response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_message(&mut self.stream, &req.to_json())?;
        let json = read_message(&mut self.stream, self.max_frame, || true)
            .map_err(|e| match e {
                crate::proto::FrameError::Io(io) => ClientError::Io(io),
                other => ClientError::Protocol(other.to_string()),
            })?
            .map_err(ClientError::Protocol)?;
        let resp = Response::from_json(&json).map_err(ClientError::Protocol)?;
        // Error frames for unreadable requests carry id 0.
        if resp.id() != req.id() && resp.id() != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {}",
                resp.id(),
                req.id()
            )));
        }
        Ok(resp)
    }

    /// Sends a raw JSON frame (protocol tests use this to exercise
    /// malformed requests) and reads one response frame back.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn call_raw(&mut self, payload: &Json) -> Result<Response, ClientError> {
        write_message(&mut self.stream, payload)?;
        let json = read_message(&mut self.stream, self.max_frame, || true)
            .map_err(|e| match e {
                crate::proto::FrameError::Io(io) => ClientError::Io(io),
                other => ClientError::Protocol(other.to_string()),
            })?
            .map_err(ClientError::Protocol)?;
        Response::from_json(&json).map_err(ClientError::Protocol)
    }

    /// Writes raw bytes as a frame without awaiting a reply (protocol
    /// tests build deliberately broken frames on top of this).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one response frame (pair with [`Client::send_bytes`]).
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let json = read_message(&mut self.stream, self.max_frame, || true)
            .map_err(|e| match e {
                crate::proto::FrameError::Io(io) => ClientError::Io(io),
                other => ClientError::Protocol(other.to_string()),
            })?
            .map_err(ClientError::Protocol)?;
        Response::from_json(&json).map_err(ClientError::Protocol)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Compiles `module` with `options`.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures (a compile *failure* is an
    /// ordinary [`Response::Error`], not a `ClientError`).
    pub fn compile(
        &mut self,
        module: &str,
        options: crate::proto::RequestOptions,
    ) -> Result<Response, ClientError> {
        self.compile_jobs(module, options, 0)
    }

    /// Compiles `module` with `options`, asking the daemon to use
    /// `jobs` threads for this request (`0` = daemon default, the
    /// machine's available parallelism).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures (a compile *failure* is an
    /// ordinary [`Response::Error`], not a `ClientError`).
    pub fn compile_jobs(
        &mut self,
        module: &str,
        options: crate::proto::RequestOptions,
        jobs: u64,
    ) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Compile {
            id,
            module: module.to_string(),
            options,
            jobs,
        })
    }

    /// Asks for the options fingerprint.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn fingerprint(
        &mut self,
        options: crate::proto::RequestOptions,
    ) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Fingerprint { id, options })
    }

    /// Fetches the shared cache counters.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn cache_stats(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::CacheStats { id })
    }

    /// Probes daemon health.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn health(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Health { id })
    }

    /// Asks the daemon to stop admitting compile requests.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn drain(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Drain { id })
    }

    /// Asks the daemon to terminate.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Shutdown { id })
    }
}
