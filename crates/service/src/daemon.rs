//! The `warpd` daemon: a long-lived multi-tenant compilation service.
//!
//! One daemon owns one persistent function cache (`warp-cache`) and
//! serves any number of concurrent clients over a Unix socket (or TCP
//! behind a flag). Three mechanisms make it multi-tenant rather than
//! merely concurrent:
//!
//! * **shared warm cache** — every request probes and feeds the same
//!   two-tier [`FnCache`], so one tenant's build warms the next
//!   tenant's;
//! * **in-flight dedup** — identical function keys requested
//!   concurrently compile **once** ([`warp_cache::InFlight`] leases);
//!   the followers block briefly and then take the cache hit;
//! * **admission control** — at most `workers` compiles execute at a
//!   time and at most `queue_depth` wait; beyond that the daemon
//!   answers `overloaded` immediately instead of queueing unboundedly
//!   ([`Response::Overloaded`] is explicit backpressure, not an
//!   error).
//!
//! Every request lands on its own trace track with `service`-category
//! spans (`queue`, `request`) so per-request latency decomposes into
//! queue wait, compile time, and — via the nested `cache` spans — hit
//! lookups vs real compiles. See `docs/TRACING.md`.

use crate::proto::{
    read_message, write_message, ErrorCode, FrameError, HealthInfo, Request, Response,
    WireCacheStats, MAX_FRAME_DEFAULT, PROTOCOL_VERSION,
};
use parcc::{compile_module_shared_jobs_traced, options_fingerprint, resolve_jobs, FnCache};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use warp_cache::InFlight;
use warp_obs::{ClockDomain, Trace};

/// Upper bound on per-request `jobs`: more threads than this buys
/// nothing and would let one request intern an unbounded number of
/// worker tracks in the shared trace.
pub const MAX_JOBS_PER_REQUEST: usize = 256;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path (the default transport).
    Unix(PathBuf),
    /// A TCP address such as `127.0.0.1:7077` (opt-in; port `0` asks
    /// the OS for a free port — read the resolved one back from
    /// [`Warpd::endpoint`]).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Daemon configuration. Build one with [`DaemonConfig::new`] and
/// adjust fields as needed.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listening endpoint.
    pub endpoint: Endpoint,
    /// Maximum compile requests executing concurrently. Defaults to
    /// the machine's available parallelism.
    pub workers: usize,
    /// Maximum compile requests waiting for a worker slot before the
    /// daemon answers `overloaded`. `0` disables queueing entirely.
    pub queue_depth: usize,
    /// Directory for the persistent cache tier; `None` keeps the
    /// cache purely in memory.
    pub cache_dir: Option<PathBuf>,
    /// Compile on a build farm of this many real `warpd-worker` OS
    /// processes ([`parcc::farm`]) instead of in-process threads.
    /// The farm shares `cache_dir` as its content-addressed object
    /// store when one is set.
    pub farm_workers: Option<usize>,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Record `service`/`driver`/`worker`/`cache` spans for every
    /// request (exportable via [`Warpd::trace`]).
    pub trace: bool,
}

impl DaemonConfig {
    /// A config with conservative defaults listening on `endpoint`.
    pub fn new(endpoint: Endpoint) -> DaemonConfig {
        DaemonConfig {
            endpoint,
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            queue_depth: 64,
            cache_dir: None,
            farm_workers: None,
            max_frame: MAX_FRAME_DEFAULT,
            trace: false,
        }
    }
}

/// Counting semaphore with a bounded wait queue — the admission
/// controller. `try_enter` never blocks past the queue bound: when
/// `queue_depth` requests are already waiting it fails fast with the
/// numbers the `overloaded` response carries.
struct Admission {
    workers: u64,
    queue_depth: u64,
    /// `(running, waiting)`.
    state: Mutex<(u64, u64)>,
    freed: Condvar,
}

/// An admission slot; dropping it frees the slot and wakes a waiter.
struct Permit<'a>(&'a Admission);

impl Admission {
    fn new(workers: usize, queue_depth: usize) -> Admission {
        Admission {
            workers: workers.max(1) as u64,
            queue_depth: queue_depth as u64,
            state: Mutex::new((0, 0)),
            freed: Condvar::new(),
        }
    }

    /// Acquires a worker slot, waiting in the bounded queue if all
    /// slots are busy. `Err` carries `(active, queued, limit)` for the
    /// `overloaded` response.
    fn try_enter(&self) -> Result<Permit<'_>, (u64, u64, u64)> {
        let mut st = self.state.lock().expect("admission lock");
        if st.0 >= self.workers {
            if st.1 >= self.queue_depth {
                return Err((st.0, st.1, self.queue_depth));
            }
            st.1 += 1;
            while st.0 >= self.workers {
                st = self.freed.wait(st).expect("admission lock");
            }
            st.1 -= 1;
        }
        st.0 += 1;
        Ok(Permit(self))
    }

    fn counts(&self) -> (u64, u64) {
        let st = self.state.lock().expect("admission lock");
        (st.0, st.1)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("admission lock");
        st.0 -= 1;
        self.0.freed.notify_one();
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    cache: FnCache,
    /// `Some(n)` routes compiles through an n-process build farm.
    farm_workers: Option<usize>,
    /// The farm's shared object store (the daemon's `cache_dir`).
    farm_cache_dir: Option<PathBuf>,
    inflight: InFlight,
    admission: Admission,
    trace: Trace,
    /// `false` once draining: compile requests are refused.
    accepting: AtomicBool,
    /// `true` once shutdown was requested: everything winds down.
    shutdown: AtomicBool,
    /// Total requests handled, all kinds.
    requests: AtomicU64,
    /// Open connections (the accept loop and `join` watch this).
    conns: AtomicU64,
    started: Instant,
    max_frame: usize,
}

impl Shared {
    fn handle(&self, req: Request, conn_id: u64) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Compile {
                id,
                module,
                options,
                jobs,
            } => self.compile(id, &module, options, jobs, conn_id),
            Request::Fingerprint { id, options } => Response::Fingerprint {
                id,
                fingerprint: format!(
                    "{:016x}",
                    options_fingerprint(&options.to_compile_options())
                ),
            },
            Request::CacheStats { id } => {
                let s = self.cache.stats();
                Response::CacheStats {
                    id,
                    stats: WireCacheStats {
                        memory_hits: s.memory_hits,
                        disk_hits: s.disk_hits,
                        misses: s.misses,
                        stores: s.stores,
                        errors: s.errors,
                        resident: self.cache.len() as u64,
                    },
                }
            }
            Request::Health { id } => {
                let (active, queued) = self.admission.counts();
                Response::Health {
                    id,
                    info: HealthInfo {
                        status: if self.accepting.load(Ordering::Relaxed) {
                            "ok".to_string()
                        } else {
                            "draining".to_string()
                        },
                        protocol: PROTOCOL_VERSION,
                        uptime_ms: self.started.elapsed().as_millis() as u64,
                        requests: self.requests.load(Ordering::Relaxed),
                        active,
                        queued,
                    },
                }
            }
            Request::Drain { id } => {
                self.accepting.store(false, Ordering::Relaxed);
                Response::Draining { id }
            }
            Request::Shutdown { id } => {
                self.accepting.store(false, Ordering::Relaxed);
                self.shutdown.store(true, Ordering::Relaxed);
                Response::Bye { id }
            }
        }
    }

    fn compile(
        &self,
        id: u64,
        module: &str,
        options: crate::proto::RequestOptions,
        jobs: u64,
        conn_id: u64,
    ) -> Response {
        if !self.accepting.load(Ordering::Relaxed) {
            return Response::Error {
                id,
                code: ErrorCode::Draining,
                message: "daemon is draining; no new compiles".to_string(),
            };
        }
        let arrive_ns = self.trace.now_ns();
        let enq = Instant::now();
        let permit = match self.admission.try_enter() {
            Ok(p) => p,
            Err((active, queued, limit)) => {
                return Response::Overloaded {
                    id,
                    active,
                    queued,
                    limit,
                }
            }
        };
        let queue_ns = enq.elapsed().as_nanos() as u64;
        let track = self.trace.track(&format!("conn {conn_id} req {id}"));
        if queue_ns > 0 {
            self.trace
                .record_span("service", "queue", track, arrive_ns, queue_ns, vec![]);
        }
        let before = self.cache.stats();
        let compile_start = Instant::now();
        let opts = options.to_compile_options();
        // `0` means "daemon default"; the cap keeps a hostile request
        // from interning an unbounded number of worker tracks.
        let jobs = resolve_jobs(jobs as usize).min(MAX_JOBS_PER_REQUEST);
        let result = match self.farm_workers {
            // Farm mode: real worker processes over sockets, objects
            // exchanged through the shared on-disk store. The farm
            // coordinator owns scheduling and retries; the daemon
            // keeps admission control and tracing.
            Some(fw) => {
                let mut cfg = parcc::FarmConfig::new(fw);
                cfg.cache_dir = self.farm_cache_dir.clone();
                parcc::compile_farm_traced(module, &opts, &cfg, &self.trace).map(|(r, _)| r)
            }
            None => compile_module_shared_jobs_traced(
                module,
                &opts,
                jobs,
                &self.cache,
                &self.inflight,
                &self.trace,
                track,
            ),
        };
        let compile_ns = compile_start.elapsed().as_nanos() as u64;
        let after = self.cache.stats();
        drop(permit);
        // Deltas of the shared counters: exact when this request runs
        // alone, approximate under concurrent tenants (documented in
        // SERVICE.md).
        let cache_hits = (after.memory_hits + after.disk_hits)
            .saturating_sub(before.memory_hits + before.disk_hits);
        let cache_misses = after.misses.saturating_sub(before.misses);
        self.trace.record_span(
            "service",
            format!("request {id}"),
            track,
            arrive_ns,
            queue_ns + compile_ns,
            vec![
                ("queue_ns", queue_ns as f64),
                ("compile_ns", compile_ns as f64),
                ("cache_hits", cache_hits as f64),
                ("cache_misses", cache_misses as f64),
            ],
        );
        match result {
            Ok(r) => match warp_target::download::encode(&r.module_image) {
                Ok(bytes) => Response::Compiled {
                    id,
                    image_hex: crate::proto::to_hex(&bytes),
                    functions: r.records.len() as u64,
                    warnings: r.warnings as u64,
                    cache_hits,
                    cache_misses,
                    queue_ns,
                    compile_ns,
                },
                Err(e) => Response::Error {
                    id,
                    code: ErrorCode::CompileFailed,
                    message: format!("image encode failed: {e}"),
                },
            },
            Err(e) => Response::Error {
                id,
                code: ErrorCode::CompileFailed,
                message: e.to_string(),
            },
        }
    }
}

/// A live connection of either transport.
enum Conn {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed daemon would make
                // bind fail; remove it (connect() to a dead socket
                // fails, so this cannot steal a live daemon's clients
                // by accident in normal operation).
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    fn endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Warpd::stop`] or send a `shutdown` request, then [`Warpd::join`].
pub struct Warpd {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Warpd {
    /// Binds the endpoint and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind/cache-directory I/O failures.
    pub fn start(config: DaemonConfig) -> io::Result<Warpd> {
        let cache = match &config.cache_dir {
            Some(dir) => FnCache::with_dir(dir)?,
            None => FnCache::in_memory(),
        };
        let shared = Arc::new(Shared {
            cache,
            farm_workers: config.farm_workers,
            farm_cache_dir: config.cache_dir.clone(),
            inflight: InFlight::new(),
            admission: Admission::new(config.workers, config.queue_depth),
            trace: if config.trace {
                Trace::new(ClockDomain::Monotonic)
            } else {
                Trace::disabled()
            },
            accepting: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            started: Instant::now(),
            max_frame: config.max_frame,
        });
        let listener = Listener::bind(&config.endpoint)?;
        let endpoint = listener.endpoint()?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("warpd-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Warpd {
            shared,
            endpoint,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound endpoint, with OS-assigned TCP ports resolved.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The daemon's trace (disabled unless [`DaemonConfig::trace`] was
    /// set). Snapshot it after [`Warpd::join`] for a complete record.
    pub fn trace(&self) -> &Trace {
        &self.shared.trace
    }

    /// Whether shutdown has been requested yet.
    pub fn is_running(&self) -> bool {
        !self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown from the hosting process (equivalent to a
    /// `shutdown` request on the wire).
    pub fn stop(&self) {
        self.shared.accepting.store(false, Ordering::Relaxed);
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until shutdown has been requested (over the wire or via
    /// [`Warpd::stop`]) and every connection has wound down.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        while self.shared.conns.load(Ordering::Relaxed) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    let mut conn_id = 0u64;
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(conn) => {
                conn_id += 1;
                let id = conn_id;
                let handler_shared = Arc::clone(&shared);
                shared.conns.fetch_add(1, Ordering::Relaxed);
                let spawned = std::thread::Builder::new()
                    .name(format!("warpd-conn-{id}"))
                    .spawn(move || {
                        handle_conn(&handler_shared, conn, id);
                        handler_shared.conns.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    shared.conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping the listener unlinks the Unix socket file.
}

fn handle_conn(shared: &Shared, mut conn: Conn, conn_id: u64) {
    // Accepted sockets can inherit the listener's non-blocking mode;
    // switch to blocking reads with a short timeout so the loop polls
    // the shutdown flag between frames.
    if let Conn::Unix(s) = &conn {
        let _ = s.set_nonblocking(false);
    }
    if let Conn::Tcp(s) = &conn {
        let _ = s.set_nonblocking(false);
    }
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let keep_going = || !shared.shutdown.load(Ordering::Relaxed);
    loop {
        let msg = match read_message(&mut conn, shared.max_frame, keep_going) {
            Ok(m) => m,
            Err(FrameError::TooLarge { declared, limit }) => {
                // The payload is still unread in the pipe: answer once
                // (id 0 — the request was never parsed) and close.
                let resp = Response::Error {
                    id: 0,
                    code: ErrorCode::FrameTooLarge,
                    message: format!("frame of {declared} bytes exceeds the {limit}-byte limit"),
                };
                let _ = write_message(&mut conn, &resp.to_json());
                return;
            }
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
        };
        let resp = match msg {
            Err(detail) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    id: 0,
                    code: ErrorCode::BadJson,
                    message: detail,
                }
            }
            Ok(json) => match Request::from_json(&json) {
                Err((id, code, message)) => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    Response::Error { id, code, message }
                }
                Ok(req) => shared.handle(req, conn_id),
            },
        };
        let bye = matches!(resp, Response::Bye { .. });
        if write_message(&mut conn, &resp.to_json()).is_err() || bye {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_bounds_running_and_waiting() {
        let adm = Arc::new(Admission::new(1, 1));
        let p1 = adm.try_enter().expect("first slot");
        assert_eq!(adm.counts(), (1, 0));

        // One waiter fits in the queue...
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || {
            let _p = adm2.try_enter().expect("queued slot");
        });
        while adm.counts().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // ...and the next is refused with the counts.
        assert_eq!(adm.try_enter().err(), Some((1, 1, 1)));
        drop(p1);
        waiter.join().unwrap();
        assert_eq!(adm.counts(), (0, 0));
    }

    #[test]
    fn endpoint_display_is_schemed() {
        assert_eq!(
            Endpoint::Unix(PathBuf::from("/tmp/w.sock")).to_string(),
            "unix:/tmp/w.sock"
        );
        assert_eq!(
            Endpoint::Tcp("127.0.0.1:1".to_string()).to_string(),
            "tcp:127.0.0.1:1"
        );
    }
}
