//! `warpd` — the Warp compilation daemon.
//!
//! ```text
//! warpd [OPTIONS]
//!
//!   --socket PATH       listen on a Unix socket at PATH
//!                       (default: /tmp/warpd.sock)
//!   --tcp ADDR          listen on TCP instead (e.g. 127.0.0.1:7077;
//!                       port 0 picks a free port, printed on start)
//!   --workers N         concurrent compiles (default: CPU count)
//!   --queue N           admission queue depth before `overloaded`
//!                       (default: 64)
//!   --cache-dir DIR     persistent cache tier (default: in-memory)
//!   --farm N            compile on a build farm of N warpd-worker
//!                       OS processes instead of in-process threads;
//!                       the farm shares --cache-dir as its object
//!                       store (see docs/FARM.md)
//!   --max-frame BYTES   frame size limit (default: 16777216)
//!   --trace FILE        write a Chrome trace_event JSON file with
//!                       per-request `service` spans on shutdown
//! ```
//!
//! The daemon prints `warpd listening on <endpoint>` once ready and
//! exits when a client sends `shutdown` (see `docs/SERVICE.md`).

use std::path::PathBuf;
use std::process::ExitCode;
use warp_service::daemon::{DaemonConfig, Endpoint, Warpd};

struct Args {
    endpoint: Endpoint,
    workers: Option<usize>,
    queue: Option<usize>,
    cache_dir: Option<PathBuf>,
    farm: Option<usize>,
    max_frame: Option<usize>,
    trace: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: warpd [--socket PATH | --tcp ADDR] [--workers N] [--queue N] \
         [--cache-dir DIR] [--farm N] [--max-frame BYTES] [--trace FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        endpoint: Endpoint::Unix(PathBuf::from("/tmp/warpd.sock")),
        workers: None,
        queue: None,
        cache_dir: None,
        farm: None,
        max_frame: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("warpd: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => args.endpoint = Endpoint::Unix(PathBuf::from(value("--socket"))),
            "--tcp" => args.endpoint = Endpoint::Tcp(value("--tcp")),
            "--workers" => {
                args.workers = Some(value("--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--queue" => args.queue = Some(value("--queue").parse().unwrap_or_else(|_| usage())),
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--farm" => args.farm = Some(value("--farm").parse().unwrap_or_else(|_| usage())),
            "--max-frame" => {
                args.max_frame = Some(value("--max-frame").parse().unwrap_or_else(|_| usage()))
            }
            "--trace" => args.trace = Some(PathBuf::from(value("--trace"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("warpd: unknown argument `{other}`");
                usage()
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut config = DaemonConfig::new(args.endpoint);
    if let Some(w) = args.workers {
        config.workers = w;
    }
    if let Some(q) = args.queue {
        config.queue_depth = q;
    }
    if let Some(m) = args.max_frame {
        config.max_frame = m;
    }
    config.cache_dir = args.cache_dir;
    config.farm_workers = args.farm;
    config.trace = args.trace.is_some();

    let daemon = match Warpd::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("warpd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("warpd listening on {}", daemon.endpoint());

    if let Some(trace_path) = args.trace {
        let trace = daemon.trace().clone();
        daemon.join();
        let json = warp_obs::chrome::to_chrome_json(&trace.snapshot());
        if let Err(e) = std::fs::write(&trace_path, json) {
            eprintln!("warpd: failed to write trace {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("warpd: trace written to {}", trace_path.display());
    } else {
        daemon.join();
    }
    ExitCode::SUCCESS
}
