//! `warpctl` — client for the `warpd` compilation daemon.
//!
//! ```text
//! warpctl [--socket PATH | --tcp ADDR] <COMMAND>
//!
//!   compile <FILE | -> [-o FILE] [--jobs N] [--inline] [--ifconv] [--absint]
//!           [--verify]
//!                 compile a W2 module on the daemon; with -o, write
//!                 the binary download image (byte-identical to
//!                 `warpcc -o` for the same source and options);
//!                 --jobs asks the daemon to use N threads for this
//!                 request (0 or absent = daemon default)
//!   fingerprint [--inline] [--ifconv] [--absint] [--verify]
//!                 print the options fingerprint (cache-key prefix)
//!   health        print daemon status
//!   stats         print shared-cache counters
//!   drain         stop admission of new compiles
//!   shutdown      terminate the daemon
//!   bench [--clients N] [--requests N] [--tenants N] [--functions N]
//!         [--lines N] [--verify-identical] [--out FILE]
//!                 replay a deterministic cold/warm/edit request mix
//!                 and report p50/p99 latency + throughput; with
//!                 --out, write BENCH_service.json
//!                 (schema warp-bench-service/1)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use warp_service::bench::{run as run_bench, BenchConfig};
use warp_service::daemon::Endpoint;
use warp_service::proto::{from_hex, RequestOptions};
use warp_service::{Client, Response};

fn usage() -> ! {
    eprintln!(
        "usage: warpctl [--socket PATH | --tcp ADDR] \
         <compile|fingerprint|health|stats|drain|shutdown|bench> [ARGS]"
    );
    std::process::exit(2);
}

fn parse_options(rest: &mut Vec<String>) -> RequestOptions {
    let mut opts = RequestOptions::default();
    rest.retain(|a| match a.as_str() {
        "--inline" => {
            opts.inline = true;
            false
        }
        "--ifconv" => {
            opts.ifconv = true;
            false
        }
        "--absint" => {
            opts.absint = true;
            false
        }
        "--verify" => {
            opts.verify = true;
            false
        }
        _ => true,
    });
    opts
}

/// Pulls `--flag VALUE` out of `rest`, returning the value.
fn take_value(rest: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = rest.iter().position(|a| a == flag)?;
    if i + 1 >= rest.len() {
        eprintln!("warpctl: {flag} needs a value");
        usage()
    }
    let v = rest.remove(i + 1);
    rest.remove(i);
    Some(v)
}

fn connect(endpoint: &Endpoint) -> Client {
    match Client::connect(endpoint, Duration::from_secs(5)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("warpctl: cannot reach warpd at {endpoint}: {e}");
            std::process::exit(1);
        }
    }
}

fn read_module(path: &str) -> String {
    if path == "-" {
        let mut s = String::new();
        use std::io::Read;
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("warpctl: failed to read stdin");
            std::process::exit(1);
        }
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("warpctl: cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn main() -> ExitCode {
    let mut rest: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoint = Endpoint::Unix(PathBuf::from("/tmp/warpd.sock"));
    if let Some(p) = take_value(&mut rest, "--socket") {
        endpoint = Endpoint::Unix(PathBuf::from(p));
    }
    if let Some(a) = take_value(&mut rest, "--tcp") {
        endpoint = Endpoint::Tcp(a);
    }
    if rest.is_empty() {
        usage()
    }
    let command = rest.remove(0);
    match command.as_str() {
        "compile" => {
            let out = take_value(&mut rest, "-o").map(PathBuf::from);
            let jobs: u64 = take_value(&mut rest, "--jobs").map_or(0, |v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("warpctl: bad job count `{v}`");
                    usage()
                })
            });
            let opts = parse_options(&mut rest);
            let Some(path) = rest.first() else { usage() };
            let module = read_module(path);
            let mut client = connect(&endpoint);
            match client.compile_jobs(&module, opts, jobs) {
                Ok(Response::Compiled {
                    image_hex,
                    functions,
                    warnings,
                    cache_hits,
                    cache_misses,
                    queue_ns,
                    compile_ns,
                    ..
                }) => {
                    println!(
                        "compiled: {functions} function(s), {warnings} warning(s); \
                         cache {cache_hits} hit(s) / {cache_misses} miss(es); \
                         queue {:.3} ms, compile {:.3} ms",
                        queue_ns as f64 / 1e6,
                        compile_ns as f64 / 1e6
                    );
                    if let Some(out) = out {
                        let bytes = match from_hex(&image_hex) {
                            Ok(b) => b,
                            Err(e) => {
                                eprintln!("warpctl: bad image from daemon: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        if let Err(e) = std::fs::write(&out, bytes) {
                            eprintln!("warpctl: cannot write {}: {e}", out.display());
                            return ExitCode::FAILURE;
                        }
                        println!("wrote {}", out.display());
                    }
                    ExitCode::SUCCESS
                }
                Ok(other) => {
                    eprintln!("warpctl: {other:?}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("warpctl: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "fingerprint" => {
            let opts = parse_options(&mut rest);
            let mut client = connect(&endpoint);
            match client.fingerprint(opts) {
                Ok(Response::Fingerprint { fingerprint, .. }) => {
                    println!("{fingerprint}");
                    ExitCode::SUCCESS
                }
                other => {
                    eprintln!("warpctl: {other:?}");
                    ExitCode::FAILURE
                }
            }
        }
        "health" => {
            let mut client = connect(&endpoint);
            match client.health() {
                Ok(Response::Health { info, .. }) => {
                    println!(
                        "status {} protocol {} uptime_ms {} requests {} active {} queued {}",
                        info.status,
                        info.protocol,
                        info.uptime_ms,
                        info.requests,
                        info.active,
                        info.queued
                    );
                    ExitCode::SUCCESS
                }
                other => {
                    eprintln!("warpctl: {other:?}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let mut client = connect(&endpoint);
            match client.cache_stats() {
                Ok(Response::CacheStats { stats, .. }) => {
                    println!(
                        "memory_hits {} disk_hits {} misses {} stores {} errors {} resident {}",
                        stats.memory_hits,
                        stats.disk_hits,
                        stats.misses,
                        stats.stores,
                        stats.errors,
                        stats.resident
                    );
                    ExitCode::SUCCESS
                }
                other => {
                    eprintln!("warpctl: {other:?}");
                    ExitCode::FAILURE
                }
            }
        }
        "drain" => {
            let mut client = connect(&endpoint);
            match client.drain() {
                Ok(Response::Draining { .. }) => {
                    println!("draining");
                    ExitCode::SUCCESS
                }
                other => {
                    eprintln!("warpctl: {other:?}");
                    ExitCode::FAILURE
                }
            }
        }
        "shutdown" => {
            let mut client = connect(&endpoint);
            match client.shutdown() {
                Ok(Response::Bye { .. }) => {
                    println!("bye");
                    ExitCode::SUCCESS
                }
                other => {
                    eprintln!("warpctl: {other:?}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench" => {
            let mut config = BenchConfig::new(endpoint);
            let number = |rest: &mut Vec<String>, flag: &str, default: usize| {
                take_value(rest, flag).map_or(default, |v| v.parse().unwrap_or_else(|_| usage()))
            };
            config.clients = number(&mut rest, "--clients", config.clients);
            config.requests = number(&mut rest, "--requests", config.requests);
            config.tenants = number(&mut rest, "--tenants", config.tenants);
            config.functions = number(&mut rest, "--functions", config.functions);
            config.lines = number(&mut rest, "--lines", config.lines);
            let out = take_value(&mut rest, "--out").map(PathBuf::from);
            if let Some(i) = rest.iter().position(|a| a == "--verify-identical") {
                rest.remove(i);
                config.verify_identical = true;
            }
            config.options = parse_options(&mut rest);
            if !rest.is_empty() {
                eprintln!("warpctl: unknown bench argument `{}`", rest[0]);
                usage()
            }
            let report = match run_bench(&config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warpctl: bench failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let row = |name: &str, s: &warp_service::ClassStats| {
                println!(
                    "{name:<10} n={:<4} p50 {:>7.1} ms  p99 {:>7.1} ms  (compile p50 {:>6.1} ms)",
                    s.count, s.p50_ms, s.p99_ms, s.compile_p50_ms
                );
            };
            row("seed(cold)", &report.seed);
            row("warm", &report.warm);
            row("edit", &report.edit);
            row("cold", &report.cold);
            println!(
                "replay: {} requests, {} failure(s), {:.2} s, {:.1} req/s",
                report.requests, report.failures, report.wall_s, report.throughput_rps
            );
            println!(
                "dedup probe: {} clients x {} functions -> {} miss(es), {} store(s)",
                report.dedup.clients,
                report.dedup.functions,
                report.dedup.misses_delta,
                report.dedup.stores_delta
            );
            if config.verify_identical {
                println!("verified identical: {}", report.verified_identical);
            }
            if let Some(out) = out {
                if let Err(e) = warp_service::bench::write_report(&report, &config, &out) {
                    eprintln!("warpctl: cannot write {}: {e}", out.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", out.display());
            }
            if report.failures > 0 {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("warpctl: unknown command `{other}`");
            usage()
        }
    }
}
