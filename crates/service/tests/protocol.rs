//! Protocol edge-case tests against a live daemon, pinned to the
//! normative spec in `docs/SERVICE.md`: oversized frames, truncated
//! frames, unknown request kinds, malformed JSON, concurrent
//! duplicate dedup, and admission-control backpressure.

use std::time::Duration;
use warp_service::daemon::{DaemonConfig, Endpoint, Warpd};
use warp_service::json;
use warp_service::proto::RequestOptions;
use warp_service::{Client, ErrorCode, Response};

fn tcp_config() -> DaemonConfig {
    DaemonConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()))
}

fn module(prefix: &str, functions: usize, lines: usize) -> String {
    let mut s = format!("module {prefix};\nsection main on cells 0..9;\n");
    for j in 0..functions {
        s.push_str(&warp_workload::function_source_with(
            &format!("{prefix}_f{j}"),
            lines,
            2,
        ));
        s.push('\n');
    }
    s.push_str("end;\n");
    s
}

fn connect(daemon: &Warpd) -> Client {
    Client::connect(daemon.endpoint(), Duration::from_secs(5)).expect("connect")
}

fn stop(daemon: Warpd) {
    daemon.stop();
    daemon.join();
}

#[test]
fn oversized_frame_gets_frame_too_large_then_close() {
    let mut config = tcp_config();
    config.max_frame = 256;
    let daemon = Warpd::start(config).expect("start");
    let mut client = connect(&daemon);

    // A frame whose declared length exceeds the limit. The daemon
    // must answer once with `frame-too-large` (id 0 — it never read
    // the payload) and close the connection.
    let payload = vec![b'x'; 512];
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    client.send_bytes(&frame).expect("send");
    match client.recv().expect("one response before close") {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 0);
            assert_eq!(code, ErrorCode::FrameTooLarge);
        }
        other => panic!("expected frame-too-large, got {other:?}"),
    }
    // The connection is now closed; further reads fail.
    assert!(client.recv().is_err());

    // The daemon itself is unharmed.
    let mut fresh = connect(&daemon);
    assert!(matches!(
        fresh.health().expect("health"),
        Response::Health { .. }
    ));
    stop(daemon);
}

#[test]
fn truncated_frame_drops_connection_but_not_daemon() {
    let daemon = Warpd::start(tcp_config()).expect("start");

    // Claim 100 bytes, send 10, hang up. The daemon must treat the
    // connection as dead and keep serving others.
    let mut client = connect(&daemon);
    let mut frame = 100u32.to_le_bytes().to_vec();
    frame.extend_from_slice(b"0123456789");
    client.send_bytes(&frame).expect("send");
    drop(client);

    let mut fresh = connect(&daemon);
    assert!(matches!(
        fresh.health().expect("health"),
        Response::Health { .. }
    ));
    stop(daemon);
}

#[test]
fn unknown_kind_and_bad_shapes_get_stable_codes() {
    let daemon = Warpd::start(tcp_config()).expect("start");
    let mut client = connect(&daemon);

    // Unknown kind: code `unknown-kind`, id echoed.
    let req = json::parse(r#"{"id": 7, "kind": "florp"}"#).unwrap();
    match client.call_raw(&req).expect("reply") {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 7);
            assert_eq!(code, ErrorCode::UnknownKind);
        }
        other => panic!("expected unknown-kind, got {other:?}"),
    }

    // Valid JSON, wrong shape (compile without module): `bad-request`.
    let req = json::parse(r#"{"id": 8, "kind": "compile"}"#).unwrap();
    match client.call_raw(&req).expect("reply") {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 8);
            assert_eq!(code, ErrorCode::BadRequest);
        }
        other => panic!("expected bad-request, got {other:?}"),
    }

    // Not JSON at all: `bad-json`, id 0. The connection survives all
    // three of these (frame boundaries were intact).
    let payload = b"this is not json";
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_bytes(&frame).expect("send");
    match client.recv().expect("reply") {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 0);
            assert_eq!(code, ErrorCode::BadJson);
        }
        other => panic!("expected bad-json, got {other:?}"),
    }
    assert!(matches!(
        client.health().expect("health"),
        Response::Health { .. }
    ));
    stop(daemon);
}

#[test]
fn concurrent_duplicates_compile_each_function_once() {
    let mut config = tcp_config();
    config.workers = 8;
    config.queue_depth = 64;
    let daemon = Warpd::start(config).expect("start");

    const FUNCTIONS: usize = 4;
    const CLIENTS: usize = 6;
    let source = module("dup", FUNCTIONS, 18);

    let mut control = connect(&daemon);
    let misses_before = match control.cache_stats().expect("stats") {
        Response::CacheStats { stats, .. } => stats.misses,
        other => panic!("unexpected {other:?}"),
    };

    // All clients compile the same never-seen module at once. The
    // in-flight leases must collapse the duplicate work: each function
    // records exactly one miss (one compile) no matter how many
    // clients raced.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(CLIENTS));
    let endpoint = daemon.endpoint().clone();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let source = source.clone();
            let endpoint = endpoint.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(&endpoint, Duration::from_secs(5)).expect("connect");
                barrier.wait();
                c.compile(&source, RequestOptions::default())
                    .expect("compile")
            })
        })
        .collect();
    let mut images = Vec::new();
    for h in handles {
        match h.join().expect("thread") {
            Response::Compiled { image_hex, .. } => images.push(image_hex),
            other => panic!("compile failed: {other:?}"),
        }
    }
    // Every client got the same image.
    assert!(images.windows(2).all(|w| w[0] == w[1]));

    let misses_after = match control.cache_stats().expect("stats") {
        Response::CacheStats { stats, .. } => stats.misses,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(
        misses_after - misses_before,
        FUNCTIONS as u64,
        "expected exactly one miss per function across {CLIENTS} duplicate requests"
    );
    stop(daemon);
}

#[test]
fn full_admission_queue_answers_overloaded() {
    let mut config = tcp_config();
    config.workers = 1;
    config.queue_depth = 0; // no waiting room at all
    let daemon = Warpd::start(config).expect("start");

    // Occupy the single worker with a deliberately slow compile.
    let slow = module("slow", 3, 80);
    let endpoint = daemon.endpoint().clone();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&endpoint, Duration::from_secs(5)).expect("connect");
        let opts = RequestOptions {
            verify: true,
            absint: true,
            ..RequestOptions::default()
        };
        c.compile(&slow, opts).expect("slow compile")
    });

    // Wait until the worker is demonstrably busy...
    let mut control = connect(&daemon);
    loop {
        match control.health().expect("health") {
            Response::Health { info, .. } if info.active >= 1 => break,
            Response::Health { .. } => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    // ...then the next compile must be refused, not queued.
    let tiny = module("tiny", 1, 8);
    match control
        .compile(&tiny, RequestOptions::default())
        .expect("reply")
    {
        Response::Overloaded {
            active,
            queued,
            limit,
            ..
        } => {
            assert_eq!(active, 1);
            assert_eq!(queued, 0);
            assert_eq!(limit, 0);
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    assert!(matches!(
        busy.join().expect("busy thread"),
        Response::Compiled { .. }
    ));
    // With the worker free again the same request succeeds.
    assert!(matches!(
        control
            .compile(&tiny, RequestOptions::default())
            .expect("reply"),
        Response::Compiled { .. }
    ));
    stop(daemon);
}
