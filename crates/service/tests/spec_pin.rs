//! Pins `docs/SERVICE.md` (the normative protocol spec) against the
//! implementation: every request kind, response kind, and error code
//! the code knows must be named in the spec, and the documented
//! defaults must match the constants. A failure here means the spec
//! and the implementation diverged — fix whichever is wrong.

use warp_service::proto::{ErrorCode, MAX_FRAME_DEFAULT, PROTOCOL_VERSION};

fn spec() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVICE.md");
    std::fs::read_to_string(path).expect("docs/SERVICE.md must exist — it is normative")
}

#[test]
fn every_request_kind_is_documented() {
    let spec = spec();
    for kind in [
        "compile",
        "fingerprint",
        "cache_stats",
        "health",
        "drain",
        "shutdown",
    ] {
        assert!(
            spec.contains(&format!("### `{kind}`")),
            "request kind `{kind}` has no spec section"
        );
    }
}

#[test]
fn every_response_kind_is_documented() {
    let spec = spec();
    for kind in [
        "compiled",
        "fingerprint",
        "cache_stats",
        "health",
        "draining",
        "bye",
        "overloaded",
    ] {
        assert!(
            spec.contains(&format!("`{kind}`")),
            "response kind `{kind}` is not in the spec"
        );
    }
}

#[test]
fn every_error_code_is_documented() {
    let spec = spec();
    for code in [
        ErrorCode::BadJson,
        ErrorCode::BadRequest,
        ErrorCode::UnknownKind,
        ErrorCode::FrameTooLarge,
        ErrorCode::CompileFailed,
        ErrorCode::Draining,
    ] {
        assert!(
            spec.contains(&format!("`{}`", code.as_str())),
            "error code `{}` is not in the spec",
            code.as_str()
        );
    }
}

#[test]
fn per_request_jobs_field_is_documented() {
    let spec = spec();
    assert!(
        spec.contains("`jobs`"),
        "the compile request's `jobs` field is undocumented"
    );
    assert_eq!(warp_service::daemon::MAX_JOBS_PER_REQUEST, 256);
    assert!(
        spec.contains("capped at 256"),
        "spec must state the per-request jobs cap"
    );
}

#[test]
fn documented_constants_match_the_implementation() {
    let spec = spec();
    assert_eq!(MAX_FRAME_DEFAULT, 16 * 1024 * 1024);
    assert!(
        spec.contains("16 MiB"),
        "spec must state the default frame bound"
    );
    assert_eq!(PROTOCOL_VERSION, 1);
    assert!(
        spec.contains("protocol version **1**"),
        "spec must state the protocol version it describes"
    );
    // The compile response fields the spec tabulates.
    for field in [
        "image_hex",
        "functions",
        "warnings",
        "cache_hits",
        "cache_misses",
        "queue_ns",
        "compile_ns",
    ] {
        assert!(
            spec.contains(&format!("`{field}`")),
            "compiled field `{field}` undocumented"
        );
    }
}
