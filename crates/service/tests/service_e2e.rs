//! End-to-end daemon behavior: bit-identical images vs direct
//! compilation, warm-cache hits across tenants, options fingerprints,
//! drain/shutdown lifecycle, and per-request service spans.

use std::time::Duration;
use warp_service::daemon::{DaemonConfig, Endpoint, Warpd};
use warp_service::proto::{from_hex, RequestOptions};
use warp_service::{Client, ErrorCode, Response};

fn tcp_config() -> DaemonConfig {
    DaemonConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()))
}

fn module(prefix: &str, functions: usize, lines: usize) -> String {
    let mut s = format!("module {prefix};\nsection main on cells 0..9;\n");
    for j in 0..functions {
        s.push_str(&warp_workload::function_source_with(
            &format!("{prefix}_f{j}"),
            lines,
            2,
        ));
        s.push('\n');
    }
    s.push_str("end;\n");
    s
}

fn connect(daemon: &Warpd) -> Client {
    Client::connect(daemon.endpoint(), Duration::from_secs(5)).expect("connect")
}

#[test]
fn daemon_image_is_bit_identical_to_direct_compilation() {
    let daemon = Warpd::start(tcp_config()).expect("start");
    let mut client = connect(&daemon);

    for options in [
        RequestOptions::default(),
        RequestOptions {
            inline: true,
            ifconv: true,
            absint: true,
            verify: false,
        },
    ] {
        let source = module("ident", 3, 20);
        let remote = match client.compile(&source, options).expect("compile") {
            Response::Compiled { image_hex, .. } => from_hex(&image_hex).expect("hex"),
            other => panic!("compile failed: {other:?}"),
        };
        let local = parcc::compile_module_source(&source, &options.to_compile_options())
            .expect("local compile");
        let local_bytes = warp_target::download::encode(&local.module_image).expect("encode");
        assert_eq!(
            remote, local_bytes,
            "daemon and warpcc images must be byte-identical"
        );
    }
    daemon.stop();
    daemon.join();
}

#[test]
fn jobs_request_is_bit_identical_to_sequential_and_direct() {
    let daemon = Warpd::start(tcp_config()).expect("start");
    let mut client = connect(&daemon);
    let source = module("jobs", 6, 18);

    // Per-request parallelism must never change the output bytes —
    // only latency. Compare jobs=1, an explicit jobs=4, and the
    // absent-field default against a direct in-process compile.
    let compile = |client: &mut Client, jobs: u64| match client
        .compile_jobs(&source, RequestOptions::default(), jobs)
        .expect("compile")
    {
        Response::Compiled { image_hex, .. } => from_hex(&image_hex).expect("hex"),
        other => panic!("compile (jobs={jobs}) failed: {other:?}"),
    };
    let sequential = compile(&mut client, 1);
    let parallel = compile(&mut client, 4);
    let defaulted = compile(&mut client, 0);
    let local =
        parcc::compile_module_source(&source, &RequestOptions::default().to_compile_options())
            .expect("local compile");
    let local_bytes = warp_target::download::encode(&local.module_image).expect("encode");
    assert_eq!(
        parallel, sequential,
        "jobs=4 must be byte-identical to jobs=1"
    );
    assert_eq!(
        defaulted, sequential,
        "daemon-default jobs must be byte-identical too"
    );
    assert_eq!(
        sequential, local_bytes,
        "daemon and warpcc images must be byte-identical"
    );
    daemon.stop();
    daemon.join();
}

#[test]
fn warm_recompile_hits_cache_for_every_function() {
    let daemon = Warpd::start(tcp_config()).expect("start");
    let mut client = connect(&daemon);
    let source = module("warm", 4, 16);

    match client
        .compile(&source, RequestOptions::default())
        .expect("cold")
    {
        Response::Compiled {
            cache_hits,
            cache_misses,
            ..
        } => {
            assert_eq!((cache_hits, cache_misses), (0, 4));
        }
        other => panic!("cold compile failed: {other:?}"),
    }
    // A second tenant compiling the identical module takes pure hits.
    let mut second = connect(&daemon);
    match second
        .compile(&source, RequestOptions::default())
        .expect("warm")
    {
        Response::Compiled {
            cache_hits,
            cache_misses,
            ..
        } => {
            assert_eq!((cache_hits, cache_misses), (4, 0));
        }
        other => panic!("warm compile failed: {other:?}"),
    }
    daemon.stop();
    daemon.join();
}

#[test]
fn single_function_edit_misses_exactly_once() {
    let daemon = Warpd::start(tcp_config()).expect("start");
    let mut client = connect(&daemon);

    let base = module("edit", 5, 16);
    assert!(matches!(
        client
            .compile(&base, RequestOptions::default())
            .expect("seed"),
        Response::Compiled { .. }
    ));

    // Regenerate function 2 with a longer body: same name, same
    // signature, different body — the other four keys survive.
    let mut edited = String::from("module edit;\nsection main on cells 0..9;\n");
    for j in 0..5 {
        let lines = if j == 2 { 17 } else { 16 };
        edited.push_str(&warp_workload::function_source_with(
            &format!("edit_f{j}"),
            lines,
            2,
        ));
        edited.push('\n');
    }
    edited.push_str("end;\n");

    match client
        .compile(&edited, RequestOptions::default())
        .expect("edit")
    {
        Response::Compiled {
            cache_hits,
            cache_misses,
            ..
        } => {
            assert_eq!(
                (cache_hits, cache_misses),
                (4, 1),
                "a one-function edit must recompile exactly that function"
            );
        }
        other => panic!("edit compile failed: {other:?}"),
    }
    daemon.stop();
    daemon.join();
}

#[test]
fn fingerprint_matches_local_and_distinguishes_options() {
    let daemon = Warpd::start(tcp_config()).expect("start");
    let mut client = connect(&daemon);

    let plain = RequestOptions::default();
    let tuned = RequestOptions {
        inline: true,
        ..RequestOptions::default()
    };
    let fp = |client: &mut Client, o: RequestOptions| match client.fingerprint(o).expect("fp") {
        Response::Fingerprint { fingerprint, .. } => fingerprint,
        other => panic!("unexpected {other:?}"),
    };
    let fp_plain = fp(&mut client, plain);
    let fp_tuned = fp(&mut client, tuned);
    assert_ne!(
        fp_plain, fp_tuned,
        "different options, different cache keyspace"
    );
    assert_eq!(
        fp_plain,
        format!(
            "{:016x}",
            parcc::options_fingerprint(&plain.to_compile_options())
        ),
        "daemon fingerprint must match the library's"
    );
    daemon.stop();
    daemon.join();
}

#[test]
fn drain_refuses_compiles_but_serves_introspection() {
    let daemon = Warpd::start(tcp_config()).expect("start");
    let mut client = connect(&daemon);

    assert!(matches!(
        client.drain().expect("drain"),
        Response::Draining { .. }
    ));

    // Compiles are refused with the stable `draining` code...
    let source = module("late", 1, 10);
    match client
        .compile(&source, RequestOptions::default())
        .expect("reply")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Draining),
        other => panic!("expected draining error, got {other:?}"),
    }
    // ...but health and stats still answer, and health says so.
    match client.health().expect("health") {
        Response::Health { info, .. } => assert_eq!(info.status, "draining"),
        other => panic!("unexpected {other:?}"),
    }
    assert!(matches!(
        client.cache_stats().expect("stats"),
        Response::CacheStats { .. }
    ));

    assert!(matches!(
        client.shutdown().expect("shutdown"),
        Response::Bye { .. }
    ));
    daemon.join();
}

#[test]
fn unix_socket_lifecycle_unlinks_on_shutdown() {
    let sock = std::env::temp_dir().join(format!(
        "warpd-e2e-{}-{:?}.sock",
        std::process::id(),
        std::thread::current().id()
    ));
    let daemon = Warpd::start(DaemonConfig::new(Endpoint::Unix(sock.clone()))).expect("start");
    assert!(sock.exists());

    let mut client = connect(&daemon);
    let source = module("unix", 2, 12);
    assert!(matches!(
        client
            .compile(&source, RequestOptions::default())
            .expect("compile"),
        Response::Compiled { .. }
    ));
    assert!(matches!(
        client.shutdown().expect("shutdown"),
        Response::Bye { .. }
    ));
    daemon.join();
    assert!(!sock.exists(), "socket file must be unlinked on shutdown");
}

#[test]
fn requests_land_on_service_spans() {
    let mut config = tcp_config();
    config.trace = true;
    let daemon = Warpd::start(config).expect("start");
    let mut client = connect(&daemon);

    let source = module("traced", 2, 12);
    let (queue_ns, compile_ns) = match client
        .compile(&source, RequestOptions::default())
        .expect("compile")
    {
        Response::Compiled {
            queue_ns,
            compile_ns,
            ..
        } => (queue_ns, compile_ns),
        other => panic!("compile failed: {other:?}"),
    };
    assert!(compile_ns > 0);

    let snap = daemon.trace().snapshot();
    let request_spans: Vec<_> = snap
        .spans_in("service")
        .filter(|s| s.name.starts_with("request"))
        .collect();
    assert_eq!(
        request_spans.len(),
        1,
        "one service request span per compile"
    );
    let span = request_spans[0];
    assert_eq!(span.arg("compile_ns"), Some(compile_ns as f64));
    assert_eq!(span.arg("queue_ns"), Some(queue_ns as f64));
    assert_eq!(span.arg("cache_misses"), Some(2.0));
    // The compile's own spans share the request's track, so the
    // per-request latency decomposes in the same trace row.
    assert!(
        snap.spans_in("cache").any(|s| s.track == span.track),
        "cache spans must land on the request's track"
    );

    // The whole thing exports as a valid Chrome trace.
    let json = warp_obs::chrome::to_chrome_json(&snap);
    warp_obs::chrome::validate_chrome_json(&json).expect("valid chrome trace");
    daemon.stop();
    daemon.join();
}
