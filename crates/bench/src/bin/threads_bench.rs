//! `threads_bench` — per-worker-count speedup of the work-stealing
//! executor on the Figure 6 workload, written as machine-readable JSON
//! (`BENCH_threads.json`, schema `warp-bench-threads/1`) for CI and
//! regression tracking.
//!
//! ```text
//! cargo run -p parcc-bench --release --bin threads_bench [-- OUT.json]
//! cargo run -p parcc-bench --release --bin threads_bench -- --check BENCH_threads.json
//! ```
//!
//! Two speedup columns per worker count W ∈ {1, 2, 4, 8}:
//!
//! * `modeled_speedup` — abstract work units through the executor's
//!   scheduling model: phase 1 and phase 4 divide by W (they fan out
//!   over the same stealing pool), the per-function compiles go
//!   through an LPT-order greedy makespan. Deterministic on any host:
//!   it depends only on the workload, so CI can gate on it even on a
//!   single-core runner.
//! * `wall_speedup` — median real wall-clock of the sequential
//!   compiler over the threaded driver. Informational only (it
//!   saturates at `host_cores`, recorded alongside).
//!
//! `--check BASELINE.json` re-derives the modeled numbers and exits
//! non-zero if the 8-worker modeled speedup fell more than 10% below
//! the committed baseline or under the 6× acceptance floor.

use parcc::threads::compile_parallel;
use parcc::{compile_module_source, CompileOptions, FunctionRecord};
use std::fmt::Write as _;
use std::time::Instant;
use warp_workload::{synthetic_program, FunctionSize};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 5;
/// The acceptance floor for the 8-worker modeled speedup on fig6.
const FLOOR_8W: f64 = 6.0;
/// Allowed relative drop from the committed baseline before CI fails.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Median wall-clock seconds of `RUNS` invocations of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[RUNS / 2]
}

/// LPT-order greedy makespan over per-job unit costs: jobs sorted by
/// decreasing cost (index tie-break, same as `lpt_dispatch_order`),
/// each assigned to the least-loaded worker — the classic bound the
/// stealing executor tracks, since a worker that runs dry immediately
/// steals the next job.
fn lpt_makespan(units: &[u64], workers: usize) -> u64 {
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(units[i]), i));
    let mut load = vec![0u64; workers.max(1)];
    for i in order {
        let w = (0..load.len()).min_by_key(|&w| load[w]).expect("nonempty");
        load[w] += units[i];
    }
    load.into_iter().max().unwrap_or(0)
}

/// Modeled speedup at `workers`: sequential total units over the
/// parallel critical path (phase 1 / W + compile makespan + link / W).
fn modeled_speedup(phase1: u64, compile_units: &[u64], link: u64, workers: usize) -> f64 {
    let seq = phase1 + compile_units.iter().sum::<u64>() + link;
    let w = workers as u64;
    let par = phase1.div_ceil(w) + lpt_makespan(compile_units, workers) + link.div_ceil(w);
    seq as f64 / par.max(1) as f64
}

/// Pulls `"modeled_speedup": <num>` out of the baseline's
/// `"workers": 8` row with plain string scanning (the bench crates
/// carry no JSON dependency).
fn baseline_speedup_8w(json: &str) -> Option<f64> {
    let row = json
        .split('{')
        .find(|part| part.contains("\"workers\": 8"))?;
    let after = row.split("\"modeled_speedup\":").nth(1)?;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_path = match args.first().map(String::as_str) {
        Some("--check") => Some(args.get(1).cloned().unwrap_or_else(|| {
            eprintln!("threads_bench: --check needs a baseline path");
            std::process::exit(2);
        })),
        _ => None,
    };
    let out_path = if check_path.is_some() {
        None
    } else {
        Some(
            args.first()
                .cloned()
                .unwrap_or_else(|| "BENCH_threads.json".to_string()),
        )
    };

    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Medium, 8);
    let reference = compile_module_source(&src, &opts).expect("sequential compile");
    let compile_units: Vec<u64> = reference
        .records
        .iter()
        .map(FunctionRecord::compile_units)
        .collect();
    let (phase1, link) = (reference.phase1_units, reference.link_units);

    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let seq_wall_s = median_secs(|| {
        compile_module_source(&src, &opts).expect("seq");
    });

    let mut rows = String::new();
    let mut speedup_8w = 0.0;
    for (i, workers) in WORKER_COUNTS.into_iter().enumerate() {
        let modeled = modeled_speedup(phase1, &compile_units, link, workers);
        if workers == 8 {
            speedup_8w = modeled;
        }
        let par_wall_s = median_secs(|| {
            compile_parallel(&src, &opts, workers).expect("par");
        });
        let wall = seq_wall_s / par_wall_s;
        eprintln!(
            "workers {workers}: modeled {modeled:.2}x, wall {wall:.2}x \
             ({seq_wall_s:.4}s -> {par_wall_s:.4}s)"
        );
        let _ = write!(
            rows,
            "    {{\"workers\": {workers}, \"modeled_speedup\": {modeled:.4}, \
             \"wall_speedup\": {wall:.4}, \"seq_wall_s\": {seq_wall_s:.6}, \
             \"par_wall_s\": {par_wall_s:.6}}}{}",
            if i + 1 < WORKER_COUNTS.len() {
                ",\n"
            } else {
                "\n"
            }
        );
    }

    if let Some(baseline_path) = check_path {
        let baseline_json = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("threads_bench: reading {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = baseline_speedup_8w(&baseline_json).unwrap_or_else(|| {
            eprintln!("threads_bench: no 8-worker modeled_speedup in {baseline_path}");
            std::process::exit(2);
        });
        let bar = baseline * (1.0 - REGRESSION_TOLERANCE);
        eprintln!(
            "gate: fresh 8-worker modeled speedup {speedup_8w:.2}x vs baseline \
             {baseline:.2}x (bar {bar:.2}x, floor {FLOOR_8W:.1}x)"
        );
        if speedup_8w < bar {
            eprintln!(
                "threads_bench: 8-worker modeled speedup regressed >10% below the \
                 committed baseline"
            );
            std::process::exit(1);
        }
        if speedup_8w < FLOOR_8W {
            eprintln!("threads_bench: 8-worker modeled speedup under the {FLOOR_8W}x floor");
            std::process::exit(1);
        }
        println!("ok: {speedup_8w:.2}x >= max({bar:.2}x, {FLOOR_8W:.1}x)");
        return;
    }

    let json = format!(
        "{{\n  \"schema\": \"warp-bench-threads/1\",\n  \"workload\": \"fig6-medium-n8\",\n  \
         \"runs\": {RUNS},\n  \"host_cores\": {host_cores},\n  \"results\": [\n{rows}  ]\n}}\n"
    );
    let out_path = out_path.expect("write mode has a path");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("threads_bench: writing {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");
}
